/**
 * @file
 * lag_replay — write an existing trace file out as if it were being
 * recorded live, for exercising the ingest path.
 *
 * Reads SRC fully, then appends its bytes to DEST in chunk-sized
 * writes with a flush after every chunk. The default chunk size is
 * prime, so flush boundaries land mid-record almost always — the
 * tail-reader must cope with partial records to follow along. With
 * --rps the replay is paced to approximately that many records per
 * second (scaled to bytes via the trace's record count); with
 * --rps 0 (default) it writes as fast as the disk takes it.
 *
 * --batch-json instead prints the batch-analysis reference answer
 * for SRC — the exact `/v1/patterns` body lagd serves once a follow
 * of this trace completes (core::patternsJson over
 * core::mergeAnalyses of the single session's summary). The CI
 * ingest smoke diffs the live answer against this output.
 *
 * Usage: ./lag_replay SRC.lag DEST.lag [--rps N] [--chunk BYTES]
 *        ./lag_replay SRC.lag --batch-json [--threshold-ms N]
 *
 * Exit status: 0 on success, 2 on usage or I/O errors.
 */

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "core/aggregate.hh"
#include "core/figure_json.hh"
#include "core/session.hh"
#include "engine/result_cache.hh"
#include "trace/io.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: lag_replay SRC.lag DEST.lag [--rps N] "
                 "[--chunk BYTES]\n"
                 "       lag_replay SRC.lag --batch-json "
                 "[--threshold-ms N]\n";
    return 2;
}

/** Count every record the tailer will decode, for rps pacing. */
std::uint64_t
recordCount(const lag::trace::Trace &trace)
{
    std::uint64_t count = trace.threads.size() +
                          trace.strings.size() +
                          trace.events.size() +
                          trace.samples.size();
    return count > 0 ? count : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lag;

    std::string src;
    std::string dest;
    bool batch_json = false;
    std::uint64_t rps = 0;
    std::size_t chunk = 4093; // prime: flushes land mid-record
    int threshold_ms = 100;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--batch-json") {
            batch_json = true;
        } else if (arg == "--rps") {
            if (i + 1 >= argc)
                return usage();
            rps = static_cast<std::uint64_t>(
                std::atoll(argv[++i]));
        } else if (arg == "--chunk") {
            if (i + 1 >= argc)
                return usage();
            chunk = static_cast<std::size_t>(std::atoll(argv[++i]));
            if (chunk == 0)
                return usage();
        } else if (arg == "--threshold-ms") {
            if (i + 1 >= argc)
                return usage();
            threshold_ms = std::atoi(argv[++i]);
            if (threshold_ms < 0)
                return usage();
        } else if (!arg.empty() && arg.front() == '-') {
            return usage();
        } else if (src.empty()) {
            src = std::string(arg);
        } else if (dest.empty()) {
            dest = std::string(arg);
        } else {
            return usage();
        }
    }
    if (src.empty() || (dest.empty() && !batch_json))
        return usage();

    if (batch_json) {
        try {
            trace::Trace trace = trace::readTraceFile(src);
            const std::string app = trace.meta.appName;
            core::Session session =
                core::Session::fromTrace(std::move(trace));
            const engine::SessionAnalysis analysis =
                engine::analyzeSession(
                    session, msToNs(threshold_ms));
            const core::MergedPatternSet merged =
                core::mergeAnalyses({analysis.patternSummary});
            std::cout << core::patternsJson(app, merged,
                                            "episodes", 0)
                      << '\n';
        } catch (const std::exception &e) {
            std::cerr << "lag_replay: " << e.what() << '\n';
            return 2;
        }
        return 0;
    }

    std::string bytes;
    std::uint64_t records = 1;
    try {
        std::ifstream in(src, std::ios::binary);
        if (!in) {
            std::cerr << "lag_replay: cannot open '" << src
                      << "'\n";
            return 2;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
        // Decode once up front: validates the source and yields the
        // record count the rps pacing is defined over.
        records = recordCount(trace::deserializeTrace(bytes));
    } catch (const std::exception &e) {
        std::cerr << "lag_replay: " << e.what() << '\n';
        return 2;
    }

    // records/sec → bytes/sec through the file's own density.
    const double bytes_per_sec =
        rps > 0 ? static_cast<double>(bytes.size()) *
                      static_cast<double>(rps) /
                      static_cast<double>(records)
                : 0.0;

    std::ofstream out(dest,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
        std::cerr << "lag_replay: cannot open '" << dest
                  << "' for writing\n";
        return 2;
    }
    std::size_t offset = 0;
    while (offset < bytes.size()) {
        const std::size_t n =
            std::min(chunk, bytes.size() - offset);
        out.write(bytes.data() + offset,
                  static_cast<std::streamsize>(n));
        out.flush();
        if (!out) {
            std::cerr << "lag_replay: write to '" << dest
                      << "' failed\n";
            return 2;
        }
        offset += n;
        if (bytes_per_sec > 0.0 && offset < bytes.size()) {
            const double seconds =
                static_cast<double>(n) / bytes_per_sec;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(seconds));
        }
    }
    std::cout << "lag_replay: wrote " << bytes.size()
              << " bytes (" << records << " records) to " << dest
              << '\n';
    return 0;
}
