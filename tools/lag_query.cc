/**
 * @file
 * lag_query — command-line client for lagd.
 *
 * Sends one HTTP request to a running lagd and prints the response
 * body to stdout. No curl in the container, and none needed: it
 * speaks exactly lagd's HTTP/1.1 dialect via serve::httpRequest —
 * the same client code the serve tests and the CI smoke exercise.
 *
 * Usage: ./lag_query [--host H] [--port N] [--timeout-ms N]
 *                    [--post] [--print-trace-id] PATH
 *
 *   PATH          request target, e.g. /healthz or
 *                 "/v1/patterns?app=GanttProject&sort=total_lag"
 *   --post        send POST instead of GET (for /v1/refresh)
 *   --port        default 8437 or LAGALYZER_SERVE_PORT
 *   --print-trace-id  print the response's X-Lag-Trace-Id header to
 *                 stderr ("trace-id: <hex>"), so scripts can
 *                 correlate a query with /debugz/requests and the
 *                 Chrome-trace export
 *
 * Exit status: 0 on a 2xx response, 1 on any other HTTP status,
 * 2 on usage or transport errors — so shell scripts can gate on
 * "query succeeded" without parsing anything.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/client.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: lag_query [--host H] [--port N] "
                 "[--timeout-ms N] [--post] [--print-trace-id] "
                 "PATH\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    lag::serve::ClientOptions options;
    options.port = 8437;
    if (const char *env = std::getenv("LAGALYZER_SERVE_PORT");
        env != nullptr && env[0] != '\0')
        options.port = static_cast<std::uint16_t>(std::atoi(env));

    std::string method = "GET";
    std::string target;
    bool print_trace_id = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--host") {
            if (i + 1 >= argc)
                return usage();
            options.host = argv[++i];
        } else if (arg == "--port") {
            if (i + 1 >= argc)
                return usage();
            options.port =
                static_cast<std::uint16_t>(std::atoi(argv[++i]));
        } else if (arg == "--timeout-ms") {
            if (i + 1 >= argc)
                return usage();
            options.timeoutMs = std::atoi(argv[++i]);
        } else if (arg == "--post") {
            method = "POST";
        } else if (arg == "--print-trace-id") {
            print_trace_id = true;
        } else if (!arg.empty() && arg[0] == '/') {
            if (!target.empty())
                return usage();
            target = std::string(arg);
        } else {
            return usage();
        }
    }
    if (target.empty())
        return usage();

    const lag::serve::ClientResult result =
        lag::serve::httpRequest(options, method, target);
    if (!result.ok) {
        std::cerr << "lag_query: " << result.error << '\n';
        return 2;
    }
    if (print_trace_id) {
        const std::string_view trace =
            result.header("x-lag-trace-id");
        std::cerr << "trace-id: "
                  << (trace.empty() ? "none" : trace) << '\n';
    }
    std::cout << result.body << '\n';
    if (result.status < 200 || result.status >= 300) {
        std::cerr << "lag_query: HTTP " << result.status << '\n';
        return 1;
    }
    return 0;
}
