#!/usr/bin/env bash
# Run the .clang-tidy baseline over src/ and tools/ using the
# compile database from an existing build tree. Skips gracefully
# (exit 0) when clang-tidy is not installed, so ci/check.sh can call
# it unconditionally.
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" >&2
    exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy.sh: $build/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

mapfile -t sources < <(find "$root/src" "$root/tools" \
    -name '*.cc' -o -name '*.cpp' | sort)

echo "clang-tidy: ${#sources[@]} files against $build"
status=0
for file in "${sources[@]}"; do
    clang-tidy -p "$build" --quiet "$file" || status=1
done
exit "$status"
