#!/usr/bin/env bash
# Run the .clang-tidy checks over src/ and tools/ and gate on the
# committed baseline: any finding not in ci/clang_tidy_baseline is
# NEW and fails the script, so regressions surface in CI while the
# (frozen) pre-existing findings do not block unrelated work.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir]            gate (default: build)
#   tools/run_clang_tidy.sh [build-dir] --refresh-baseline
#       rewrite ci/clang_tidy_baseline from the current tree — run
#       after deliberately fixing or accepting findings, and commit
#       the result.
#
# Findings are normalized to "<repo-relative-file>:<check>" lines
# (no line numbers: those churn on every unrelated edit) and the
# baseline is kept sorted and unique, so the diff of a refresh is
# reviewable.
#
# Skips gracefully (exit 0) when clang-tidy is not installed, so
# ci/check.sh can call it unconditionally; exits 2 when the compile
# database is missing.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build"
refresh=0
for arg in "$@"; do
    case "$arg" in
      --refresh-baseline) refresh=1 ;;
      *) build="$arg" ;;
    esac
done
baseline="$root/ci/clang_tidy_baseline"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy.sh: clang-tidy not found on PATH; skipping" >&2
    exit 0
fi

if [ ! -f "$build/compile_commands.json" ]; then
    echo "run_clang_tidy.sh: $build/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

mapfile -t sources < <(find "$root/src" "$root/tools" \
    \( -name '*.cc' -o -name '*.cpp' \) | sort)

echo "clang-tidy: ${#sources[@]} files against $build"
current="$(mktemp)"
trap 'rm -f "$current"' EXIT
for file in "${sources[@]}"; do
    clang-tidy -p "$build" --quiet "$file" 2>/dev/null || true
done | sed -n 's/^\([^ :][^:]*\):[0-9][0-9]*:[0-9][0-9]*: warning: .*\[\(.*\)\]$/\1:\2/p' \
     | sed "s|^$root/||" | sort -u > "$current"

if [ "$refresh" -eq 1 ]; then
    cp "$current" "$baseline"
    echo "run_clang_tidy.sh: baseline refreshed" \
         "($(wc -l < "$baseline") entries) — commit $baseline"
    exit 0
fi

known="/dev/null"
[ -f "$baseline" ] && known="$baseline"
new_findings="$(comm -23 "$current" <(sort -u "$known"))"
if [ -n "$new_findings" ]; then
    echo "run_clang_tidy.sh: NEW findings vs $baseline:" >&2
    echo "$new_findings" >&2
    echo "Fix them, or (deliberately) accept with" \
         "tools/run_clang_tidy.sh --refresh-baseline" >&2
    exit 1
fi
echo "run_clang_tidy.sh: clean vs baseline"
exit 0
