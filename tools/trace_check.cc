/**
 * @file
 * trace_check: strict validation of the files the self-profiling
 * exporters write (`--self-trace`, `--metrics-out`,
 * `--flightrec-path`) and the Prometheus exposition lagd serves.
 *
 * Usage: trace_check [--chrome|--prom|--flightrec|--jsonl] file...
 *
 * `-` reads stdin, so a scrape can be piped straight through:
 * `lag_query "/metricsz?format=prom" | trace_check --prom -`.
 *
 * Default mode requires each file to be exactly one well-formed
 * JSON value (RFC 8259, via obs::checkJson). The modes layer shape
 * checks on top:
 *
 *  --chrome     Chrome trace-event shape Perfetto requires — a
 *               top-level object with a "traceEvents" array
 *               (obs::checkChromeTrace);
 *  --flightrec  flight-recorder dump shape — a top-level object
 *               with a "flightrec" member and "requests"/"events"/
 *               "spans" arrays (obs::checkFlightrec); works on both
 *               crash dumps and /debugz/flightrecorder bodies;
 *  --prom       Prometheus text exposition format 0.0.4
 *               (obs::checkProm): grammar, HELP/TYPE discipline,
 *               and histogram invariants (ascending cumulative
 *               buckets, +Inf present and equal to _count);
 *  --jsonl      one JSON value per non-empty line (bench emitters).
 *
 * The point is to fail the CI gate at the byte that is wrong
 * instead of surfacing an exporter bug later as an opaque Perfetto
 * import or Prometheus scrape error.
 *
 * Exit: 0 every file valid, 1 a file failed validation, 2 usage or
 * I/O error. ci/check.sh runs it over smoke artifacts.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_check.hh"
#include "obs/prom_check.hh"

namespace
{

enum class Mode
{
    Json,
    Chrome,
    Flightrec,
    Prom,
    JsonLines,
};

const char *
modeName(Mode mode)
{
    switch (mode) {
    case Mode::Json:
        return "json";
    case Mode::Chrome:
        return "chrome-trace shape";
    case Mode::Flightrec:
        return "flightrec shape";
    case Mode::Prom:
        return "prometheus 0.0.4";
    case Mode::JsonLines:
        return "json lines";
    }
    return "?";
}

/** Validate @p text in @p mode; true when valid, else prints the
 * failure for @p path to stderr. */
bool
checkOne(const std::string &path, const std::string &text,
         Mode mode)
{
    if (mode == Mode::Prom) {
        const lag::obs::PromCheckResult result =
            lag::obs::checkProm(text);
        if (result.ok)
            return true;
        std::fprintf(stderr,
                     "trace_check: %s: invalid at line %zu: %s\n",
                     path.c_str(), result.line,
                     result.message.c_str());
        return false;
    }
    if (mode == Mode::JsonLines) {
        std::size_t line = 0;
        std::size_t at = 0;
        bool ok = true;
        while (at < text.size()) {
            std::size_t end = text.find('\n', at);
            if (end == std::string::npos)
                end = text.size();
            ++line;
            const std::string_view one(text.data() + at,
                                       end - at);
            if (!one.empty()) {
                const lag::obs::JsonCheckResult result =
                    lag::obs::checkJson(one);
                if (!result.ok) {
                    std::fprintf(stderr,
                                 "trace_check: %s: line %zu "
                                 "invalid at byte %zu: %s\n",
                                 path.c_str(), line,
                                 result.errorOffset,
                                 result.message.c_str());
                    ok = false;
                }
            }
            at = end + 1;
        }
        if (line == 0) {
            std::fprintf(stderr, "trace_check: %s: empty\n",
                         path.c_str());
            return false;
        }
        return ok;
    }

    lag::obs::JsonCheckResult result;
    switch (mode) {
    case Mode::Chrome:
        result = lag::obs::checkChromeTrace(text);
        break;
    case Mode::Flightrec:
        result = lag::obs::checkFlightrec(text);
        break;
    default:
        result = lag::obs::checkJson(text);
        break;
    }
    if (result.ok)
        return true;
    std::fprintf(stderr,
                 "trace_check: %s: invalid at byte %zu: %s\n",
                 path.c_str(), result.errorOffset,
                 result.message.c_str());
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Mode mode = Mode::Json;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--chrome") {
            mode = Mode::Chrome;
        } else if (arg == "--flightrec") {
            mode = Mode::Flightrec;
        } else if (arg == "--prom") {
            mode = Mode::Prom;
        } else if (arg == "--jsonl") {
            mode = Mode::JsonLines;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: trace_check "
                "[--chrome|--prom|--flightrec|--jsonl] file...\n"
                "Validates self-profiling artifacts:\n"
                "  (default)    one well-formed JSON value\n"
                "  --chrome     Chrome trace-event shape "
                "(\"traceEvents\" array)\n"
                "  --flightrec  flight-recorder dump shape\n"
                "  --prom       Prometheus text format 0.0.4 + "
                "histogram invariants\n"
                "  --jsonl      one JSON value per non-empty "
                "line\n");
            return 0;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "trace_check: no files given\n");
        return 2;
    }

    int worst = 0;
    for (const std::string &path : paths) {
        std::string text;
        if (path == "-") {
            std::ostringstream buffer;
            buffer << std::cin.rdbuf();
            text = buffer.str();
        } else {
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::fprintf(stderr,
                             "trace_check: cannot read '%s'\n",
                             path.c_str());
                worst = 2;
                continue;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
        if (checkOne(path, text, mode)) {
            std::printf("trace_check: %s: ok (%zu bytes, %s)\n",
                        path.c_str(), text.size(),
                        modeName(mode));
        } else if (worst < 1) {
            worst = 1;
        }
    }
    return worst;
}
