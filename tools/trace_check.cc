/**
 * @file
 * trace_check: strict validation of the files the self-profiling
 * exporters write (`--self-trace`, `--metrics-out`).
 *
 * Usage: trace_check [--chrome] file...
 *
 * Every file must be exactly one well-formed JSON value (RFC 8259,
 * via obs::checkJson); with `--chrome` it must additionally have
 * the Chrome trace-event shape Perfetto requires — a top-level
 * object with a "traceEvents" array (obs::checkChromeTrace). The
 * point is to fail the CI gate at the byte that is wrong instead of
 * surfacing an exporter bug later as an opaque Perfetto import
 * error.
 *
 * Exit: 0 every file valid, 1 a file failed validation, 2 usage or
 * I/O error. ci/check.sh runs it over a smoke analyze_trace run.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_check.hh"

int
main(int argc, char **argv)
{
    bool chrome = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--chrome") {
            chrome = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: trace_check [--chrome] file...\n"
                "Validates that each file is well-formed JSON; "
                "--chrome also\nrequires the Chrome trace-event "
                "shape (top-level \"traceEvents\"\narray) that "
                "--self-trace output promises.\n");
            return 0;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "trace_check: no files given\n");
        return 2;
    }

    int worst = 0;
    for (const std::string &path : paths) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "trace_check: cannot read '%s'\n",
                         path.c_str());
            worst = 2;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string text = buffer.str();
        const lag::obs::JsonCheckResult result =
            chrome ? lag::obs::checkChromeTrace(text)
                   : lag::obs::checkJson(text);
        if (result.ok) {
            std::printf("trace_check: %s: ok (%zu bytes%s)\n",
                        path.c_str(), text.size(),
                        chrome ? ", chrome-trace shape" : "");
        } else {
            std::fprintf(
                stderr, "trace_check: %s: invalid at byte %zu: %s\n",
                path.c_str(), result.errorOffset,
                result.message.c_str());
            if (worst < 1)
                worst = 1;
        }
    }
    return worst;
}
