/**
 * @file
 * Approximate function-definition extraction over the blanked,
 * joined token stream — the front end lag_check's lock-discipline
 * and call-graph analyses are built on.
 *
 * This is a heuristic, not a parser: a definition is an identifier
 * followed by a balanced parameter list whose trailer (cv
 * qualifiers, annotation macros, a constructor init list, a
 * trailing return type) ends in a brace-balanced body. That shape
 * matches the project style everywhere it matters; constructs the
 * heuristic cannot name (lambdas, macro bodies) attribute their
 * contents to the enclosing definition, which over-approximates
 * reachability — the safe direction for a checker that reports
 * *possible* lock-order inversions.
 */

#ifndef LAG_TOOLS_ANALYSIS_FUNCTIONS_HH
#define LAG_TOOLS_ANALYSIS_FUNCTIONS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "source.hh"

namespace lag::analysis
{

/** One function definition found in a joined token stream. */
struct FunctionDef
{
    /** Unqualified name (last component). */
    std::string name;

    /** Name with any A::B:: qualification as written. */
    std::string qualified;

    std::size_t line = 0;      ///< 1-based line of the name
    std::size_t bodyBegin = 0; ///< position of the body '{'
    std::size_t bodyEnd = 0;   ///< position of the matching '}'
};

/** Position of the `close` matching the `open` at @p openPos
 * (counting nesting of that pair only); npos when unbalanced. */
std::size_t matchForward(const std::string &text,
                         std::size_t openPos, char open,
                         char close);

/** Every function definition in @p joined, in order of
 * appearance. Nested definitions (a lambda inside a body) are not
 * separated out; their tokens belong to the enclosing definition. */
std::vector<FunctionDef> extractFunctions(const JoinedCode &joined);

/**
 * End of the innermost brace scope containing @p pos inside the
 * body [bodyBegin, bodyEnd]: the position of the first unmatched
 * '}' at or after @p pos, or @p bodyEnd when the position sits
 * directly in the outermost body scope.
 */
std::size_t scopeEnd(const std::string &text, std::size_t pos,
                     std::size_t bodyEnd);

} // namespace lag::analysis

#endif // LAG_TOOLS_ANALYSIS_FUNCTIONS_HH
