/**
 * @file
 * Diagnostics sink shared by the static-analysis tools: findings,
 * visible per-line suppressions, and the two output formats (human
 * text on stdout, a strict RFC-8259 JSON report for CI
 * annotation).
 *
 * Suppression syntax, honored by every rule in every tool:
 *
 *   ... flagged code ...   // lag-lint: allow(rule)
 *   ... flagged code ...   // lag-lint: allow(rule-a, rule-b)
 *   // lag-lint: allow-next(rule)
 *   ... flagged code on the following line ...
 *
 * The same-line form must sit on the exact line the diagnostic
 * names; the allow-next form on the line directly above it. Both
 * accept a comma-separated rule list. Suppressions are grep-able on
 * purpose: every opt-out is visible in the diff that introduces it.
 */

#ifndef LAG_TOOLS_ANALYSIS_DIAGNOSTICS_HH
#define LAG_TOOLS_ANALYSIS_DIAGNOSTICS_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "source.hh"

namespace lag::analysis
{

struct Finding
{
    std::string file;
    std::size_t line; // 1-based
    std::string rule;
    std::string message;
};

/**
 * True when line @p line (1-based) of @p file carries a suppression
 * for @p rule — `allow(...)` on the line itself or `allow-next(...)`
 * on the line above.
 */
bool suppressed(const SourceFile &file, std::size_t line,
                std::string_view rule);

/** Collects findings, applying suppressions at add() time. */
class Diagnostics
{
  public:
    /** Record @p rule firing at @p file:@p line unless the line
     * carries a matching suppression. */
    void add(const SourceFile &file, std::size_t line,
             std::string_view rule, std::string message);

    const std::vector<Finding> &findings() const
    {
        return findings_;
    }

    bool empty() const { return findings_.empty(); }
    std::size_t size() const { return findings_.size(); }

    /** `file:line: [rule] message` per finding, then a count line
     * (`<tool>: N finding(s)`) when anything fired. */
    void printText(const char *tool) const;

    /**
     * Strict-JSON report:
     * {"tool": ..., "findings": [{"file","line","rule","message"}],
     *  "counts": {"total": N, "<rule>": n, ...}}
     * Rules in "counts" are sorted; findings keep add() order.
     */
    std::string json(const char *tool) const;

    /** One-line JSON summary ({"tool",...,"findings":N}) for the CI
     * log, mirroring the bench harness' metric lines. */
    std::string summaryLine(const char *tool) const;

  private:
    std::vector<Finding> findings_;
};

/** JSON string escaping (RFC 8259: quotes, backslash, control
 * characters) used by the report emitters. */
std::string jsonEscape(std::string_view text);

} // namespace lag::analysis

#endif // LAG_TOOLS_ANALYSIS_DIAGNOSTICS_HH
