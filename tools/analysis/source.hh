/**
 * @file
 * Shared lexing front end for the project's static-analysis tools
 * (lag_lint, lag_check).
 *
 * Deliberately lexer-level and dependency-free: the container
 * toolchain is plain gcc, so there is no libclang to lean on. A
 * SourceFile holds the raw lines plus a "blanked" view in which
 * comments and the contents of string/char literals are replaced by
 * spaces (layout-preserving, so columns and line numbers survive).
 * Every rule in both tools matches against the blanked view and so
 * never fires on prose.
 */

#ifndef LAG_TOOLS_ANALYSIS_SOURCE_HH
#define LAG_TOOLS_ANALYSIS_SOURCE_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lag::analysis
{

/** One file, scanned: raw lines plus comment/string-blanked lines. */
struct SourceFile
{
    /** Path relative to the analysis root, '/'-separated. */
    std::string relPath;

    std::vector<std::string> raw;
    std::vector<std::string> code;

    /** Blanked lines of the paired header (X.hh beside X.cc), so
     * member declarations are visible when analyzing the .cc. */
    std::vector<std::string> headerCode;
};

/** True for the characters C++ identifiers are made of. */
bool isIdentChar(char c);

/**
 * Blank comments and literal contents while preserving layout.
 * Handles //, block comments, "..." with escapes, '...' and basic
 * raw strings R"delim(...)delim". Block comments may span lines.
 */
std::vector<std::string>
blankNonCode(const std::vector<std::string> &raw);

/** Position of token @p word in @p code as a whole word, from
 * @p from; npos when absent. */
std::size_t findWord(std::string_view code, std::string_view word,
                     std::size_t from = 0);

/** True when the call-shaped token @p name( appears as a free
 * function (not a member access, not part of an identifier). */
bool hasFreeCall(std::string_view code, std::string_view name);

/**
 * The blanked lines joined into one string (newlines replaced by a
 * single space) with a per-character 1-based line map, so matchers
 * can follow constructs that span lines.
 */
struct JoinedCode
{
    std::string text;
    std::vector<std::size_t> lineOf;
};

JoinedCode joinCode(const std::vector<std::string> &lines);

} // namespace lag::analysis

#endif // LAG_TOOLS_ANALYSIS_SOURCE_HH
