/**
 * @file
 * File-set walker shared by the static-analysis tools: resolves the
 * command-line paths against an analysis root, walks directories in
 * deterministic (sorted) order, filters to C++ extensions, and
 * loads each file as a blanked SourceFile (pairing X.cc with its
 * X.hh so declaration-aware rules see both).
 *
 * Seeded-violation fixture trees (any directory named
 * "lint_fixtures" or "check_fixtures") and build trees (any
 * directory starting with "build") are skipped unless named
 * explicitly on the command line, so a whole-tree run stays clean.
 */

#ifndef LAG_TOOLS_ANALYSIS_WALKER_HH
#define LAG_TOOLS_ANALYSIS_WALKER_HH

#include <filesystem>
#include <string>
#include <vector>

#include "source.hh"

namespace lag::analysis
{

/** True for extensions the tools consider C++ source. */
bool lintableExtension(const std::filesystem::path &path);

/** @p path relative to @p root, '/'-separated ('path' itself when
 * no relative form exists). */
std::string relativeTo(const std::filesystem::path &root,
                       const std::filesystem::path &path);

/**
 * Load @p path as a SourceFile (raw + blanked + paired header).
 * Returns false and prints to stderr (prefixed with @p tool) when
 * the file cannot be read.
 */
bool loadSourceFile(const char *tool,
                    const std::filesystem::path &root,
                    const std::filesystem::path &path,
                    SourceFile &out);

/**
 * Collect every lintable file under @p paths (files or directories,
 * relative paths resolved against @p root) into @p out, sorted and
 * deduplicated by relative path. Returns false when any path is
 * missing or unreadable; the readable remainder is still loaded.
 */
bool collectFiles(const char *tool,
                  const std::filesystem::path &root,
                  const std::vector<std::string> &paths,
                  std::vector<SourceFile> &out);

} // namespace lag::analysis

#endif // LAG_TOOLS_ANALYSIS_WALKER_HH
