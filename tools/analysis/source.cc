#include "source.hh"

namespace lag::analysis
{

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

std::vector<std::string>
blankNonCode(const std::vector<std::string> &raw)
{
    enum class State
    {
        Normal,
        Block,   // /* ... */
        Str,     // "..."
        Chr,     // '...'
        RawStr,  // R"delim( ... )delim"
    };
    State state = State::Normal;
    std::string rawDelim; // for RawStr: ")delim\""

    std::vector<std::string> out;
    out.reserve(raw.size());
    for (const std::string &line : raw) {
        std::string code = line;
        std::size_t i = 0;
        const std::size_t n = line.size();
        while (i < n) {
            switch (state) {
              case State::Normal:
                if (line[i] == '/' && i + 1 < n && line[i + 1] == '/') {
                    for (std::size_t j = i; j < n; ++j)
                        code[j] = ' ';
                    i = n;
                } else if (line[i] == '/' && i + 1 < n &&
                           line[i + 1] == '*') {
                    code[i] = code[i + 1] = ' ';
                    i += 2;
                    state = State::Block;
                } else if (line[i] == '"' && i > 0 && line[i - 1] == 'R' &&
                           (i == 1 || !isIdentChar(line[i - 2]))) {
                    // R"delim( — collect the delimiter.
                    std::size_t j = i + 1;
                    std::string delim;
                    while (j < n && line[j] != '(')
                        delim += line[j++];
                    rawDelim = ")" + delim + "\"";
                    for (std::size_t k = i; k < j && k < n; ++k)
                        code[k] = ' ';
                    i = j;
                    state = State::RawStr;
                } else if (line[i] == '"') {
                    code[i] = ' ';
                    ++i;
                    state = State::Str;
                } else if (line[i] == '\'' &&
                           !(i > 0 && isIdentChar(line[i - 1]))) {
                    // Skip digit separators (1'000'000) via the
                    // preceding-identifier-char test.
                    code[i] = ' ';
                    ++i;
                    state = State::Chr;
                } else {
                    ++i;
                }
                break;
              case State::Block:
                if (line[i] == '*' && i + 1 < n && line[i + 1] == '/') {
                    code[i] = code[i + 1] = ' ';
                    i += 2;
                    state = State::Normal;
                } else {
                    code[i] = ' ';
                    ++i;
                }
                break;
              case State::Str:
              case State::Chr: {
                const char quote = state == State::Str ? '"' : '\'';
                if (line[i] == '\\' && i + 1 < n) {
                    code[i] = code[i + 1] = ' ';
                    i += 2;
                } else {
                    const bool end = line[i] == quote;
                    code[i] = ' ';
                    ++i;
                    if (end)
                        state = State::Normal;
                }
                break;
              }
              case State::RawStr:
                if (line.compare(i, rawDelim.size(), rawDelim) == 0) {
                    for (std::size_t k = 0; k < rawDelim.size(); ++k)
                        code[i + k] = ' ';
                    i += rawDelim.size();
                    state = State::Normal;
                } else {
                    code[i] = ' ';
                    ++i;
                }
                break;
            }
        }
        // Unterminated " or ' never spans lines in valid C++.
        if (state == State::Str || state == State::Chr)
            state = State::Normal;
        out.push_back(std::move(code));
    }
    return out;
}

std::size_t
findWord(std::string_view code, std::string_view word,
         std::size_t from)
{
    while (true) {
        const std::size_t pos = code.find(word, from);
        if (pos == std::string_view::npos)
            return pos;
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok)
            return pos;
        from = pos + 1;
    }
}

bool
hasFreeCall(std::string_view code, std::string_view name)
{
    std::size_t from = 0;
    while (true) {
        const std::size_t pos = findWord(code, name, from);
        if (pos == std::string_view::npos)
            return false;
        std::size_t j = pos + name.size();
        while (j < code.size() && code[j] == ' ')
            ++j;
        const bool is_call = j < code.size() && code[j] == '(';
        bool member = false;
        if (pos > 0) {
            const char prev = code[pos - 1];
            if (prev == '.')
                member = true;
            if (prev == '>' && pos > 1 && code[pos - 2] == '-')
                member = true;
        }
        if (is_call && !member)
            return true;
        from = pos + 1;
    }
}

JoinedCode
joinCode(const std::vector<std::string> &lines)
{
    JoinedCode joined;
    std::size_t total = 0;
    for (const std::string &line : lines)
        total += line.size() + 1;
    joined.text.reserve(total);
    joined.lineOf.reserve(total);
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        for (const char c : lines[ln]) {
            joined.text += c;
            joined.lineOf.push_back(ln + 1);
        }
        joined.text += ' ';
        joined.lineOf.push_back(ln + 1);
    }
    return joined;
}

} // namespace lag::analysis
