#include "diagnostics.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace lag::analysis
{

namespace
{

/** Strip leading/trailing spaces and tabs. */
std::string_view
trim(std::string_view text)
{
    while (!text.empty() &&
           (text.front() == ' ' || text.front() == '\t'))
        text.remove_prefix(1);
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '\t'))
        text.remove_suffix(1);
    return text;
}

/**
 * True when @p raw carries `lag-lint: <form>(...)` whose
 * comma-separated rule list contains @p rule.
 */
bool
lineAllows(std::string_view raw, std::string_view form,
           std::string_view rule)
{
    const std::string tag = std::string("lag-lint: ") +
                            std::string(form) + "(";
    std::size_t pos = raw.find(tag);
    while (pos != std::string_view::npos) {
        const std::size_t open = pos + tag.size();
        const std::size_t close = raw.find(')', open);
        if (close == std::string_view::npos)
            return false;
        std::string_view list = raw.substr(open, close - open);
        while (!list.empty()) {
            const std::size_t comma = list.find(',');
            const std::string_view item =
                trim(list.substr(0, comma));
            if (item == rule)
                return true;
            if (comma == std::string_view::npos)
                break;
            list.remove_prefix(comma + 1);
        }
        pos = raw.find(tag, close);
    }
    return false;
}

} // namespace

bool
suppressed(const SourceFile &file, std::size_t line,
           std::string_view rule)
{
    if (line == 0 || line > file.raw.size())
        return false;
    if (lineAllows(file.raw[line - 1], "allow", rule))
        return true;
    // `allow-next` on the preceding line suppresses this one. The
    // same-line `allow` form deliberately does not cascade.
    return line >= 2 &&
           lineAllows(file.raw[line - 2], "allow-next", rule);
}

void
Diagnostics::add(const SourceFile &file, std::size_t line,
                 std::string_view rule, std::string message)
{
    if (suppressed(file, line, rule))
        return;
    findings_.push_back(Finding{file.relPath, line,
                                std::string(rule),
                                std::move(message)});
}

void
Diagnostics::printText(const char *tool) const
{
    for (const Finding &f : findings_)
        std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    if (!findings_.empty())
        std::printf("%s: %zu finding(s)\n", tool, findings_.size());
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
Diagnostics::json(const char *tool) const
{
    std::string out = "{\"tool\": \"";
    out += jsonEscape(tool);
    out += "\", \"findings\": [";
    bool first = true;
    for (const Finding &f : findings_) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + jsonEscape(f.rule) +
               "\", \"message\": \"" + jsonEscape(f.message) +
               "\"}";
    }
    out += "], \"counts\": {\"total\": " +
           std::to_string(findings_.size());
    std::map<std::string, std::size_t> byRule;
    for (const Finding &f : findings_)
        ++byRule[f.rule];
    for (const auto &[rule, count] : byRule)
        out += ", \"" + jsonEscape(rule) +
               "\": " + std::to_string(count);
    out += "}}\n";
    return out;
}

std::string
Diagnostics::summaryLine(const char *tool) const
{
    std::map<std::string, std::size_t> byRule;
    for (const Finding &f : findings_)
        ++byRule[f.rule];
    std::string out = "{\"tool\": \"" + jsonEscape(tool) +
                      "\", \"findings\": " +
                      std::to_string(findings_.size());
    for (const auto &[rule, count] : byRule)
        out += ", \"" + jsonEscape(rule) +
               "\": " + std::to_string(count);
    out += "}";
    return out;
}

} // namespace lag::analysis
