#include "functions.hh"

#include <initializer_list>

namespace lag::analysis
{

namespace
{

bool
isKeyword(const std::string &word)
{
    static const char *kKeywords[] = {
        "if", "for", "while", "switch", "catch", "return", "do",
        "else", "sizeof", "alignof", "decltype", "new", "delete",
        "throw", "case", "goto", "static_assert", "assert",
        "defined", "alignas", "co_await", "co_return", "co_yield",
    };
    for (const char *kw : kKeywords)
        if (word == kw)
            return true;
    return false;
}

bool
isTrailerWord(const std::string &word)
{
    static const char *kTrailers[] = {
        "const", "noexcept", "override", "final", "volatile",
        "mutable", "try",
    };
    for (const char *kw : kTrailers)
        if (word == kw)
            return true;
    return false;
}

std::size_t
skipSpaces(const std::string &text, std::size_t pos)
{
    while (pos < text.size() && text[pos] == ' ')
        ++pos;
    return pos;
}

/** Last non-space position before @p pos, or npos. */
std::size_t
prevNonSpace(const std::string &text, std::size_t pos)
{
    while (pos > 0) {
        --pos;
        if (text[pos] != ' ')
            return pos;
    }
    return std::string::npos;
}

/**
 * From just after the parameter list's ')', find the body '{' of a
 * definition, skipping cv/ref qualifiers, annotation macro calls
 * (IDENT(...)), a trailing return type and a constructor
 * initializer list. Returns npos when the construct is a
 * declaration or not a function at all.
 */
std::size_t
findBodyBrace(const std::string &text, std::size_t pos)
{
    const std::size_t n = text.size();
    bool in_init_list = false;
    bool in_trailing_return = false;
    while (pos < n) {
        pos = skipSpaces(text, pos);
        if (pos >= n)
            return std::string::npos;
        const char c = text[pos];
        if (c == ';' || c == ',' || c == '=')
            return std::string::npos; // declaration / `= delete`
        if (c == '{') {
            if (!in_init_list)
                return pos;
            // Inside an init list a '{' directly after a member
            // name is that member's brace-init; the body brace
            // follows ')', '}' or a trailer word instead.
            const std::size_t prev = prevNonSpace(text, pos);
            if (prev != std::string::npos &&
                isIdentChar(text[prev])) {
                const std::size_t close =
                    matchForward(text, pos, '{', '}');
                if (close == std::string::npos)
                    return std::string::npos;
                pos = close + 1;
                continue;
            }
            return pos;
        }
        if (c == '(') {
            const std::size_t close =
                matchForward(text, pos, '(', ')');
            if (close == std::string::npos)
                return std::string::npos;
            pos = close + 1;
            continue;
        }
        if (c == ':') {
            if (pos + 1 < n && text[pos + 1] == ':') {
                pos += 2; // qualified name in init list / return
                continue;
            }
            in_init_list = true;
            ++pos;
            continue;
        }
        if (c == '-' && pos + 1 < n && text[pos + 1] == '>') {
            in_trailing_return = true;
            pos += 2;
            continue;
        }
        if (isIdentChar(c)) {
            std::size_t end = pos;
            while (end < n && isIdentChar(text[end]))
                ++end;
            const std::string word = text.substr(pos, end - pos);
            pos = end;
            if (in_init_list || in_trailing_return ||
                isTrailerWord(word) ||
                word.compare(0, 4, "LAG_") == 0)
                continue;
            return std::string::npos; // e.g. `int a(1), b;`
        }
        if (in_trailing_return &&
            (c == '<' || c == '>' || c == '&' || c == '*')) {
            ++pos;
            continue;
        }
        if (c == '&') { // ref-qualified member function
            ++pos;
            continue;
        }
        return std::string::npos;
    }
    return std::string::npos;
}

} // namespace

std::size_t
matchForward(const std::string &text, std::size_t openPos,
             char open, char close)
{
    int depth = 0;
    for (std::size_t i = openPos; i < text.size(); ++i) {
        if (text[i] == open) {
            ++depth;
        } else if (text[i] == close) {
            if (--depth == 0)
                return i;
        }
    }
    return std::string::npos;
}

std::vector<FunctionDef>
extractFunctions(const JoinedCode &joined)
{
    const std::string &text = joined.text;
    const std::size_t n = text.size();
    std::vector<FunctionDef> out;

    std::size_t i = 0;
    while (i < n) {
        if (!isIdentChar(text[i])) {
            ++i;
            continue;
        }
        const std::size_t nameBegin = i;
        while (i < n && isIdentChar(text[i]))
            ++i;
        const std::string name =
            text.substr(nameBegin, i - nameBegin);
        const std::size_t paren = skipSpaces(text, i);
        if (paren >= n || text[paren] != '(')
            continue;
        if (isKeyword(name) || (name[0] >= '0' && name[0] <= '9'))
            continue;
        const std::size_t paramsClose =
            matchForward(text, paren, '(', ')');
        if (paramsClose == std::string::npos)
            continue;
        const std::size_t bodyOpen =
            findBodyBrace(text, paramsClose + 1);
        if (bodyOpen == std::string::npos)
            continue;
        const std::size_t bodyClose =
            matchForward(text, bodyOpen, '{', '}');
        if (bodyClose == std::string::npos)
            continue;

        FunctionDef def;
        def.name = name;
        def.qualified = name;
        // Walk back over `Qualifier::` prefixes for the display
        // name (resolution uses the unqualified name).
        std::size_t back = nameBegin;
        while (back >= 2 && text[back - 1] == ':' &&
               text[back - 2] == ':') {
            std::size_t q = back - 2;
            while (q > 0 && isIdentChar(text[q - 1]))
                --q;
            if (q == back - 2)
                break;
            def.qualified =
                text.substr(q, back - 2 - q) + "::" + def.qualified;
            back = q;
        }
        def.line = joined.lineOf[nameBegin];
        def.bodyBegin = bodyOpen;
        def.bodyEnd = bodyClose;
        out.push_back(std::move(def));
        // Continue scanning *inside* the body too: misparsed outer
        // constructs must not hide real definitions.
        i = bodyOpen + 1;
    }
    return out;
}

std::size_t
scopeEnd(const std::string &text, std::size_t pos,
         std::size_t bodyEnd)
{
    int depth = 0;
    for (std::size_t i = pos; i < bodyEnd && i < text.size(); ++i) {
        if (text[i] == '{') {
            ++depth;
        } else if (text[i] == '}') {
            if (depth == 0)
                return i;
            --depth;
        }
    }
    return bodyEnd;
}

} // namespace lag::analysis
