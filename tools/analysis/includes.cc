#include "includes.hh"

#include "walker.hh"

namespace lag::analysis
{

namespace fs = std::filesystem;

namespace
{

/** The path between quotes of an `#include "..."` line, or "". */
std::string
quotedInclude(const std::string &raw)
{
    std::size_t i = 0;
    while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t'))
        ++i;
    if (i >= raw.size() || raw[i] != '#')
        return "";
    ++i;
    while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t'))
        ++i;
    if (raw.compare(i, 7, "include") != 0)
        return "";
    i += 7;
    while (i < raw.size() && (raw[i] == ' ' || raw[i] == '\t'))
        ++i;
    if (i >= raw.size() || raw[i] != '"')
        return "";
    const std::size_t close = raw.find('"', i + 1);
    if (close == std::string::npos)
        return "";
    return raw.substr(i + 1, close - i - 1);
}

} // namespace

std::vector<IncludeDirective>
projectIncludes(const fs::path &root, const SourceFile &file)
{
    std::vector<IncludeDirective> out;
    const fs::path dir = (root / file.relPath).parent_path();
    for (std::size_t ln = 1; ln <= file.raw.size(); ++ln) {
        const std::string spelling = quotedInclude(file.raw[ln - 1]);
        if (spelling.empty())
            continue;
        IncludeDirective directive;
        directive.line = ln;
        directive.spelling = spelling;
        std::error_code ec;
        // Same-directory first (how the compiler resolves quoted
        // includes), then the src/ include root the build exports.
        if (fs::exists(dir / spelling, ec)) {
            directive.resolved = relativeTo(
                root, fs::weakly_canonical(dir / spelling, ec));
        } else if (fs::exists(root / "src" / spelling, ec)) {
            directive.resolved = relativeTo(
                root,
                fs::weakly_canonical(root / "src" / spelling, ec));
        }
        out.push_back(std::move(directive));
    }
    return out;
}

} // namespace lag::analysis
