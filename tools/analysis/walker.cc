#include "walker.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace lag::analysis
{

namespace fs = std::filesystem;

namespace
{

std::vector<std::string>
readLines(std::ifstream &in)
{
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(line);
    }
    return lines;
}

bool
walk(const char *tool, const fs::path &root, const fs::path &path,
     std::vector<SourceFile> &out)
{
    if (fs::is_directory(path)) {
        // Deterministic order for stable output.
        std::vector<fs::path> children;
        for (const auto &entry : fs::directory_iterator(path))
            children.push_back(entry.path());
        std::sort(children.begin(), children.end());
        bool ok = true;
        for (const fs::path &child : children) {
            const std::string name = child.filename().string();
            // Seeded-violation fixtures and build trees are only
            // analyzed when named explicitly on the command line.
            if (name == "lint_fixtures" || name == "check_fixtures" ||
                name.compare(0, 5, "build") == 0)
                continue;
            if (fs::is_directory(child) || lintableExtension(child))
                ok = walk(tool, root, child, out) && ok;
        }
        return ok;
    }
    SourceFile file;
    if (!loadSourceFile(tool, root, path, file))
        return false;
    out.push_back(std::move(file));
    return true;
}

} // namespace

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".h" || ext == ".hpp";
}

std::string
relativeTo(const fs::path &root, const fs::path &path)
{
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    const fs::path &use = ec ? path : rel;
    return use.generic_string();
}

bool
loadSourceFile(const char *tool, const fs::path &root,
               const fs::path &path, SourceFile &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", tool,
                     path.string().c_str());
        return false;
    }
    out.relPath = relativeTo(root, path);
    out.raw = readLines(in);
    out.code = blankNonCode(out.raw);
    out.headerCode.clear();

    const std::string ext = path.extension().string();
    if (ext == ".cc" || ext == ".cpp") {
        for (const char *hext : {".hh", ".h", ".hpp"}) {
            fs::path header = path;
            header.replace_extension(hext);
            std::ifstream hin(header, std::ios::binary);
            if (!hin)
                continue;
            out.headerCode = blankNonCode(readLines(hin));
            break;
        }
    }
    return true;
}

bool
collectFiles(const char *tool, const fs::path &root,
             const std::vector<std::string> &paths,
             std::vector<SourceFile> &out)
{
    bool ok = true;
    for (const std::string &p : paths) {
        fs::path full = fs::path(p);
        if (full.is_relative())
            full = root / full;
        if (!fs::exists(full)) {
            std::fprintf(stderr, "%s: no such path '%s'\n", tool,
                         full.string().c_str());
            ok = false;
            continue;
        }
        ok = walk(tool, root, full, out) && ok;
    }
    std::sort(out.begin(), out.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.relPath < b.relPath;
              });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const SourceFile &a,
                             const SourceFile &b) {
                              return a.relPath == b.relPath;
                          }),
              out.end());
    return ok;
}

} // namespace lag::analysis
