/**
 * @file
 * Project include-graph extraction for lag_check.
 *
 * Quoted includes are read from the *raw* lines (blanking erases
 * the path literal) and resolved the way the build does: first
 * against the including file's own directory, then against the
 * `src/` include root. Angle-bracket includes are system headers
 * and out of scope. Unresolvable quoted includes are surfaced to
 * the caller instead of silently dropped — a typo'd include should
 * fail the architecture check, not vanish from the graph.
 */

#ifndef LAG_TOOLS_ANALYSIS_INCLUDES_HH
#define LAG_TOOLS_ANALYSIS_INCLUDES_HH

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "source.hh"

namespace lag::analysis
{

/** One `#include "..."` directive. */
struct IncludeDirective
{
    std::size_t line = 0;  ///< 1-based line of the directive
    std::string spelling;  ///< the path as written

    /** Root-relative path of the included file; empty when the
     * include did not resolve inside the project. */
    std::string resolved;
};

/** Quoted includes of @p file (raw text), resolved against the
 * file's directory and then @p root / "src". */
std::vector<IncludeDirective>
projectIncludes(const std::filesystem::path &root,
                const SourceFile &file);

} // namespace lag::analysis

#endif // LAG_TOOLS_ANALYSIS_INCLUDES_HH
