/**
 * @file
 * lag-check: LagAlyzer's whole-project architecture checker.
 *
 * Where lag_lint enforces per-line invariants, lag_check looks at
 * relationships *between* files: the project include graph against
 * the declared layer DAG (ci/layers.conf), and the static lock
 * discipline recovered from the LockRank table. Both analyses run
 * over the same lexer-level front end (tools/analysis/), so a
 * single pass of comment/string blanking serves both tools.
 *
 * Rule families (see DESIGN.md "Static analysis & invariants"):
 *
 *   layering  layer-cycle, layer-violation, layer-unmapped,
 *             include-unresolved, unused-include  (tools/check/layers)
 *   locking   rank-inversion, lock-across-blocking,
 *             guarded-by-gap                      (tools/check/locks)
 *
 * Output: human text on stdout (`file:line: [rule] message`), an
 * optional strict-JSON report (--json FILE) and an optional one-line
 * JSON summary (--summary) for the CI log. Exit status: 0 clean,
 * 1 findings, 2 I/O or configuration error. The suppression syntax
 * is shared with lag_lint: `// lag-lint: allow(<rule>[, ...])` on
 * the flagged line or `allow-next` on the line above.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/walker.hh"
#include "check/layers.hh"
#include "check/locks.hh"

namespace
{

namespace fs = std::filesystem;

constexpr const char *kTool = "lag-check";

struct RuleDoc
{
    const char *name;
    const char *summary;
};

const RuleDoc kRules[] = {
    {"layer-cycle",
     "a cycle in the file-level include graph"},
    {"layer-violation",
     "an include edge the declared layer DAG (ci/layers.conf) "
     "forbids"},
    {"layer-unmapped",
     "a file no layer in the conf covers"},
    {"include-unresolved",
     "a quoted include that resolves nowhere in the project"},
    {"unused-include",
     "an included project header none of whose declared names the "
     "includer references"},
    {"rank-inversion",
     "acquiring a LockRank >= one already held, directly or through "
     "a statically reachable callee"},
    {"lock-across-blocking",
     "a blocking call (poll/accept/read/write/sleep_for family) "
     "while a lag::Mutex is held"},
    {"guarded-by-gap",
     "a data member declared after a Mutex member without "
     "LAG_GUARDED_BY"},
};

void
printHelp()
{
    std::printf(
        "usage: lag_check [--root DIR] [--layers FILE] "
        "[--json FILE] [--summary] [--list-rules] [paths...]\n"
        "Checks paths (default: src tools) relative to DIR against\n"
        "the layer DAG in FILE (default: ci/layers.conf under DIR)\n"
        "and the static lock-rank discipline.\n"
        "  --json FILE   also write a strict-JSON report to FILE\n"
        "  --summary     print a one-line JSON summary to stdout\n"
        "Suppress a line with  // lag-lint: allow(<rule>[, ...])\n"
        "or the line below with  // lag-lint: allow-next(...)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    fs::path layersConf;
    std::string jsonPath;
    bool summary = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--root" || arg == "--layers" ||
            arg == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             kTool, argv[i]);
                return 2;
            }
            if (arg == "--root")
                root = argv[++i];
            else if (arg == "--layers")
                layersConf = argv[++i];
            else
                jsonPath = argv[++i];
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--list-rules") {
            for (const RuleDoc &rule : kRules)
                std::printf("%-20s %s\n", rule.name, rule.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            printHelp();
            return 0;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools"};
    if (layersConf.empty())
        layersConf = root / "ci" / "layers.conf";
    else if (layersConf.is_relative())
        layersConf = root / layersConf;

    const lag::check::LayerConfig config =
        lag::check::parseLayers(layersConf);
    if (!config.errors.empty()) {
        for (const std::string &error : config.errors)
            std::fprintf(stderr, "%s: %s\n", kTool, error.c_str());
        return 2;
    }

    std::vector<lag::analysis::SourceFile> files;
    const bool io_ok =
        lag::analysis::collectFiles(kTool, root, paths, files);

    lag::analysis::Diagnostics diagnostics;
    lag::check::checkIncludes(root, config, files, diagnostics);
    lag::check::checkLocks(files, diagnostics);

    diagnostics.printText(kTool);
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", kTool,
                         jsonPath.c_str());
            return 2;
        }
        out << diagnostics.json(kTool) << '\n';
    }
    if (summary)
        std::printf("%s\n",
                    diagnostics.summaryLine(kTool).c_str());

    if (!diagnostics.empty())
        return 1;
    if (!io_ok)
        return 2;
    return 0;
}
