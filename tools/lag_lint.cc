/**
 * @file
 * lag-lint: LagAlyzer's project-invariant linter.
 *
 * A deliberately lexer-level tool (no libclang dependency: the
 * container toolchain is plain gcc) that walks the tree and
 * enforces the determinism and concurrency invariants the compiler
 * cannot see. Each rule is a row in kRules; diagnostics are
 * `file:line: [rule] message` and the exit status is nonzero when
 * anything fired.
 *
 * The scanning front end (comment/string blanking, word matching,
 * the file walker and the suppression syntax) lives in
 * tools/analysis/ and is shared with lag_check, the whole-project
 * architecture and lock-discipline analyzer; lag_lint keeps the
 * per-line rules. A violation line can be suppressed — visibly,
 * greppably — with `// lag-lint: allow(<rule>[, <rule>...])` on the
 * flagged line, or `// lag-lint: allow-next(<rule>[, ...])` on the
 * line directly above it.
 *
 * Rules (see DESIGN.md "Static analysis & invariants"):
 *   wallclock      no wall-clock/OS-entropy source in simulated-
 *                  time code (src/sim, src/jvm, src/core)
 *   unordered-iter no range-for over a hash container in code that
 *                  feeds report/trace/JSON output
 *   raw-mutex      no raw std:: mutex/lock types outside the
 *                  annotated lag::Mutex wrapper
 *   naked-new      no naked new/delete in analysis code
 *   reserve-loop   no unsized push_back loops in the decode and
 *                  session-build hot paths (src/trace, src/core)
 *   byte-hash-loop no byte-at-a-time hash folding (same variable
 *                  `^=`-ed and `*=`-ed in one loop) in src/core,
 *                  src/util; fold words as in util/hash.hh
 *   float-hash     no floating point in pattern-key hashing
 *   obs-clock      no raw std::chrono clock in the span-
 *                  instrumented engine/decode paths (src/engine,
 *                  src/trace); timings go through the obs epoch
 *   signal-safe    no async-signal-unsafe constructs (allocation,
 *                  stdio, growable std:: containers) in files that
 *                  declare the `lag-lint:` `signal-safe` marker
 *                  comment — the crash-dump paths that run inside
 *                  a fatal handler
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/source.hh"
#include "analysis/walker.hh"

namespace
{

namespace fs = std::filesystem;

using lag::analysis::Diagnostics;
using lag::analysis::findWord;
using lag::analysis::hasFreeCall;
using lag::analysis::isIdentChar;
using lag::analysis::joinCode;
using lag::analysis::SourceFile;

/** Names declared with an unordered_{map,set} type in @p lines. */
std::vector<std::string>
unorderedDeclNames(const std::vector<std::string> &lines)
{
    std::vector<std::string> names;
    static const char *kTypes[] = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    for (const std::string &code : lines) {
        for (const char *type : kTypes) {
            std::size_t pos = findWord(code, type);
            while (pos != std::string::npos) {
                std::size_t j = pos + std::strlen(type);
                if (j < code.size() && code[j] == '<') {
                    int depth = 0;
                    while (j < code.size()) {
                        if (code[j] == '<')
                            ++depth;
                        else if (code[j] == '>' && --depth == 0) {
                            ++j;
                            break;
                        }
                        ++j;
                    }
                    while (j < code.size() &&
                           (code[j] == ' ' || code[j] == '&'))
                        ++j;
                    std::string name;
                    while (j < code.size() && isIdentChar(code[j]))
                        name += code[j++];
                    if (!name.empty() && !(name[0] >= '0' &&
                                           name[0] <= '9'))
                        names.push_back(std::move(name));
                }
                pos = findWord(code, type, pos + 1);
            }
        }
    }
    return names;
}

/** Range expression of each range-based for, with its line. */
struct RangeFor
{
    std::size_t line; // 1-based, line of the `for`
    std::string expr; // trimmed text after the top-level `:`
};

std::vector<RangeFor>
rangeFors(const SourceFile &file)
{
    // Join the file so a `for (...)` spanning lines still parses.
    const lag::analysis::JoinedCode joined = joinCode(file.code);
    const std::string &all = joined.text;

    std::vector<RangeFor> fors;
    std::size_t pos = findWord(all, "for");
    while (pos != std::string::npos) {
        std::size_t j = pos + 3;
        while (j < all.size() && all[j] == ' ')
            ++j;
        if (j >= all.size() || all[j] != '(') {
            pos = findWord(all, "for", pos + 1);
            continue;
        }
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t k = j; k < all.size(); ++k) {
            const char c = all[k];
            if (c == '(') {
                ++depth;
            } else if (c == ')') {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (c == ':' && depth == 1) {
                const bool dbl =
                    (k + 1 < all.size() && all[k + 1] == ':') ||
                    (k > 0 && all[k - 1] == ':');
                if (!dbl)
                    colon = k;
            }
        }
        if (colon != std::string::npos && close != std::string::npos) {
            std::string expr =
                all.substr(colon + 1, close - colon - 1);
            const auto first = expr.find_first_not_of(' ');
            const auto last = expr.find_last_not_of(' ');
            if (first != std::string::npos)
                expr = expr.substr(first, last - first + 1);
            else
                expr.clear();
            fors.push_back(RangeFor{joined.lineOf[pos],
                                    std::move(expr)});
        }
        pos = findWord(all, "for", pos + 1);
    }
    return fors;
}

bool
underAny(std::string_view rel,
         std::initializer_list<std::string_view> prefixes)
{
    for (const std::string_view prefix : prefixes) {
        if (rel.size() >= prefix.size() &&
            rel.compare(0, prefix.size(), prefix) == 0)
            return true;
    }
    return false;
}

using CheckFn = void (*)(const SourceFile &, Diagnostics &);

struct Rule
{
    const char *name;
    const char *summary;
    CheckFn check;
};

// ---------------------------------------------------------------
// Rule: wallclock
// ---------------------------------------------------------------

void
checkWallclock(const SourceFile &file, Diagnostics &out)
{
    if (!underAny(file.relPath,
                  {"src/sim/", "src/jvm/", "src/core/"}))
        return;
    static const char *kTokens[] = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "random_device", "gettimeofday", "clock_gettime",
    };
    static const char *kCalls[] = {
        "time", "clock", "rand", "srand", "random",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *token : kTokens) {
            if (findWord(code, token) != std::string::npos)
                out.add(file, ln, "wallclock",
                        std::string("'") + token +
                            "' in simulated-time code; use the "
                            "sim::EventQueue clock or lag::Rng");
        }
        for (const char *call : kCalls) {
            if (hasFreeCall(code, call))
                out.add(file, ln, "wallclock",
                        std::string("call to '") + call +
                            "()' in simulated-time code; use "
                            "the sim::EventQueue clock or "
                            "lag::Rng");
        }
    }
}

// ---------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------

void
checkUnorderedIter(const SourceFile &file, Diagnostics &out)
{
    if (!underAny(file.relPath,
                  {"src/core/", "src/trace/", "src/report/",
                   "src/viz/", "src/lila/", "src/app/",
                   "src/engine/"}))
        return;
    std::vector<std::string> names = unorderedDeclNames(file.code);
    const std::vector<std::string> header =
        unorderedDeclNames(file.headerCode);
    names.insert(names.end(), header.begin(), header.end());
    if (names.empty())
        return;
    for (const RangeFor &rf : rangeFors(file)) {
        std::string expr = rf.expr;
        if (expr.compare(0, 6, "this->") == 0)
            expr = expr.substr(6);
        bool ident = !expr.empty();
        for (const char c : expr)
            ident = ident && isIdentChar(c);
        if (!ident)
            continue;
        for (const std::string &name : names) {
            if (expr == name)
                out.add(file, rf.line, "unordered-iter",
                        "iteration over hash container '" + name +
                            "' in an output-feeding path; "
                            "iteration order is "
                            "nondeterministic — sort first or "
                            "iterate an ordered index");
        }
    }
}

// ---------------------------------------------------------------
// Rule: raw-mutex
// ---------------------------------------------------------------

void
checkRawMutex(const SourceFile &file, Diagnostics &out)
{
    if (file.relPath == "src/util/mutex.hh" ||
        file.relPath == "src/util/mutex.cc")
        return; // the one wrapping site
    static const char *kTypes[] = {
        "std::mutex", "std::timed_mutex", "std::recursive_mutex",
        "std::recursive_timed_mutex", "std::shared_mutex",
        "std::shared_timed_mutex", "std::lock_guard",
        "std::unique_lock", "std::scoped_lock",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *type : kTypes) {
            // The "std::" prefix already guarantees a clean left
            // boundary; check the right one only.
            std::size_t pos = code.find(type);
            while (pos != std::string::npos) {
                const std::size_t end = pos + std::strlen(type);
                if (end >= code.size() || !isIdentChar(code[end])) {
                    out.add(file, ln, "raw-mutex",
                            std::string("'") + type +
                                "' outside the annotated "
                                "wrapper; use lag::Mutex / "
                                "lag::MutexLock "
                                "(util/mutex.hh)");
                    break;
                }
                pos = code.find(type, pos + 1);
            }
        }
        // std::condition_variable is raw-mutex-only; the _any
        // variant pairs with lag::MutexLock and is allowed.
        std::size_t pos = code.find("std::condition_variable");
        while (pos != std::string::npos) {
            const std::size_t end =
                pos + std::strlen("std::condition_variable");
            if (end >= code.size() || !isIdentChar(code[end])) {
                out.add(file, ln, "raw-mutex",
                        "'std::condition_variable' cannot wait "
                        "on lag::Mutex; use "
                        "std::condition_variable_any with "
                        "lag::MutexLock");
                break;
            }
            pos = code.find("std::condition_variable", pos + 1);
        }
    }
}

// ---------------------------------------------------------------
// Rule: naked-new
// ---------------------------------------------------------------

void
checkNakedNew(const SourceFile &file, Diagnostics &out)
{
    if (!underAny(file.relPath,
                  {"src/core/", "src/engine/", "src/lila/"}))
        return;
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        if (findWord(code, "new") != std::string::npos)
            out.add(file, ln, "naked-new",
                    "naked 'new' in analysis code; use "
                    "containers or std::make_unique");
        std::size_t pos = findWord(code, "delete");
        while (pos != std::string::npos) {
            // `= delete` (deleted special member) is fine.
            std::size_t k = pos;
            while (k > 0 && code[k - 1] == ' ')
                --k;
            if (!(k > 0 && code[k - 1] == '=')) {
                out.add(file, ln, "naked-new",
                        "naked 'delete' in analysis code; use "
                        "containers or std::make_unique");
                break;
            }
            pos = findWord(code, "delete", pos + 1);
        }
    }
}

// ---------------------------------------------------------------
// Rule: reserve-loop
// ---------------------------------------------------------------

/**
 * Flag .push_back / .emplace_back calls inside a loop body whose
 * receiver is never sized (no `<receiver>.reserve(` or
 * `<receiver>.resize(` anywhere in the file or its paired header).
 * Growth loops without a reserve re-allocate logarithmically many
 * times and memcpy the whole vector each time — the exact traffic
 * the decode/session-build hot paths exist to avoid, so the rule
 * covers src/trace/ and src/core/. Genuinely unsizeable loops
 * (mining into an unknown number of patterns) carry a visible
 * `// lag-lint: allow(reserve-loop)`.
 */
/**
 * Mark every character of @p all inside a loop body: `for`/`while`
 * followed by a parenthesized head, then either a braced block or a
 * single statement up to `;`.
 */
std::vector<char>
loopBodyMask(const std::string &all)
{
    std::vector<char> inLoop(all.size(), 0);
    for (const char *kw : {"for", "while"}) {
        std::size_t pos = findWord(all, kw);
        while (pos != std::string::npos) {
            std::size_t j = pos + std::strlen(kw);
            while (j < all.size() && all[j] == ' ')
                ++j;
            if (j >= all.size() || all[j] != '(') {
                pos = findWord(all, kw, pos + 1);
                continue;
            }
            int depth = 0;
            std::size_t close = std::string::npos;
            for (std::size_t k = j; k < all.size(); ++k) {
                if (all[k] == '(') {
                    ++depth;
                } else if (all[k] == ')' && --depth == 0) {
                    close = k;
                    break;
                }
            }
            if (close == std::string::npos)
                break;
            std::size_t k = close + 1;
            while (k < all.size() && all[k] == ' ')
                ++k;
            std::size_t body_end = k;
            if (k < all.size() && all[k] == '{') {
                int braces = 0;
                for (std::size_t b = k; b < all.size(); ++b) {
                    if (all[b] == '{') {
                        ++braces;
                    } else if (all[b] == '}' && --braces == 0) {
                        body_end = b + 1;
                        break;
                    }
                }
            } else {
                while (body_end < all.size() &&
                       all[body_end] != ';')
                    ++body_end;
            }
            for (std::size_t b = k; b < body_end && b < all.size();
                 ++b)
                inLoop[b] = 1;
            pos = findWord(all, kw, pos + 1);
        }
    }
    return inLoop;
}

void
checkReserveLoop(const SourceFile &file, Diagnostics &out)
{
    if (!underAny(file.relPath, {"src/trace/", "src/core/"}))
        return;

    const lag::analysis::JoinedCode joined = joinCode(file.code);
    const std::string &all = joined.text;
    const std::vector<char> inLoop = loopBodyMask(all);

    // The paired header may hold the sizing call (a builder that
    // reserves in its constructor).
    const lag::analysis::JoinedCode headerJoined =
        joinCode(file.headerCode);
    const std::string &headerAll = headerJoined.text;

    for (const char *method : {"push_back", "emplace_back"}) {
        const std::string needle = std::string(".") + method;
        std::size_t pos = all.find(needle);
        for (; pos != std::string::npos;
             pos = all.find(needle, pos + 1)) {
            // Must be a call on a plain dotted receiver, in a loop.
            std::size_t j = pos + needle.size();
            while (j < all.size() && all[j] == ' ')
                ++j;
            if (j >= all.size() || all[j] != '(')
                continue;
            if (!inLoop[pos])
                continue;
            std::size_t start = pos;
            while (start > 0 && (isIdentChar(all[start - 1]) ||
                                 all[start - 1] == '.'))
                --start;
            const std::string receiver =
                all.substr(start, pos - start);
            // Indexed or computed receivers (grid[a], (*out)) are
            // someone else's storage; the chain heuristic cannot
            // name them, so they are out of scope.
            if (receiver.empty() || receiver.front() == '.' ||
                receiver.back() == '.')
                continue;
            bool sized = false;
            for (const char *sizer : {".reserve(", ".resize("}) {
                const std::string call = receiver + sizer;
                sized = sized ||
                        all.find(call) != std::string::npos ||
                        headerAll.find(call) != std::string::npos;
            }
            if (!sized)
                out.add(file, joined.lineOf[pos], "reserve-loop",
                        "'" + receiver + "." + method +
                            "' grows inside a loop with no "
                            "preceding '" + receiver +
                            ".reserve(...)'; size it up front "
                            "or annotate why you cannot");
        }
    }
}

// ---------------------------------------------------------------
// Rule: byte-hash-loop
// ---------------------------------------------------------------

/**
 * Flag the byte-at-a-time FNV folding idiom — the same variable
 * updated with both `^=` and `*=` inside one loop — in the analysis
 * hot paths (src/core, src/util). Folding a signature one byte per
 * iteration costs one load per byte; the word-at-a-time form in
 * util/hash.hh (one 8-byte load, eight register folds, bit-identical
 * digest) is the sanctioned shape. A genuinely byte-wise tail loop
 * carries a visible `// lag-lint: allow(byte-hash-loop)`.
 */
void
checkByteHashLoop(const SourceFile &file, Diagnostics &out)
{
    if (!underAny(file.relPath, {"src/core/", "src/util/"}))
        return;

    const lag::analysis::JoinedCode joined = joinCode(file.code);
    const std::string &all = joined.text;
    const std::vector<char> inLoop = loopBodyMask(all);

    std::size_t pos = all.find("^=");
    for (; pos != std::string::npos; pos = all.find("^=", pos + 1)) {
        if (!inLoop[pos])
            continue;
        // Plain dotted/member receiver to the left of the `^=`.
        std::size_t end = pos;
        while (end > 0 && all[end - 1] == ' ')
            --end;
        std::size_t start = end;
        while (start > 0 && (isIdentChar(all[start - 1]) ||
                             all[start - 1] == '.'))
            --start;
        const std::string receiver = all.substr(start, end - start);
        if (receiver.empty() || receiver.front() == '.' ||
            receiver.back() == '.')
            continue;
        // The same receiver must also be multiplied in a loop for
        // this to look like an FNV fold.
        bool multiplied = false;
        std::size_t mul = all.find("*=");
        for (; mul != std::string::npos && !multiplied;
             mul = all.find("*=", mul + 1)) {
            if (!inLoop[mul])
                continue;
            std::size_t mend = mul;
            while (mend > 0 && all[mend - 1] == ' ')
                --mend;
            multiplied = mend >= receiver.size() &&
                         all.compare(mend - receiver.size(),
                                     receiver.size(),
                                     receiver) == 0 &&
                         (mend == receiver.size() ||
                          !isIdentChar(
                              all[mend - receiver.size() - 1]));
        }
        if (multiplied)
            out.add(file, joined.lineOf[pos], "byte-hash-loop",
                    "byte-at-a-time hash fold ('" + receiver +
                        "' gets '^=' and '*=' in a loop); fold "
                        "words as in util/hash.hh or annotate a "
                        "genuine tail loop");
    }
}

// ---------------------------------------------------------------
// Rule: float-hash
// ---------------------------------------------------------------

void
checkFloatHash(const SourceFile &file, Diagnostics &out)
{
    static const char *kFiles[] = {
        "src/util/hash.hh", "src/util/hash.cc",
        "src/core/pattern.hh", "src/core/pattern.cc",
    };
    bool in_scope = false;
    for (const char *f : kFiles)
        in_scope = in_scope || file.relPath == f;
    if (!in_scope)
        return;
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *fp : {"double", "float"}) {
            if (findWord(code, fp) != std::string::npos)
                out.add(file, ln, "float-hash",
                        std::string("'") + fp +
                            "' in pattern-key hashing code; "
                            "keys must accumulate integral "
                            "state only (FNV-1a over bytes)");
        }
    }
}

// ---------------------------------------------------------------
// Rule: obs-clock
// ---------------------------------------------------------------

/**
 * The engine and decode paths are span-instrumented: every timing
 * they take must come from lag::processElapsedNs()
 * (util/thread_name.hh) or a LAG_SPAN, never a raw std::chrono
 * clock. Two epochs in one self-trace shift spans against each
 * other and make the Perfetto timeline lie. src/obs itself owns
 * the epoch and sits outside the scope.
 */
void
checkObsClock(const SourceFile &file, Diagnostics &out)
{
    if (!underAny(file.relPath, {"src/engine/", "src/trace/"}))
        return;
    static const char *kClocks[] = {
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *clock : kClocks) {
            if (findWord(code, clock) != std::string::npos)
                out.add(file, ln, "obs-clock",
                        std::string("'") + clock +
                            "' in span-instrumented code; use "
                            "lag::processElapsedNs() or a "
                            "LAG_SPAN so timings share the obs "
                            "epoch");
        }
    }
}

// ---------------------------------------------------------------
// Rule: signal-safe
// ---------------------------------------------------------------

/**
 * Files that opt in with the `lag-lint:` `signal-safe` marker run
 * (at least partly) inside a fatal-signal handler — the flight
 * recorder's crash-dump path. POSIX allows only the
 * async-signal-safe set there: write()/open()/close() and friends,
 * no allocation, no stdio, no locks. The rule rejects the
 * constructs that hide a malloc or a buffered FILE* behind a
 * friendly name; the dump path writes through a fixed char buffer
 * instead (obs/flightrec_dump.cc is the exemplar and must stay
 * clean).
 */
void
checkSignalSafe(const SourceFile &file, Diagnostics &out)
{
    // Opt-in marker lives in a comment, so look at the raw lines
    // (comments are blanked out of file.code). The needle is
    // spelled as adjacent literals so this file cannot mark
    // itself.
    static const std::string kMarker = std::string("lag-lint: ") +
                                       "signal-safe";
    bool marked = false;
    for (const std::string &line : file.raw)
        marked = marked ||
                 line.find(kMarker) != std::string::npos;
    if (!marked)
        return;

    // Allocation and stdio entry points (free-call shaped).
    static const char *kCalls[] = {
        "malloc",  "calloc",   "realloc", "free",
        "printf",  "fprintf",  "sprintf", "snprintf",
        "vsnprintf", "puts",   "fputs",   "fopen",
        "fclose",  "fflush",   "fwrite",  "fread",
    };
    // Types/helpers that allocate under the hood. The "std::"
    // prefix guarantees a clean left boundary (same trick as
    // raw-mutex); check the right boundary only.
    static const char *kTypes[] = {
        "std::string",        "std::ostringstream",
        "std::stringstream",  "std::istringstream",
        "std::to_string",     "std::vector",
        "std::map",           "std::unordered_map",
        "std::function",      "std::make_unique",
        "std::make_shared",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *call : kCalls) {
            if (hasFreeCall(code, call))
                out.add(file, ln, "signal-safe",
                        std::string("call to '") + call +
                            "()' in signal-safe code; only the "
                            "async-signal-safe set (write/open/"
                            "close, fixed buffers) may run in a "
                            "fatal handler");
        }
        for (const char *type : kTypes) {
            std::size_t pos = code.find(type);
            while (pos != std::string::npos) {
                const std::size_t end = pos + std::strlen(type);
                if (end >= code.size() ||
                    !isIdentChar(code[end])) {
                    out.add(file, ln, "signal-safe",
                            std::string("'") + type +
                                "' in signal-safe code; it "
                                "allocates — use fixed char "
                                "buffers in a fatal handler");
                    break;
                }
                pos = code.find(type, pos + 1);
            }
        }
        if (findWord(code, "new") != std::string::npos)
            out.add(file, ln, "signal-safe",
                    "'new' in signal-safe code; allocation is "
                    "not async-signal-safe");
    }
}

const Rule kRules[] = {
    {"wallclock",
     "no wall-clock/OS-entropy source in src/sim|jvm|core "
     "(simulated time only)",
     checkWallclock},
    {"unordered-iter",
     "no range-for over a hash container in output-feeding code "
     "(sort first)",
     checkUnorderedIter},
    {"raw-mutex",
     "no raw std:: mutex/lock types outside lag::Mutex "
     "(util/mutex.hh)",
     checkRawMutex},
    {"naked-new",
     "no naked new/delete in analysis code (src/core|engine|lila)",
     checkNakedNew},
    {"reserve-loop",
     "no unsized push_back/emplace_back loops in decode/build hot "
     "paths (src/trace|core)",
     checkReserveLoop},
    {"byte-hash-loop",
     "no byte-at-a-time hash folding in src/core|util; fold words "
     "(util/hash.hh)",
     checkByteHashLoop},
    {"float-hash",
     "no floating point in pattern-key hashing "
     "(util/hash, core/pattern)",
     checkFloatHash},
    {"obs-clock",
     "no raw std::chrono clock in src/engine|trace; share the obs "
     "epoch (processElapsedNs / LAG_SPAN)",
     checkObsClock},
    {"signal-safe",
     "no allocation/stdio in files marked '// lag-lint: "
     "signal-safe' (fatal-handler code)",
     checkSignalSafe},
};

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "lag-lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--list-rules") {
            for (const Rule &rule : kRules)
                std::printf("%-15s %s\n", rule.name, rule.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: lag_lint [--root DIR] [--list-rules] "
                "[paths...]\n"
                "Lints paths (default: src bench tests) relative "
                "to DIR.\n"
                "Suppress a line with  // lag-lint: "
                "allow(<rule>[, <rule>...])\n"
                "or the line below with  // lag-lint: "
                "allow-next(<rule>[, <rule>...])\n");
            return 0;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    std::vector<SourceFile> files;
    const bool io_ok =
        lag::analysis::collectFiles("lag-lint", root, paths, files);

    Diagnostics diagnostics;
    for (const SourceFile &file : files)
        for (const Rule &rule : kRules)
            rule.check(file, diagnostics);

    diagnostics.printText("lag-lint");
    if (!diagnostics.empty())
        return 1;
    if (!io_ok)
        return 2;
    return 0;
}
