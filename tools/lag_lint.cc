/**
 * @file
 * lag-lint: LagAlyzer's project-invariant linter.
 *
 * A deliberately lexer-level tool (no libclang dependency: the
 * container toolchain is plain gcc) that walks the tree and
 * enforces the determinism and concurrency invariants the compiler
 * cannot see. Each rule is a row in kRules; diagnostics are
 * `file:line: [rule] message` and the exit status is nonzero when
 * anything fired.
 *
 * The scanner blanks comments, string literals and char literals
 * (preserving columns and line numbers), so rules match only real
 * code. A violation line can be suppressed — visibly, greppably —
 * with a trailing `// lag-lint: allow(<rule>)` comment; the
 * suppression must sit on the exact line the diagnostic names.
 *
 * Rules (see DESIGN.md "Static analysis & invariants"):
 *   wallclock      no wall-clock/OS-entropy source in simulated-
 *                  time code (src/sim, src/jvm, src/core)
 *   unordered-iter no range-for over a hash container in code that
 *                  feeds report/trace/JSON output
 *   raw-mutex      no raw std:: mutex/lock types outside the
 *                  annotated lag::Mutex wrapper
 *   naked-new      no naked new/delete in analysis code
 *   reserve-loop   no unsized push_back loops in the decode and
 *                  session-build hot paths (src/trace, src/core)
 *   float-hash     no floating point in pattern-key hashing
 *   obs-clock      no raw std::chrono clock in the span-
 *                  instrumented engine/decode paths (src/engine,
 *                  src/trace); timings go through the obs epoch
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace
{

namespace fs = std::filesystem;

struct Finding
{
    std::string file;
    std::size_t line; // 1-based
    std::string rule;
    std::string message;
};

/** One file, scanned: raw lines plus comment/string-blanked lines. */
struct ScannedFile
{
    std::string relPath;
    std::vector<std::string> raw;
    std::vector<std::string> code;

    /** Blanked lines of the paired header (X.hh beside X.cc), so
     * member declarations are visible when linting the .cc. */
    std::vector<std::string> headerCode;
};

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/**
 * Blank comments and literal contents while preserving layout.
 * Handles //, block comments, "..." with escapes, '...' and basic
 * raw strings R"delim(...)delim".
 */
std::vector<std::string>
blankNonCode(const std::vector<std::string> &raw)
{
    enum class State
    {
        Normal,
        Block,   // /* ... */
        Str,     // "..."
        Chr,     // '...'
        RawStr,  // R"delim( ... )delim"
    };
    State state = State::Normal;
    std::string rawDelim; // for RawStr: ")delim\""

    std::vector<std::string> out;
    out.reserve(raw.size());
    for (const std::string &line : raw) {
        std::string code = line;
        std::size_t i = 0;
        const std::size_t n = line.size();
        while (i < n) {
            switch (state) {
              case State::Normal:
                if (line[i] == '/' && i + 1 < n && line[i + 1] == '/') {
                    for (std::size_t j = i; j < n; ++j)
                        code[j] = ' ';
                    i = n;
                } else if (line[i] == '/' && i + 1 < n &&
                           line[i + 1] == '*') {
                    code[i] = code[i + 1] = ' ';
                    i += 2;
                    state = State::Block;
                } else if (line[i] == '"' && i > 0 && line[i - 1] == 'R' &&
                           (i == 1 || !isIdentChar(line[i - 2]))) {
                    // R"delim( — collect the delimiter.
                    std::size_t j = i + 1;
                    std::string delim;
                    while (j < n && line[j] != '(')
                        delim += line[j++];
                    rawDelim = ")" + delim + "\"";
                    for (std::size_t k = i; k < j && k < n; ++k)
                        code[k] = ' ';
                    i = j;
                    state = State::RawStr;
                } else if (line[i] == '"') {
                    code[i] = ' ';
                    ++i;
                    state = State::Str;
                } else if (line[i] == '\'' &&
                           !(i > 0 && isIdentChar(line[i - 1]))) {
                    // Skip digit separators (1'000'000) via the
                    // preceding-identifier-char test.
                    code[i] = ' ';
                    ++i;
                    state = State::Chr;
                } else {
                    ++i;
                }
                break;
              case State::Block:
                if (line[i] == '*' && i + 1 < n && line[i + 1] == '/') {
                    code[i] = code[i + 1] = ' ';
                    i += 2;
                    state = State::Normal;
                } else {
                    code[i] = ' ';
                    ++i;
                }
                break;
              case State::Str:
              case State::Chr: {
                const char quote = state == State::Str ? '"' : '\'';
                if (line[i] == '\\' && i + 1 < n) {
                    code[i] = code[i + 1] = ' ';
                    i += 2;
                } else {
                    const bool end = line[i] == quote;
                    code[i] = ' ';
                    ++i;
                    if (end)
                        state = State::Normal;
                }
                break;
              }
              case State::RawStr:
                if (line.compare(i, rawDelim.size(), rawDelim) == 0) {
                    for (std::size_t k = 0; k < rawDelim.size(); ++k)
                        code[i + k] = ' ';
                    i += rawDelim.size();
                    state = State::Normal;
                } else {
                    code[i] = ' ';
                    ++i;
                }
                break;
            }
        }
        // Unterminated " or ' never spans lines in valid C++.
        if (state == State::Str || state == State::Chr)
            state = State::Normal;
        out.push_back(std::move(code));
    }
    return out;
}

/** Position of token @p word in @p code as a whole word, from
 * @p from; npos when absent. */
std::size_t
findWord(std::string_view code, std::string_view word,
         std::size_t from = 0)
{
    while (true) {
        const std::size_t pos = code.find(word, from);
        if (pos == std::string_view::npos)
            return pos;
        const bool left_ok = pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok)
            return pos;
        from = pos + 1;
    }
}

/** True when the call-shaped token @p name( appears as a free
 * function (not a member access, not part of an identifier). */
bool
hasFreeCall(std::string_view code, std::string_view name)
{
    std::size_t from = 0;
    while (true) {
        const std::size_t pos = findWord(code, name, from);
        if (pos == std::string_view::npos)
            return false;
        std::size_t j = pos + name.size();
        while (j < code.size() && code[j] == ' ')
            ++j;
        const bool is_call = j < code.size() && code[j] == '(';
        bool member = false;
        if (pos > 0) {
            const char prev = code[pos - 1];
            if (prev == '.')
                member = true;
            if (prev == '>' && pos > 1 && code[pos - 2] == '-')
                member = true;
        }
        if (is_call && !member)
            return true;
        from = pos + 1;
    }
}

/** Names declared with an unordered_{map,set} type in @p lines. */
std::vector<std::string>
unorderedDeclNames(const std::vector<std::string> &lines)
{
    std::vector<std::string> names;
    static const char *kTypes[] = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    for (const std::string &code : lines) {
        for (const char *type : kTypes) {
            std::size_t pos = findWord(code, type);
            while (pos != std::string::npos) {
                std::size_t j = pos + std::strlen(type);
                if (j < code.size() && code[j] == '<') {
                    int depth = 0;
                    while (j < code.size()) {
                        if (code[j] == '<')
                            ++depth;
                        else if (code[j] == '>' && --depth == 0) {
                            ++j;
                            break;
                        }
                        ++j;
                    }
                    while (j < code.size() &&
                           (code[j] == ' ' || code[j] == '&'))
                        ++j;
                    std::string name;
                    while (j < code.size() && isIdentChar(code[j]))
                        name += code[j++];
                    if (!name.empty() && !(name[0] >= '0' &&
                                           name[0] <= '9'))
                        names.push_back(std::move(name));
                }
                pos = findWord(code, type, pos + 1);
            }
        }
    }
    return names;
}

/** Range expression of each range-based for, with its line. */
struct RangeFor
{
    std::size_t line; // 1-based, line of the `for`
    std::string expr; // trimmed text after the top-level `:`
};

std::vector<RangeFor>
rangeFors(const ScannedFile &file)
{
    // Join the file so a `for (...)` spanning lines still parses;
    // remember each character's line.
    std::string all;
    std::vector<std::size_t> lineOf;
    for (std::size_t ln = 0; ln < file.code.size(); ++ln) {
        for (const char c : file.code[ln]) {
            all += c;
            lineOf.push_back(ln + 1);
        }
        all += ' ';
        lineOf.push_back(ln + 1);
    }

    std::vector<RangeFor> fors;
    std::size_t pos = findWord(all, "for");
    while (pos != std::string::npos) {
        std::size_t j = pos + 3;
        while (j < all.size() && all[j] == ' ')
            ++j;
        if (j >= all.size() || all[j] != '(') {
            pos = findWord(all, "for", pos + 1);
            continue;
        }
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t k = j; k < all.size(); ++k) {
            const char c = all[k];
            if (c == '(') {
                ++depth;
            } else if (c == ')') {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (c == ':' && depth == 1) {
                const bool dbl =
                    (k + 1 < all.size() && all[k + 1] == ':') ||
                    (k > 0 && all[k - 1] == ':');
                if (!dbl)
                    colon = k;
            }
        }
        if (colon != std::string::npos && close != std::string::npos) {
            std::string expr =
                all.substr(colon + 1, close - colon - 1);
            const auto first = expr.find_first_not_of(' ');
            const auto last = expr.find_last_not_of(' ');
            if (first != std::string::npos)
                expr = expr.substr(first, last - first + 1);
            else
                expr.clear();
            fors.push_back(RangeFor{lineOf[pos], std::move(expr)});
        }
        pos = findWord(all, "for", pos + 1);
    }
    return fors;
}

bool
underAny(std::string_view rel,
         std::initializer_list<std::string_view> prefixes)
{
    for (const std::string_view prefix : prefixes) {
        if (rel.size() >= prefix.size() &&
            rel.compare(0, prefix.size(), prefix) == 0)
            return true;
    }
    return false;
}

using CheckFn = std::function<void(const ScannedFile &,
                                   std::vector<Finding> &)>;

struct Rule
{
    const char *name;
    const char *summary;
    CheckFn check;
};

void
addFinding(std::vector<Finding> &out, const ScannedFile &file,
           std::size_t line, const char *rule,
           std::string message)
{
    // Per-line opt-out: `// lag-lint: allow(<rule>)` on the raw
    // (pre-blanking) text of the flagged line.
    const std::string &raw = file.raw[line - 1];
    const std::string tag = std::string("lag-lint: allow(") + rule +
                            ")";
    if (raw.find(tag) != std::string::npos)
        return;
    out.push_back(Finding{file.relPath, line, rule,
                          std::move(message)});
}

// ---------------------------------------------------------------
// Rule: wallclock
// ---------------------------------------------------------------

void
checkWallclock(const ScannedFile &file, std::vector<Finding> &out)
{
    if (!underAny(file.relPath,
                  {"src/sim/", "src/jvm/", "src/core/"}))
        return;
    static const char *kTokens[] = {
        "system_clock", "steady_clock", "high_resolution_clock",
        "random_device", "gettimeofday", "clock_gettime",
    };
    static const char *kCalls[] = {
        "time", "clock", "rand", "srand", "random",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *token : kTokens) {
            if (findWord(code, token) != std::string::npos)
                addFinding(out, file, ln, "wallclock",
                           std::string("'") + token +
                               "' in simulated-time code; use the "
                               "sim::EventQueue clock or lag::Rng");
        }
        for (const char *call : kCalls) {
            if (hasFreeCall(code, call))
                addFinding(out, file, ln, "wallclock",
                           std::string("call to '") + call +
                               "()' in simulated-time code; use "
                               "the sim::EventQueue clock or "
                               "lag::Rng");
        }
    }
}

// ---------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------

void
checkUnorderedIter(const ScannedFile &file,
                   std::vector<Finding> &out)
{
    if (!underAny(file.relPath,
                  {"src/core/", "src/trace/", "src/report/",
                   "src/viz/", "src/lila/", "src/app/",
                   "src/engine/"}))
        return;
    std::vector<std::string> names = unorderedDeclNames(file.code);
    const std::vector<std::string> header =
        unorderedDeclNames(file.headerCode);
    names.insert(names.end(), header.begin(), header.end());
    if (names.empty())
        return;
    for (const RangeFor &rf : rangeFors(file)) {
        std::string expr = rf.expr;
        if (expr.compare(0, 6, "this->") == 0)
            expr = expr.substr(6);
        bool ident = !expr.empty();
        for (const char c : expr)
            ident = ident && isIdentChar(c);
        if (!ident)
            continue;
        for (const std::string &name : names) {
            if (expr == name)
                addFinding(out, file, rf.line, "unordered-iter",
                           "iteration over hash container '" +
                               name +
                               "' in an output-feeding path; "
                               "iteration order is "
                               "nondeterministic — sort first or "
                               "iterate an ordered index");
        }
    }
}

// ---------------------------------------------------------------
// Rule: raw-mutex
// ---------------------------------------------------------------

void
checkRawMutex(const ScannedFile &file, std::vector<Finding> &out)
{
    if (file.relPath == "src/util/mutex.hh" ||
        file.relPath == "src/util/mutex.cc")
        return; // the one wrapping site
    static const char *kTypes[] = {
        "std::mutex", "std::timed_mutex", "std::recursive_mutex",
        "std::recursive_timed_mutex", "std::shared_mutex",
        "std::shared_timed_mutex", "std::lock_guard",
        "std::unique_lock", "std::scoped_lock",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *type : kTypes) {
            // The "std::" prefix already guarantees a clean left
            // boundary; check the right one only.
            std::size_t pos = code.find(type);
            while (pos != std::string::npos) {
                const std::size_t end = pos + std::strlen(type);
                if (end >= code.size() || !isIdentChar(code[end])) {
                    addFinding(out, file, ln, "raw-mutex",
                               std::string("'") + type +
                                   "' outside the annotated "
                                   "wrapper; use lag::Mutex / "
                                   "lag::MutexLock "
                                   "(util/mutex.hh)");
                    break;
                }
                pos = code.find(type, pos + 1);
            }
        }
        // std::condition_variable is raw-mutex-only; the _any
        // variant pairs with lag::MutexLock and is allowed.
        std::size_t pos = code.find("std::condition_variable");
        while (pos != std::string::npos) {
            const std::size_t end =
                pos + std::strlen("std::condition_variable");
            if (end >= code.size() || !isIdentChar(code[end])) {
                addFinding(out, file, ln, "raw-mutex",
                           "'std::condition_variable' cannot wait "
                           "on lag::Mutex; use "
                           "std::condition_variable_any with "
                           "lag::MutexLock");
                break;
            }
            pos = code.find("std::condition_variable", pos + 1);
        }
    }
}

// ---------------------------------------------------------------
// Rule: naked-new
// ---------------------------------------------------------------

void
checkNakedNew(const ScannedFile &file, std::vector<Finding> &out)
{
    if (!underAny(file.relPath,
                  {"src/core/", "src/engine/", "src/lila/"}))
        return;
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        if (findWord(code, "new") != std::string::npos)
            addFinding(out, file, ln, "naked-new",
                       "naked 'new' in analysis code; use "
                       "containers or std::make_unique");
        std::size_t pos = findWord(code, "delete");
        while (pos != std::string::npos) {
            // `= delete` (deleted special member) is fine.
            std::size_t k = pos;
            while (k > 0 && code[k - 1] == ' ')
                --k;
            if (!(k > 0 && code[k - 1] == '=')) {
                addFinding(out, file, ln, "naked-new",
                           "naked 'delete' in analysis code; use "
                           "containers or std::make_unique");
                break;
            }
            pos = findWord(code, "delete", pos + 1);
        }
    }
}

// ---------------------------------------------------------------
// Rule: reserve-loop
// ---------------------------------------------------------------

/**
 * Joined blanked code of @p lines with a per-character line map
 * (1-based), as rangeFors builds internally.
 */
std::string
joinCode(const std::vector<std::string> &lines,
         std::vector<std::size_t> &lineOf)
{
    std::string all;
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        for (const char c : lines[ln]) {
            all += c;
            lineOf.push_back(ln + 1);
        }
        all += ' ';
        lineOf.push_back(ln + 1);
    }
    return all;
}

/**
 * Flag .push_back / .emplace_back calls inside a loop body whose
 * receiver is never sized (no `<receiver>.reserve(` or
 * `<receiver>.resize(` anywhere in the file or its paired header).
 * Growth loops without a reserve re-allocate logarithmically many
 * times and memcpy the whole vector each time — the exact traffic
 * the decode/session-build hot paths exist to avoid, so the rule
 * covers src/trace/ and src/core/. Genuinely unsizeable loops
 * (mining into an unknown number of patterns) carry a visible
 * `// lag-lint: allow(reserve-loop)`.
 */
void
checkReserveLoop(const ScannedFile &file, std::vector<Finding> &out)
{
    if (!underAny(file.relPath, {"src/trace/", "src/core/"}))
        return;

    std::vector<std::size_t> lineOf;
    const std::string all = joinCode(file.code, lineOf);

    // Mark every character inside a loop body: `for`/`while`
    // followed by a parenthesized head, then either a braced block
    // or a single statement up to `;`.
    std::vector<char> inLoop(all.size(), 0);
    for (const char *kw : {"for", "while"}) {
        std::size_t pos = findWord(all, kw);
        while (pos != std::string::npos) {
            std::size_t j = pos + std::strlen(kw);
            while (j < all.size() && all[j] == ' ')
                ++j;
            if (j >= all.size() || all[j] != '(') {
                pos = findWord(all, kw, pos + 1);
                continue;
            }
            int depth = 0;
            std::size_t close = std::string::npos;
            for (std::size_t k = j; k < all.size(); ++k) {
                if (all[k] == '(') {
                    ++depth;
                } else if (all[k] == ')' && --depth == 0) {
                    close = k;
                    break;
                }
            }
            if (close == std::string::npos)
                break;
            std::size_t k = close + 1;
            while (k < all.size() && all[k] == ' ')
                ++k;
            std::size_t body_end = k;
            if (k < all.size() && all[k] == '{') {
                int braces = 0;
                for (std::size_t b = k; b < all.size(); ++b) {
                    if (all[b] == '{') {
                        ++braces;
                    } else if (all[b] == '}' && --braces == 0) {
                        body_end = b + 1;
                        break;
                    }
                }
            } else {
                while (body_end < all.size() &&
                       all[body_end] != ';')
                    ++body_end;
            }
            for (std::size_t b = k; b < body_end && b < all.size();
                 ++b)
                inLoop[b] = 1;
            pos = findWord(all, kw, pos + 1);
        }
    }

    // The paired header may hold the sizing call (a builder that
    // reserves in its constructor).
    std::vector<std::size_t> headerLineOf;
    const std::string headerAll =
        joinCode(file.headerCode, headerLineOf);

    for (const char *method : {"push_back", "emplace_back"}) {
        const std::string needle = std::string(".") + method;
        std::size_t pos = all.find(needle);
        for (; pos != std::string::npos;
             pos = all.find(needle, pos + 1)) {
            // Must be a call on a plain dotted receiver, in a loop.
            std::size_t j = pos + needle.size();
            while (j < all.size() && all[j] == ' ')
                ++j;
            if (j >= all.size() || all[j] != '(')
                continue;
            if (!inLoop[pos])
                continue;
            std::size_t start = pos;
            while (start > 0 && (isIdentChar(all[start - 1]) ||
                                 all[start - 1] == '.'))
                --start;
            const std::string receiver =
                all.substr(start, pos - start);
            // Indexed or computed receivers (grid[a], (*out)) are
            // someone else's storage; the chain heuristic cannot
            // name them, so they are out of scope.
            if (receiver.empty() || receiver.front() == '.' ||
                receiver.back() == '.')
                continue;
            bool sized = false;
            for (const char *sizer : {".reserve(", ".resize("}) {
                const std::string call = receiver + sizer;
                sized = sized ||
                        all.find(call) != std::string::npos ||
                        headerAll.find(call) != std::string::npos;
            }
            if (!sized)
                addFinding(out, file, lineOf[pos], "reserve-loop",
                           "'" + receiver + "." + method +
                               "' grows inside a loop with no "
                               "preceding '" + receiver +
                               ".reserve(...)'; size it up front "
                               "or annotate why you cannot");
        }
    }
}

// ---------------------------------------------------------------
// Rule: float-hash
// ---------------------------------------------------------------

void
checkFloatHash(const ScannedFile &file, std::vector<Finding> &out)
{
    static const char *kFiles[] = {
        "src/util/hash.hh", "src/util/hash.cc",
        "src/core/pattern.hh", "src/core/pattern.cc",
    };
    bool in_scope = false;
    for (const char *f : kFiles)
        in_scope = in_scope || file.relPath == f;
    if (!in_scope)
        return;
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *fp : {"double", "float"}) {
            if (findWord(code, fp) != std::string::npos)
                addFinding(out, file, ln, "float-hash",
                           std::string("'") + fp +
                               "' in pattern-key hashing code; "
                               "keys must accumulate integral "
                               "state only (FNV-1a over bytes)");
        }
    }
}

// ---------------------------------------------------------------
// Rule: obs-clock
// ---------------------------------------------------------------

/**
 * The engine and decode paths are span-instrumented: every timing
 * they take must come from lag::processElapsedNs()
 * (util/thread_name.hh) or a LAG_SPAN, never a raw std::chrono
 * clock. Two epochs in one self-trace shift spans against each
 * other and make the Perfetto timeline lie. src/obs itself owns
 * the epoch and sits outside the scope.
 */
void
checkObsClock(const ScannedFile &file, std::vector<Finding> &out)
{
    if (!underAny(file.relPath, {"src/engine/", "src/trace/"}))
        return;
    static const char *kClocks[] = {
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    for (std::size_t ln = 1; ln <= file.code.size(); ++ln) {
        const std::string &code = file.code[ln - 1];
        for (const char *clock : kClocks) {
            if (findWord(code, clock) != std::string::npos)
                addFinding(out, file, ln, "obs-clock",
                           std::string("'") + clock +
                               "' in span-instrumented code; use "
                               "lag::processElapsedNs() or a "
                               "LAG_SPAN so timings share the obs "
                               "epoch");
        }
    }
}

const Rule kRules[] = {
    {"wallclock",
     "no wall-clock/OS-entropy source in src/sim|jvm|core "
     "(simulated time only)",
     checkWallclock},
    {"unordered-iter",
     "no range-for over a hash container in output-feeding code "
     "(sort first)",
     checkUnorderedIter},
    {"raw-mutex",
     "no raw std:: mutex/lock types outside lag::Mutex "
     "(util/mutex.hh)",
     checkRawMutex},
    {"naked-new",
     "no naked new/delete in analysis code (src/core|engine|lila)",
     checkNakedNew},
    {"reserve-loop",
     "no unsized push_back/emplace_back loops in decode/build hot "
     "paths (src/trace|core)",
     checkReserveLoop},
    {"float-hash",
     "no floating point in pattern-key hashing "
     "(util/hash, core/pattern)",
     checkFloatHash},
    {"obs-clock",
     "no raw std::chrono clock in src/engine|trace; share the obs "
     "epoch (processElapsedNs / LAG_SPAN)",
     checkObsClock},
};

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".h" || ext == ".hpp";
}

std::string
relativeTo(const fs::path &root, const fs::path &path)
{
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    const fs::path &use = ec ? path : rel;
    return use.generic_string();
}

bool
lintFile(const fs::path &root, const fs::path &path,
         std::vector<Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "lag-lint: cannot read '%s'\n",
                     path.string().c_str());
        return false;
    }
    ScannedFile file;
    file.relPath = relativeTo(root, path);
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        file.raw.push_back(line);
    }
    file.code = blankNonCode(file.raw);

    const std::string ext = path.extension().string();
    if (ext == ".cc" || ext == ".cpp") {
        for (const char *hext : {".hh", ".h", ".hpp"}) {
            fs::path header = path;
            header.replace_extension(hext);
            std::ifstream hin(header, std::ios::binary);
            if (!hin)
                continue;
            std::vector<std::string> hraw;
            while (std::getline(hin, line)) {
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                hraw.push_back(line);
            }
            file.headerCode = blankNonCode(hraw);
            break;
        }
    }
    for (const Rule &rule : kRules)
        rule.check(file, out);
    return true;
}

bool
walk(const fs::path &root, const fs::path &path,
     std::vector<Finding> &out)
{
    if (fs::is_directory(path)) {
        // Deterministic order for stable output.
        std::vector<fs::path> children;
        for (const auto &entry : fs::directory_iterator(path))
            children.push_back(entry.path());
        std::sort(children.begin(), children.end());
        bool ok = true;
        for (const fs::path &child : children) {
            const std::string name = child.filename().string();
            // Seeded-violation fixtures and build trees are only
            // linted when named explicitly on the command line.
            if (name == "lint_fixtures" ||
                name.compare(0, 5, "build") == 0)
                continue;
            if (fs::is_directory(child) || lintableExtension(child))
                ok = walk(root, child, out) && ok;
        }
        return ok;
    }
    return lintFile(root, path, out);
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = fs::current_path();
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "lag-lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--list-rules") {
            for (const Rule &rule : kRules)
                std::printf("%-15s %s\n", rule.name, rule.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: lag_lint [--root DIR] [--list-rules] "
                "[paths...]\n"
                "Lints paths (default: src bench tests) relative "
                "to DIR.\n"
                "Suppress a line with  // lag-lint: "
                "allow(<rule>)\n");
            return 0;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "bench", "tests"};

    std::vector<Finding> findings;
    bool io_ok = true;
    for (const std::string &p : paths) {
        fs::path full = fs::path(p);
        if (full.is_relative())
            full = root / full;
        if (!fs::exists(full)) {
            std::fprintf(stderr, "lag-lint: no such path '%s'\n",
                         full.string().c_str());
            io_ok = false;
            continue;
        }
        io_ok = walk(root, full, findings) && io_ok;
    }

    for (const Finding &f : findings)
        std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    if (!findings.empty()) {
        std::printf("lag-lint: %zu finding(s)\n", findings.size());
        return 1;
    }
    if (!io_ok)
        return 2;
    return 0;
}
