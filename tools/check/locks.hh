/**
 * @file
 * Static lock-order verification for lag_check.
 *
 * Recovers the project's rank table (the LockRank enum plus every
 * `Mutex name{LockRank::X, ...}` construction), scans function
 * bodies for MutexLock acquisitions with brace-scoped held
 * regions, builds an approximate name-based intra-project call
 * graph, and reports:
 *
 *   rank-inversion        acquiring a rank >= one already held —
 *                         directly, or transitively through a
 *                         statically reachable callee
 *   lock-across-blocking  a blocking call (poll/accept/read/write/
 *                         sleep_for family) inside a held region
 *   guarded-by-gap        a data member declared after a Mutex
 *                         member without a LAG_GUARDED_BY
 *                         annotation (the project convention is
 *                         that guarded members follow their mutex)
 *
 * The runtime lock-rank checker (util/mutex.hh) only sees
 * interleavings a test happens to execute; this pass covers every
 * statically reachable acquisition path, at the cost of
 * approximation: unresolvable mutex expressions and ambiguous
 * callee names are skipped, so a clean report means "no inversion
 * the name-based analysis can reach", not a proof.
 */

#ifndef LAG_TOOLS_CHECK_LOCKS_HH
#define LAG_TOOLS_CHECK_LOCKS_HH

#include <vector>

#include "../analysis/diagnostics.hh"
#include "../analysis/source.hh"

namespace lag::check
{

/** Run the lock-discipline analyses over @p files. */
void checkLocks(const std::vector<analysis::SourceFile> &files,
                analysis::Diagnostics &diagnostics);

} // namespace lag::check

#endif // LAG_TOOLS_CHECK_LOCKS_HH
