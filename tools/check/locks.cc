#include "locks.hh"

#include <algorithm>
#include <climits>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "../analysis/functions.hh"

namespace lag::check
{

using analysis::Diagnostics;
using analysis::findWord;
using analysis::FunctionDef;
using analysis::isIdentChar;
using analysis::JoinedCode;
using analysis::joinCode;
using analysis::matchForward;
using analysis::SourceFile;

namespace
{

// ---------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------

std::size_t
skipSpaces(const std::string &text, std::size_t pos)
{
    while (pos < text.size() && text[pos] == ' ')
        ++pos;
    return pos;
}

std::string
wordAt(const std::string &text, std::size_t pos, std::size_t *end)
{
    std::size_t e = pos;
    while (e < text.size() && isIdentChar(text[e]))
        ++e;
    if (end != nullptr)
        *end = e;
    return text.substr(pos, e - pos);
}

/** Last identifier in @p expr (after any `.`/`->`/`::` chain). */
std::string
trailingIdent(const std::string &expr)
{
    std::size_t end = expr.size();
    while (end > 0 && !isIdentChar(expr[end - 1]))
        --end;
    std::size_t begin = end;
    while (begin > 0 && isIdentChar(expr[begin - 1]))
        --begin;
    return expr.substr(begin, end - begin);
}

// ---------------------------------------------------------------
// Rank table
// ---------------------------------------------------------------

/** Parse every `enum [class] LockRank { Name = N, ... }`. */
void
parseRankEnum(const std::string &text,
              std::map<std::string, int> &ranks)
{
    std::size_t pos = findWord(text, "enum");
    for (; pos != std::string::npos;
         pos = findWord(text, "enum", pos + 1)) {
        std::size_t i = skipSpaces(text, pos + 4);
        std::size_t end = 0;
        std::string word = wordAt(text, i, &end);
        if (word == "class" || word == "struct") {
            i = skipSpaces(text, end);
            word = wordAt(text, i, &end);
        }
        if (word != "LockRank")
            continue;
        const std::size_t open = text.find('{', end);
        if (open == std::string::npos)
            continue;
        const std::size_t close =
            matchForward(text, open, '{', '}');
        if (close == std::string::npos)
            continue;
        int next = 0;
        std::size_t j = open + 1;
        while (j < close) {
            j = skipSpaces(text, j);
            if (j >= close || !isIdentChar(text[j])) {
                ++j;
                continue;
            }
            std::size_t wend = 0;
            const std::string name = wordAt(text, j, &wend);
            j = skipSpaces(text, wend);
            int value = next;
            if (j < close && text[j] == '=') {
                j = skipSpaces(text, j + 1);
                bool negative = false;
                if (j < close && text[j] == '-') {
                    negative = true;
                    ++j;
                }
                long parsed = 0;
                bool any = false;
                while (j < close && ((text[j] >= '0' &&
                                      text[j] <= '9') ||
                                     text[j] == '\'')) {
                    if (text[j] != '\'') {
                        parsed = parsed * 10 + (text[j] - '0');
                        any = true;
                    }
                    ++j;
                }
                if (any)
                    value = static_cast<int>(negative ? -parsed
                                                      : parsed);
            }
            ranks.emplace(name, value); // first definition wins
            next = value + 1;
            while (j < close && text[j] != ',')
                ++j;
            ++j;
        }
    }
}

/** One `Mutex <name>{LockRank::R, ...}` (or `(...)`) site. */
struct MutexDecl
{
    std::size_t pos = 0; ///< position of the variable name
    std::string name;
    std::string rankName; ///< "R" of LockRank::R
};

std::vector<MutexDecl>
scanMutexDecls(const std::string &text)
{
    std::vector<MutexDecl> out;
    std::size_t pos = findWord(text, "Mutex");
    for (; pos != std::string::npos;
         pos = findWord(text, "Mutex", pos + 1)) {
        std::size_t i = skipSpaces(text, pos + 5);
        if (i >= text.size() || !isIdentChar(text[i]))
            continue;
        std::size_t nameEnd = 0;
        const std::string name = wordAt(text, i, &nameEnd);
        std::size_t open = skipSpaces(text, nameEnd);
        if (open >= text.size() ||
            (text[open] != '{' && text[open] != '('))
            continue;
        std::size_t j = skipSpaces(text, open + 1);
        std::size_t wend = 0;
        if (wordAt(text, j, &wend) != "LockRank")
            continue;
        j = skipSpaces(text, wend);
        if (j + 1 >= text.size() || text[j] != ':' ||
            text[j + 1] != ':')
            continue;
        j = skipSpaces(text, j + 2);
        MutexDecl decl;
        decl.pos = i;
        decl.name = name;
        decl.rankName = wordAt(text, j, nullptr);
        if (!decl.rankName.empty())
            out.push_back(std::move(decl));
    }
    return out;
}

// ---------------------------------------------------------------
// Per-function facts
// ---------------------------------------------------------------

struct Acquisition
{
    std::size_t pos = 0;  ///< position of the MutexLock token
    std::size_t line = 0;
    std::size_t end = 0;  ///< end of the held region
    std::string mutexName;
    std::string rankName;
    int rank = 0;
};

struct CallSite
{
    std::size_t pos = 0;
    std::size_t line = 0;
    std::string name;
};

struct BlockingSite
{
    std::size_t pos = 0;
    std::size_t line = 0;
    std::string name;
};

struct FnFacts
{
    std::size_t fileIndex = 0;
    FunctionDef def;
    std::vector<Acquisition> acquisitions;
    std::vector<CallSite> calls;
    std::vector<BlockingSite> blocking;

    // Transitive acquisition reach (computed over the call graph).
    int transRank = INT_MIN;
    std::string transMutex;
    std::string transRankName;
    std::string transWhere; ///< "file:line" of the acquisition
    int dfsState = 0;       ///< 0 new / 1 visiting / 2 done
};

bool
isCallKeyword(const std::string &word)
{
    static const char *kKeywords[] = {
        "if", "for", "while", "switch", "catch", "return",
        "sizeof", "alignof", "decltype", "new", "delete", "throw",
        "static_assert", "assert", "defined", "do", "else",
    };
    for (const char *kw : kKeywords)
        if (word == kw)
            return true;
    return false;
}

const char *kBlockingCalls[] = {
    "poll",     "ppoll",    "select",   "epoll_wait", "accept",
    "accept4",  "recv",     "recvfrom", "recvmsg",    "send",
    "sendto",   "sendmsg",  "connect",  "read",       "write",
    "pread",    "pwrite",   "readv",    "writev",     "usleep",
    "nanosleep", "sleep",   "sleep_for", "sleep_until", "fsync",
    "fdatasync",
};

} // namespace

void
checkLocks(const std::vector<SourceFile> &files,
           Diagnostics &diagnostics)
{
    // Joined views, reused by every pass.
    std::vector<JoinedCode> joined;
    std::vector<JoinedCode> joinedHeader;
    joined.reserve(files.size());
    joinedHeader.reserve(files.size());
    for (const SourceFile &file : files) {
        joined.push_back(joinCode(file.code));
        joinedHeader.push_back(joinCode(file.headerCode));
    }

    // 1. The rank table.
    std::map<std::string, int> ranks;
    for (const JoinedCode &j : joined)
        parseRankEnum(j.text, ranks);
    if (ranks.empty())
        return; // nothing ranked: lock analysis has no model

    // 2. Mutex declarations: per-file (file + paired header) and a
    //    global name → rank map for unique names.
    std::vector<std::map<std::string, std::string>> fileMutexes(
        files.size());
    std::map<std::string, std::set<std::string>> globalMutexes;
    std::vector<std::vector<MutexDecl>> ownDecls(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        ownDecls[i] = scanMutexDecls(joined[i].text);
        std::vector<MutexDecl> headerDecls =
            scanMutexDecls(joinedHeader[i].text);
        for (const MutexDecl &decl : headerDecls)
            fileMutexes[i][decl.name] = decl.rankName;
        for (const MutexDecl &decl : ownDecls[i]) {
            fileMutexes[i][decl.name] = decl.rankName;
            globalMutexes[decl.name].insert(decl.rankName);
        }
    }

    // 3. Functions per file; register rank-accessor functions
    //    (a function whose body declares a `static Mutex` is the
    //    idiom for function-local registries).
    std::vector<std::vector<FunctionDef>> functions(files.size());
    std::vector<std::map<std::string, std::string>> fileAccessors(
        files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        functions[i] = extractFunctions(joined[i]);
        for (const MutexDecl &decl : ownDecls[i]) {
            const FunctionDef *innermost = nullptr;
            for (const FunctionDef &def : functions[i]) {
                if (decl.pos > def.bodyBegin &&
                    decl.pos < def.bodyEnd &&
                    (innermost == nullptr ||
                     def.bodyBegin > innermost->bodyBegin))
                    innermost = &def;
            }
            if (innermost != nullptr)
                fileAccessors[i][innermost->name] = decl.rankName;
        }
    }

    const auto rankValue = [&ranks](const std::string &name) {
        const auto it = ranks.find(name);
        return it == ranks.end() ? INT_MIN : it->second;
    };

    // 4. Per-function facts.
    std::vector<FnFacts> facts;
    std::map<std::string, std::vector<std::size_t>> byName;
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string &text = joined[i].text;
        for (const FunctionDef &def : functions[i]) {
            FnFacts fn;
            fn.fileIndex = i;
            fn.def = def;
            const std::size_t begin = def.bodyBegin + 1;
            const std::size_t end = def.bodyEnd;

            // Acquisitions.
            std::size_t pos = findWord(text, "MutexLock", begin);
            for (; pos != std::string::npos && pos < end;
                 pos = findWord(text, "MutexLock", pos + 1)) {
                if (pos > 0 && text[pos - 1] == '~')
                    continue;
                std::size_t i2 = skipSpaces(text, pos + 9);
                if (i2 >= end || !isIdentChar(text[i2]))
                    continue;
                std::size_t varEnd = 0;
                const std::string var = wordAt(text, i2, &varEnd);
                std::size_t open = skipSpaces(text, varEnd);
                if (open >= end ||
                    (text[open] != '(' && text[open] != '{'))
                    continue;
                const char openCh = text[open];
                const std::size_t close = matchForward(
                    text, open, openCh, openCh == '(' ? ')' : '}');
                if (close == std::string::npos || close > end)
                    continue;
                std::string expr =
                    text.substr(open + 1, close - open - 1);
                while (!expr.empty() && expr.back() == ' ')
                    expr.pop_back();
                std::string rankName;
                if (expr.size() >= 2 &&
                    expr.compare(expr.size() - 2, 2, "()") == 0) {
                    const std::string accessor = trailingIdent(
                        expr.substr(0, expr.size() - 2));
                    const auto it =
                        fileAccessors[i].find(accessor);
                    if (it != fileAccessors[i].end())
                        rankName = it->second;
                } else {
                    const std::string name = trailingIdent(expr);
                    const auto it = fileMutexes[i].find(name);
                    if (it != fileMutexes[i].end()) {
                        rankName = it->second;
                    } else {
                        const auto git = globalMutexes.find(name);
                        if (git != globalMutexes.end() &&
                            git->second.size() == 1)
                            rankName = *git->second.begin();
                    }
                }
                if (rankName.empty() ||
                    rankValue(rankName) == INT_MIN)
                    continue; // unresolvable: out of model
                Acquisition acq;
                acq.pos = pos;
                acq.line = joined[i].lineOf[pos];
                acq.mutexName = trailingIdent(
                    expr.size() >= 2 &&
                            expr.compare(expr.size() - 2, 2,
                                         "()") == 0
                        ? expr.substr(0, expr.size() - 2)
                        : expr);
                acq.rankName = rankName;
                acq.rank = rankValue(rankName);
                acq.end = analysis::scopeEnd(text, close, end);
                // An explicit early unlock ends the held region.
                const std::size_t unlockPos = text.find(
                    var + ".unlock", close);
                if (unlockPos != std::string::npos &&
                    unlockPos < acq.end)
                    acq.end = unlockPos;
                fn.acquisitions.push_back(std::move(acq));
            }

            // Calls (for the approximate call graph).
            std::size_t c = begin;
            while (c < end) {
                if (!isIdentChar(text[c])) {
                    ++c;
                    continue;
                }
                std::size_t wend = 0;
                const std::string word = wordAt(text, c, &wend);
                const std::size_t next = skipSpaces(text, wend);
                // Calls through an explicit receiver (`x.f()`,
                // `p->f()`) stay out of the graph: the name-based
                // resolver cannot see the receiver's type, and
                // `nodes_.size()` must not bind to SomeClass::size.
                // Implicit member calls and free calls — the paths
                // a same-object re-lock actually takes — remain.
                const bool receivered =
                    c > begin &&
                    (text[c - 1] == '.' ||
                     (text[c - 1] == '>' && c > begin + 1 &&
                      text[c - 2] == '-'));
                if (next < end && text[next] == '(' &&
                    !receivered && !isCallKeyword(word) &&
                    !(word[0] >= '0' && word[0] <= '9')) {
                    CallSite call;
                    call.pos = c;
                    call.line = joined[i].lineOf[c];
                    call.name = word;
                    fn.calls.push_back(std::move(call));
                }
                c = wend;
            }

            // Blocking calls (free-call shape only).
            for (const char *blocker : kBlockingCalls) {
                std::size_t b = findWord(text, blocker, begin);
                for (; b != std::string::npos && b < end;
                     b = findWord(text, blocker, b + 1)) {
                    const std::size_t next = skipSpaces(
                        text, b + std::strlen(blocker));
                    if (next >= end || text[next] != '(')
                        continue;
                    if (b > 0 &&
                        (text[b - 1] == '.' ||
                         (text[b - 1] == '>' && b > 1 &&
                          text[b - 2] == '-')))
                        continue; // member call on some object
                    BlockingSite site;
                    site.pos = b;
                    site.line = joined[i].lineOf[b];
                    site.name = blocker;
                    fn.blocking.push_back(site);
                }
            }

            byName[fn.def.name].push_back(facts.size());
            facts.push_back(std::move(fn));
        }
    }

    // 5. Resolve call edges: unique name project-wide, or unique
    //    within the calling file (the safe subset of a name-based
    //    call graph).
    const auto resolveCallee =
        [&byName, &facts](const FnFacts &from,
                          const std::string &name)
        -> const FnFacts * {
        const auto it = byName.find(name);
        if (it == byName.end())
            return nullptr;
        if (it->second.size() == 1)
            return &facts[it->second.front()];
        const FnFacts *sameFile = nullptr;
        for (const std::size_t idx : it->second) {
            if (facts[idx].fileIndex == from.fileIndex) {
                if (sameFile != nullptr)
                    return nullptr; // ambiguous in-file too
                sameFile = &facts[idx];
            }
        }
        return sameFile;
    };

    // 6. Transitive acquisition reach, DFS with memoization.
    //    (Plain recursion; the call graph is project-sized.)
    const std::function<void(FnFacts &)> computeTrans =
        [&](FnFacts &fn) {
            if (fn.dfsState != 0)
                return;
            fn.dfsState = 1;
            for (const Acquisition &acq : fn.acquisitions) {
                if (acq.rank > fn.transRank) {
                    fn.transRank = acq.rank;
                    fn.transMutex = acq.mutexName;
                    fn.transRankName = acq.rankName;
                    fn.transWhere =
                        files[fn.fileIndex].relPath + ":" +
                        std::to_string(acq.line);
                }
            }
            for (const CallSite &call : fn.calls) {
                const FnFacts *callee =
                    resolveCallee(fn, call.name);
                if (callee == nullptr || callee == &fn)
                    continue;
                FnFacts &target =
                    facts[static_cast<std::size_t>(callee -
                                                   facts.data())];
                if (target.dfsState == 1)
                    continue; // recursion cycle: no new info
                computeTrans(target);
                if (target.transRank > fn.transRank) {
                    fn.transRank = target.transRank;
                    fn.transMutex = target.transMutex;
                    fn.transRankName = target.transRankName;
                    fn.transWhere = target.transWhere;
                }
            }
            fn.dfsState = 2;
        };
    for (FnFacts &fn : facts)
        computeTrans(fn);

    // 7. Report. Held-minimum at a position = the lowest rank among
    //    acquisitions whose region covers it (a new acquisition
    //    must be strictly below *every* held rank, i.e. the min).
    for (const FnFacts &fn : facts) {
        const SourceFile &file = files[fn.fileIndex];
        const auto heldAt =
            [&fn](std::size_t pos,
                  const Acquisition *exclude) -> const Acquisition * {
            const Acquisition *min = nullptr;
            for (const Acquisition &acq : fn.acquisitions) {
                if (&acq == exclude)
                    continue;
                if (acq.pos < pos && pos < acq.end &&
                    (min == nullptr || acq.rank < min->rank))
                    min = &acq;
            }
            return min;
        };

        for (const Acquisition &acq : fn.acquisitions) {
            const Acquisition *held = heldAt(acq.pos, &acq);
            if (held != nullptr && acq.rank >= held->rank)
                diagnostics.add(
                    file, acq.line, "rank-inversion",
                    "acquiring '" + acq.mutexName +
                        "' (LockRank::" + acq.rankName + " = " +
                        std::to_string(acq.rank) +
                        ") while holding '" + held->mutexName +
                        "' (LockRank::" + held->rankName + " = " +
                        std::to_string(held->rank) +
                        "); ranks must strictly descend");
        }

        for (const BlockingSite &site : fn.blocking) {
            const Acquisition *held = heldAt(site.pos, nullptr);
            if (held != nullptr)
                diagnostics.add(
                    file, site.line, "lock-across-blocking",
                    "'" + site.name +
                        "()' may block while holding '" +
                        held->mutexName + "' (LockRank::" +
                        held->rankName +
                        "); move the blocking call outside the "
                        "critical section");
        }

        for (const CallSite &call : fn.calls) {
            const Acquisition *held = heldAt(call.pos, nullptr);
            if (held == nullptr)
                continue;
            const FnFacts *callee = resolveCallee(fn, call.name);
            if (callee == nullptr || callee == &fn ||
                callee->transRank == INT_MIN)
                continue;
            if (callee->transRank >= held->rank)
                diagnostics.add(
                    file, call.line, "rank-inversion",
                    "call to '" + callee->def.qualified +
                        "' can reach an acquisition of '" +
                        callee->transMutex + "' (LockRank::" +
                        callee->transRankName + " = " +
                        std::to_string(callee->transRank) +
                        ", at " + callee->transWhere +
                        ") while holding '" + held->mutexName +
                        "' (LockRank::" + held->rankName + " = " +
                        std::to_string(held->rank) +
                        "); ranks must strictly descend");
        }
    }

    // 8. guarded-by-gap: members declared after a Mutex member
    //    without a LAG_GUARDED_BY annotation. The project idiom is
    //    "a mutex, then the members it guards"; anything trailing
    //    a mutex unannotated is either a missed annotation or a
    //    member that belongs above the mutex.
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string &text = joined[i].text;
        std::set<std::size_t> flaggedLines;
        for (const char *kw : {"class", "struct"}) {
            std::size_t pos = findWord(text, kw);
            for (; pos != std::string::npos;
                 pos = findWord(text, kw, pos + 1)) {
                // `enum class` / `enum struct` are not classes.
                std::size_t back = pos;
                while (back > 0 && text[back - 1] == ' ')
                    --back;
                if (back >= 4 &&
                    text.compare(back - 4, 4, "enum") == 0)
                    continue;
                // Find the class body, unless this is a forward
                // declaration or a template parameter.
                std::size_t j = pos + std::strlen(kw);
                std::size_t open = std::string::npos;
                while (j < text.size()) {
                    if (text[j] == '{') {
                        open = j;
                        break;
                    }
                    if (text[j] == ';' || text[j] == '(' ||
                        text[j] == '>' || text[j] == ',')
                        break;
                    ++j;
                }
                if (open == std::string::npos)
                    continue;
                const std::size_t close =
                    matchForward(text, open, '{', '}');
                if (close == std::string::npos)
                    continue;

                for (const MutexDecl &decl : [&] {
                         std::vector<MutexDecl> in;
                         for (const MutexDecl &d :
                              scanMutexDecls(text.substr(
                                  open, close - open))) {
                             // Only mutexes directly in THIS class
                             // body; a nested class's mutex guards
                             // the nested class's members (and that
                             // body gets its own scan).
                             int depth = 0;
                             for (std::size_t k = open;
                                  k < d.pos + open; ++k) {
                                 if (text[k] == '{')
                                     ++depth;
                                 else if (text[k] == '}')
                                     --depth;
                             }
                             if (depth == 1)
                                 in.push_back(MutexDecl{
                                     d.pos + open, d.name,
                                     d.rankName});
                         }
                         return in;
                     }()) {
                    // Step past the declaration's ';'.
                    std::size_t s = decl.pos;
                    int depth = 0;
                    while (s < close) {
                        if (text[s] == '{' || text[s] == '(')
                            ++depth;
                        else if (text[s] == '}' || text[s] == ')')
                            --depth;
                        else if (text[s] == ';' && depth == 0) {
                            ++s;
                            break;
                        }
                        ++s;
                    }
                    // Statements until the end of the class body.
                    while (s < close) {
                        std::size_t stmtEnd = s;
                        int d2 = 0;
                        bool braced = false;
                        while (stmtEnd < close) {
                            const char ch = text[stmtEnd];
                            if (ch == '(')
                                ++d2;
                            else if (ch == ')')
                                --d2;
                            else if (ch == '{' && d2 == 0) {
                                // Inline body: skip it and end the
                                // statement there (no ';' after a
                                // member-function definition).
                                const std::size_t bclose =
                                    matchForward(text, stmtEnd,
                                                 '{', '}');
                                if (bclose == std::string::npos ||
                                    bclose > close) {
                                    stmtEnd = close;
                                } else {
                                    stmtEnd = bclose;
                                    braced = true;
                                }
                                break;
                            } else if (ch == ';' && d2 == 0) {
                                break;
                            }
                            ++stmtEnd;
                        }
                        std::string stmt =
                            text.substr(s, stmtEnd - s);
                        const std::size_t stmtPos = s;
                        s = stmtEnd + 1;

                        // Access specifiers are separators, not
                        // statement content.
                        for (const char *spec :
                             {"public", "private", "protected"}) {
                            const std::size_t sp =
                                findWord(stmt, spec);
                            if (sp != std::string::npos) {
                                std::size_t colon =
                                    stmt.find(':', sp);
                                if (colon != std::string::npos)
                                    stmt = stmt.substr(0, sp) +
                                           stmt.substr(colon + 1);
                            }
                        }
                        bool skip = braced;
                        skip = skip ||
                               stmt.find_first_not_of(' ') ==
                                   std::string::npos;
                        skip = skip ||
                               stmt.find("LAG_GUARDED_BY") !=
                                   std::string::npos;
                        for (const char *word :
                             {"Mutex", "condition_variable",
                              "condition_variable_any", "atomic",
                              "thread", "using", "typedef",
                              "friend", "static", "constexpr",
                              "enum", "class", "struct", "union",
                              "operator", "template", "const"})
                            skip = skip ||
                                   findWord(stmt, word) !=
                                       std::string::npos;
                        skip = skip ||
                               stmt.find('(') !=
                                   std::string::npos ||
                               stmt.find('&') !=
                                   std::string::npos;
                        if (skip)
                            continue;

                        // Member name: last identifier before '='
                        // / '{' / end.
                        std::size_t cut = stmt.size();
                        const std::size_t eq = stmt.find('=');
                        const std::size_t brace = stmt.find('{');
                        cut = std::min(cut, eq);
                        cut = std::min(cut, brace);
                        const std::string member =
                            trailingIdent(stmt.substr(0, cut));
                        if (member.empty())
                            continue;
                        const std::size_t namePos =
                            stmtPos +
                            stmt.substr(0, cut).rfind(member);
                        const std::size_t line =
                            joined[i].lineOf[namePos];
                        if (!flaggedLines.insert(line).second)
                            continue;
                        diagnostics.add(
                            files[i], line, "guarded-by-gap",
                            "member '" + member +
                                "' follows mutex '" + decl.name +
                                "' without LAG_GUARDED_BY; "
                                "annotate it, or declare it above "
                                "the mutex if it is not shared "
                                "state");
                    }
                }
            }
        }
    }
}

} // namespace lag::check
