/**
 * @file
 * Include-graph layering for lag_check: the declared layer DAG
 * (ci/layers.conf), layer assignment, include-cycle detection,
 * layer-violation reporting and the conservative unused-include
 * analysis.
 *
 * Rules emitted here:
 *   layer-cycle        a cycle in the file-level include graph
 *   layer-violation    an include edge the declared DAG forbids
 *   layer-unmapped     a file no layer in the conf covers
 *   include-unresolved a quoted include that resolves nowhere in
 *                      the project
 *   unused-include     an included project header none of whose
 *                      provided names the includer references
 */

#ifndef LAG_TOOLS_CHECK_LAYERS_HH
#define LAG_TOOLS_CHECK_LAYERS_HH

#include <filesystem>
#include <string>
#include <vector>

#include "../analysis/diagnostics.hh"
#include "../analysis/source.hh"

namespace lag::check
{

/** One `layer` line of the conf. */
struct Layer
{
    std::string name;
    std::vector<std::string> dirs; ///< root-relative prefixes
    std::vector<std::string> deps; ///< declared (direct) deps
    std::size_t line = 0;          ///< conf line, for errors

    /** Reflexive transitive closure of deps, as layer indices. */
    std::vector<std::size_t> allowed;
};

struct LayerConfig
{
    std::string path; ///< the conf file, for messages
    std::vector<Layer> layers;

    /** Parse problems (unknown dep, duplicate layer, dependency
     * cycle); non-empty means the config is unusable. */
    std::vector<std::string> errors;

    /** Index of the layer covering @p relPath (longest matching
     * dir prefix), or npos. */
    std::size_t layerOf(const std::string &relPath) const;
};

/**
 * Parse @p confPath:
 *
 *   # comment
 *   layer <name> <dir> [<dir>...] [-> <dep> [<dep>...]]
 *
 * A layer may include files from itself and, transitively, from
 * every layer it declares after `->`. The dep graph must be a DAG.
 */
LayerConfig parseLayers(const std::filesystem::path &confPath);

/**
 * Run every include analysis over @p files, reporting into
 * @p diagnostics. @p root anchors include resolution.
 */
void checkIncludes(const std::filesystem::path &root,
                   const LayerConfig &config,
                   const std::vector<analysis::SourceFile> &files,
                   analysis::Diagnostics &diagnostics);

} // namespace lag::check

#endif // LAG_TOOLS_CHECK_LAYERS_HH
