#include "layers.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "../analysis/functions.hh"
#include "../analysis/includes.hh"

namespace lag::check
{

namespace fs = std::filesystem;
using analysis::Diagnostics;
using analysis::findWord;
using analysis::isIdentChar;
using analysis::JoinedCode;
using analysis::joinCode;
using analysis::SourceFile;

// ---------------------------------------------------------------
// Layer configuration
// ---------------------------------------------------------------

std::size_t
LayerConfig::layerOf(const std::string &relPath) const
{
    std::size_t best = static_cast<std::size_t>(-1);
    std::size_t bestLen = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        for (const std::string &dir : layers[i].dirs) {
            if (relPath.size() > dir.size() + 1 &&
                relPath.compare(0, dir.size(), dir) == 0 &&
                relPath[dir.size()] == '/' &&
                dir.size() > bestLen) {
                best = i;
                bestLen = dir.size();
            }
        }
    }
    return best;
}

namespace
{

/** Depth-first closure; returns false on a dependency cycle. */
bool
closeOver(std::vector<Layer> &layers,
          const std::map<std::string, std::size_t> &index,
          std::size_t at, std::vector<int> &state,
          std::vector<std::string> &errors)
{
    state[at] = 1; // visiting
    std::set<std::size_t> allowed{at};
    for (const std::string &dep : layers[at].deps) {
        const auto it = index.find(dep);
        if (it == index.end())
            continue; // reported by the parser already
        const std::size_t to = it->second;
        if (state[to] == 1) {
            errors.push_back("layer dependency cycle through '" +
                             layers[at].name + "' -> '" + dep +
                             "'");
            return false;
        }
        if (state[to] == 0 &&
            !closeOver(layers, index, to, state, errors))
            return false;
        allowed.insert(layers[to].allowed.begin(),
                       layers[to].allowed.end());
    }
    layers[at].allowed.assign(allowed.begin(), allowed.end());
    state[at] = 2;
    return true;
}

} // namespace

LayerConfig
parseLayers(const fs::path &confPath)
{
    LayerConfig config;
    config.path = confPath.generic_string();
    std::ifstream in(confPath);
    if (!in) {
        config.errors.push_back("cannot read layer config '" +
                                config.path + "'");
        return config;
    }

    std::map<std::string, std::size_t> index;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream tokens(line);
        std::string word;
        if (!(tokens >> word))
            continue;
        if (word != "layer") {
            config.errors.push_back(
                config.path + ":" + std::to_string(lineNo) +
                ": expected 'layer', got '" + word + "'");
            continue;
        }
        Layer layer;
        layer.line = lineNo;
        if (!(tokens >> layer.name)) {
            config.errors.push_back(
                config.path + ":" + std::to_string(lineNo) +
                ": layer needs a name");
            continue;
        }
        bool deps = false;
        while (tokens >> word) {
            if (word == "->") {
                deps = true;
                continue;
            }
            // Normalize away a trailing '/' so conf authors can
            // write either form.
            if (!deps && !word.empty() && word.back() == '/')
                word.pop_back();
            (deps ? layer.deps : layer.dirs)
                .push_back(std::move(word));
        }
        if (layer.dirs.empty()) {
            config.errors.push_back(
                config.path + ":" + std::to_string(lineNo) +
                ": layer '" + layer.name +
                "' needs at least one directory");
            continue;
        }
        if (index.count(layer.name) != 0) {
            config.errors.push_back(
                config.path + ":" + std::to_string(lineNo) +
                ": duplicate layer '" + layer.name + "'");
            continue;
        }
        index[layer.name] = config.layers.size();
        config.layers.push_back(std::move(layer));
    }

    for (const Layer &layer : config.layers)
        for (const std::string &dep : layer.deps)
            if (index.count(dep) == 0)
                config.errors.push_back(
                    config.path + ":" +
                    std::to_string(layer.line) + ": layer '" +
                    layer.name + "' depends on unknown layer '" +
                    dep + "'");

    std::vector<int> state(config.layers.size(), 0);
    for (std::size_t i = 0; i < config.layers.size(); ++i)
        if (state[i] == 0 &&
            !closeOver(config.layers, index, i, state,
                       config.errors))
            break;
    return config;
}

// ---------------------------------------------------------------
// Provided-name extraction (unused-include)
// ---------------------------------------------------------------

namespace
{

bool
isCppKeyword(const std::string &word)
{
    static const std::set<std::string> kKeywords{
        "alignas", "alignof", "auto", "bool", "break", "case",
        "catch", "char", "class", "const", "constexpr", "continue",
        "decltype", "default", "delete", "do", "double", "else",
        "enum", "explicit", "extern", "false", "float", "for",
        "friend", "goto", "if", "inline", "int", "long", "mutable",
        "namespace", "new", "noexcept", "nullptr", "operator",
        "private", "protected", "public", "return", "short",
        "signed", "sizeof", "static", "struct", "switch",
        "template", "this", "throw", "true", "try", "typedef",
        "typename", "union", "unsigned", "using", "virtual",
        "void", "volatile", "while", "override", "final",
    };
    return kKeywords.count(word) != 0;
}

/**
 * Names a header *provides*: type names after class/struct/enum/
 * union, #define names, using declarations/aliases, plus — to keep
 * the check conservative — every identifier followed by '(' (a
 * callable), '=' (something assignable/initialized) or ';'/','
 * (declared entities). An include counts as used if the includer
 * references any one of these as a whole word, so only headers
 * with genuinely untouched vocabularies are reported.
 */
std::set<std::string>
providedNames(const std::vector<std::string> &codeLines)
{
    std::set<std::string> names;
    const JoinedCode joined = joinCode(codeLines);
    const std::string &text = joined.text;
    const std::size_t n = text.size();

    auto addIfName = [&names](const std::string &word) {
        if (word.size() >= 2 && !isCppKeyword(word) &&
            !(word[0] >= '0' && word[0] <= '9'))
            names.insert(word);
    };

    // Type definitions: last identifier (skipping attribute-macro
    // parens) before the '{', ':', ';' or '<' that follows the
    // keyword.
    for (const char *kw : {"class", "struct", "enum", "union"}) {
        std::size_t pos = findWord(text, kw);
        while (pos != std::string::npos) {
            std::size_t i = pos + std::strlen(kw);
            std::string last;
            while (i < n) {
                if (text[i] == ' ') {
                    ++i;
                } else if (isIdentChar(text[i])) {
                    std::size_t end = i;
                    while (end < n && isIdentChar(text[end]))
                        ++end;
                    const std::string word =
                        text.substr(i, end - i);
                    i = end;
                    if (word == "class" || word == "struct")
                        continue; // enum class / struct
                    // An attribute macro call: skip its parens.
                    const std::size_t paren =
                        i < n && text[i] == '(' ? i
                                                : std::string::npos;
                    if (paren != std::string::npos) {
                        const std::size_t close =
                            analysis::matchForward(text, paren, '(',
                                                   ')');
                        if (close == std::string::npos)
                            break;
                        i = close + 1;
                        continue;
                    }
                    last = word;
                } else {
                    break;
                }
            }
            addIfName(last);
            pos = findWord(text, kw, pos + 1);
        }
    }

    // #define names.
    for (const std::string &code : codeLines) {
        std::size_t i = 0;
        while (i < code.size() &&
               (code[i] == ' ' || code[i] == '\t'))
            ++i;
        if (i >= code.size() || code[i] != '#')
            continue;
        ++i;
        while (i < code.size() &&
               (code[i] == ' ' || code[i] == '\t'))
            ++i;
        if (code.compare(i, 6, "define") != 0)
            continue;
        i += 6;
        while (i < code.size() && code[i] == ' ')
            ++i;
        std::string word;
        while (i < code.size() && isIdentChar(code[i]))
            word += code[i++];
        addIfName(word);
    }

    // using X = ...; / using a::b::X;
    std::size_t pos = findWord(text, "using");
    while (pos != std::string::npos) {
        std::size_t i = pos + 5;
        std::string last;
        while (i < n && text[i] != ';' && text[i] != '=') {
            if (isIdentChar(text[i])) {
                std::size_t end = i;
                while (end < n && isIdentChar(text[end]))
                    ++end;
                last = text.substr(i, end - i);
                i = end;
            } else {
                ++i;
            }
        }
        if (last != "namespace")
            addIfName(last);
        pos = findWord(text, "using", pos + 1);
    }

    // Identifiers followed by '(' , '=' (not ==), ';' or ','.
    std::size_t i = 0;
    while (i < n) {
        if (!isIdentChar(text[i])) {
            ++i;
            continue;
        }
        const std::size_t begin = i;
        while (i < n && isIdentChar(text[i]))
            ++i;
        const std::size_t next = [&] {
            std::size_t j = i;
            while (j < n && text[j] == ' ')
                ++j;
            return j;
        }();
        if (next >= n)
            break;
        const char c = text[next];
        bool provides = c == '(' || c == ';' || c == ',';
        if (c == '=' && next + 1 < n && text[next + 1] != '=')
            provides = true;
        if (provides)
            addIfName(text.substr(begin, i - begin));
    }
    return names;
}

} // namespace

// ---------------------------------------------------------------
// The analyses
// ---------------------------------------------------------------

namespace
{

/** Tarjan strongly-connected components over the include graph. */
struct Tarjan
{
    const std::vector<std::vector<std::size_t>> &adj;
    std::vector<int> index, low, onStack;
    std::vector<std::size_t> stack;
    std::vector<std::vector<std::size_t>> components;
    int counter = 0;

    explicit Tarjan(const std::vector<std::vector<std::size_t>> &a)
        : adj(a), index(a.size(), -1), low(a.size(), 0),
          onStack(a.size(), 0)
    {
        for (std::size_t v = 0; v < a.size(); ++v)
            if (index[v] < 0)
                visit(v);
    }

    void visit(std::size_t v)
    {
        index[v] = low[v] = counter++;
        stack.push_back(v);
        onStack[v] = 1;
        for (const std::size_t w : adj[v]) {
            if (index[w] < 0) {
                visit(w);
                low[v] = std::min(low[v], low[w]);
            } else if (onStack[w]) {
                low[v] = std::min(low[v], index[w]);
            }
        }
        if (low[v] == index[v]) {
            std::vector<std::size_t> component;
            while (true) {
                const std::size_t w = stack.back();
                stack.pop_back();
                onStack[w] = 0;
                component.push_back(w);
                if (w == v)
                    break;
            }
            components.push_back(std::move(component));
        }
    }
};

/** True when @p file is the implementation of @p header (x.cc
 * beside x.hh): the interface include is never "unused". */
bool
isPairedHeader(const std::string &file, const std::string &header)
{
    const auto stem = [](const std::string &path) {
        const std::size_t dot = path.rfind('.');
        return dot == std::string::npos ? path
                                        : path.substr(0, dot);
    };
    return stem(file) == stem(header);
}

} // namespace

void
checkIncludes(const fs::path &root, const LayerConfig &config,
              const std::vector<SourceFile> &files,
              Diagnostics &diagnostics)
{
    std::map<std::string, std::size_t> fileIndex;
    for (std::size_t i = 0; i < files.size(); ++i)
        fileIndex[files[i].relPath] = i;

    // Resolve every directive once; remember the per-file edges.
    std::vector<std::vector<analysis::IncludeDirective>> directives(
        files.size());
    std::vector<std::vector<std::size_t>> adj(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        directives[i] = analysis::projectIncludes(root, files[i]);
        for (const analysis::IncludeDirective &inc :
             directives[i]) {
            if (inc.resolved.empty()) {
                diagnostics.add(files[i], inc.line,
                                "include-unresolved",
                                "'" + inc.spelling +
                                    "' does not resolve inside "
                                    "the project (typo, or a "
                                    "missing file)");
                continue;
            }
            const auto it = fileIndex.find(inc.resolved);
            if (it != fileIndex.end())
                adj[i].push_back(it->second);
        }
    }

    // layer-unmapped + layer-violation.
    std::vector<std::size_t> layerOf(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        layerOf[i] = config.layerOf(files[i].relPath);
        if (layerOf[i] == static_cast<std::size_t>(-1))
            diagnostics.add(files[i], 1, "layer-unmapped",
                            "no layer in " + config.path +
                                " covers this file; add its "
                                "directory to a layer");
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::size_t from = layerOf[i];
        if (from == static_cast<std::size_t>(-1))
            continue;
        for (const analysis::IncludeDirective &inc :
             directives[i]) {
            if (inc.resolved.empty())
                continue;
            const auto it = fileIndex.find(inc.resolved);
            if (it == fileIndex.end())
                continue;
            const std::size_t to = layerOf[it->second];
            if (to == static_cast<std::size_t>(-1))
                continue;
            const std::vector<std::size_t> &allowed =
                config.layers[from].allowed;
            if (!std::binary_search(allowed.begin(), allowed.end(),
                                    to))
                diagnostics.add(
                    files[i], inc.line, "layer-violation",
                    "include of '" + inc.spelling +
                        "' crosses the layer DAG: layer '" +
                        config.layers[from].name +
                        "' may not depend on layer '" +
                        config.layers[to].name + "' (" +
                        config.path + ")");
        }
    }

    // layer-cycle: one finding per strongly-connected component.
    const Tarjan tarjan(adj);
    for (const std::vector<std::size_t> &component :
         tarjan.components) {
        bool cyclic = component.size() > 1;
        if (component.size() == 1) {
            const std::size_t v = component.front();
            for (const std::size_t w : adj[v])
                cyclic = cyclic || w == v; // self-include
        }
        if (!cyclic)
            continue;
        std::vector<std::string> members;
        members.reserve(component.size());
        for (const std::size_t v : component)
            members.push_back(files[v].relPath);
        std::sort(members.begin(), members.end());
        const std::size_t anchor = fileIndex.at(members.front());
        // Report at the anchor's first include into the cycle.
        std::size_t line = 1;
        for (const analysis::IncludeDirective &inc :
             directives[anchor]) {
            if (std::find(members.begin(), members.end(),
                          inc.resolved) != members.end()) {
                line = inc.line;
                break;
            }
        }
        std::string list;
        for (const std::string &member : members) {
            if (!list.empty())
                list += ", ";
            list += member;
        }
        diagnostics.add(files[anchor], line, "layer-cycle",
                        "include cycle among: " + list);
    }

    // unused-include.
    std::map<std::string, std::set<std::string>> provided;
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (directives[i].empty())
            continue;
        const JoinedCode user = joinCode(files[i].code);
        for (const analysis::IncludeDirective &inc :
             directives[i]) {
            if (inc.resolved.empty() ||
                fileIndex.count(inc.resolved) == 0 ||
                isPairedHeader(files[i].relPath, inc.resolved))
                continue;
            const std::size_t target = fileIndex.at(inc.resolved);
            auto it = provided.find(inc.resolved);
            if (it == provided.end())
                it = provided
                         .emplace(inc.resolved,
                                  providedNames(
                                      files[target].code))
                         .first;
            bool used = it->second.empty(); // nothing to provide
            for (const std::string &name : it->second) {
                if (findWord(user.text, name) !=
                    std::string::npos) {
                    used = true;
                    break;
                }
            }
            if (!used)
                diagnostics.add(
                    files[i], inc.line, "unused-include",
                    "'" + inc.spelling +
                        "' is included but none of its declared "
                        "names are referenced here; drop the "
                        "include (or include what you actually "
                        "use)");
        }
    }
}

} // namespace lag::check
