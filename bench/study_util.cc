#include "study_util.hh"

#include <cstdlib>
#include <filesystem>

#include "engine/incremental.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "engine/study_driver.hh"
#include "util/logging.hh"

namespace lag::bench
{

app::StudyConfig
selectStudyConfig(int argc, char **argv)
{
    app::StudyConfig config;
    const char *quick = std::getenv("LAGALYZER_QUICK");
    if (quick != nullptr && quick[0] != '\0' && quick[0] != '0') {
        inform("bench: LAGALYZER_QUICK set; using the scaled-down "
               "study");
        config = app::StudyConfig::quickStudy();
    } else {
        config = app::StudyConfig::paperStudy();
    }
    const char *jobs_env = std::getenv("LAGALYZER_JOBS");
    if (jobs_env != nullptr && jobs_env[0] != '\0') {
        config.jobs = static_cast<std::uint32_t>(
            std::strtoul(jobs_env, nullptr, 10));
    }
    const char *bytes_env = std::getenv("LAGALYZER_CACHE_MAX_BYTES");
    if (bytes_env != nullptr && bytes_env[0] != '\0') {
        config.cacheMaxBytes = std::strtoull(bytes_env, nullptr, 10);
    }
    const char *age_env = std::getenv("LAGALYZER_CACHE_MAX_AGE");
    if (age_env != nullptr && age_env[0] != '\0') {
        config.cacheMaxAgeSeconds =
            std::strtoull(age_env, nullptr, 10);
    }
    if (argv != nullptr) {
        const std::uint32_t jobs = app::parseJobsOption(argc, argv);
        if (jobs != 0)
            config.jobs = jobs;
        const app::CacheLimitOptions limits =
            app::parseCacheLimitOptions(argc, argv);
        if (limits.maxBytes != 0)
            config.cacheMaxBytes = limits.maxBytes;
        if (limits.maxAgeSeconds != 0)
            config.cacheMaxAgeSeconds = limits.maxAgeSeconds;
        config.incremental = !app::parseNoIncrementalOption(argc, argv);
    } else {
        int argc0 = 0;
        config.incremental =
            !app::parseNoIncrementalOption(argc0, nullptr);
    }
    return config;
}

namespace
{

/**
 * Per-session analyses indexed [app][session], answered through
 * engine::aggregateFromCache: cached `.ares` entries where possible,
 * decode + analyze (and store back) only on a miss. On the default
 * incremental path only the manifest is validated up front, so a
 * warm analysis cache never opens a trace; `--no-incremental`
 * recomputes every session from its trace instead.
 */
std::vector<std::vector<engine::SessionAnalysis>>
analyzeSessions(app::Study &study)
{
    const app::StudyConfig &config = study.config();
    engine::AggregateOptions options;
    options.incremental = config.incremental;
    if (options.incremental)
        study.validate();
    else
        study.ensureTraces();
    const engine::ResultCache cache(config.cacheDir,
                                    config.fingerprint());

    std::vector<std::string> names;
    names.reserve(config.apps.size());
    for (const auto &app : config.apps)
        names.push_back(app.name);

    engine::ThreadPool pool(config.jobs);
    engine::StudyAggregate aggregate = engine::aggregateFromCache(
        cache, names, config.sessionsPerApp,
        config.perceptibleThreshold, pool,
        [&study](std::size_t a, std::uint32_t s) {
            return study.loadSession(a, s);
        },
        options);
    inform("bench: ", aggregate.sessionsFromCache,
           " session(s) from the analysis cache, ",
           aggregate.sessionsRecomputed, " recomputed");

    // Bound the analysis directory after the run: stale-fingerprint
    // entries always go, then size/age limits when configured.
    // evict() itself informs about what it removed.
    const engine::CacheEvictionPolicy policy{
        config.cacheMaxBytes, config.cacheMaxAgeSeconds};
    cache.evict(policy);
    return std::move(aggregate.grid);
}

} // namespace

std::vector<AppAnalysis>
analyzeStudy(app::Study &study)
{
    const auto grid = analyzeSessions(study);

    // Session-averaging now lives in engine::averageSessionAnalyses
    // — the same code lagd's hot store runs — in [app][session]
    // order, so every bit of the output matches the historical
    // serial path exactly.
    std::vector<AppAnalysis> results;
    results.reserve(study.config().apps.size());
    for (std::size_t a = 0; a < study.config().apps.size(); ++a) {
        results.push_back(engine::averageSessionAnalyses(
            study.config().apps[a].name, grid[a]));
    }
    return results;
}

double
meanOf(const std::vector<AppAnalysis> &apps,
       const std::function<double(const AppAnalysis &)> &get)
{
    lag_assert(!apps.empty(), "meanOf over zero apps");
    double total = 0.0;
    for (const auto &app : apps)
        total += get(app);
    return total / static_cast<double>(apps.size());
}

std::string
figurePath(const std::string &name)
{
    std::filesystem::create_directories("figures");
    return "figures/" + name;
}

} // namespace lag::bench
