#include "study_util.hh"

#include <cstdlib>
#include <filesystem>

#include "util/logging.hh"

namespace lag::bench
{

app::StudyConfig
selectStudyConfig()
{
    const char *quick = std::getenv("LAGALYZER_QUICK");
    if (quick != nullptr && quick[0] != '\0' && quick[0] != '0') {
        inform("bench: LAGALYZER_QUICK set; using the scaled-down "
               "study");
        return app::StudyConfig::quickStudy();
    }
    return app::StudyConfig::paperStudy();
}

namespace
{

/** Linear resample of a CDF onto the 0..100 pattern-percent grid. */
std::vector<double>
resampleCdf(const std::vector<std::pair<double, double>> &points)
{
    std::vector<double> grid(101, 0.0);
    if (points.size() < 2) {
        // Degenerate set: everything covered immediately.
        for (int x = 1; x <= 100; ++x)
            grid[static_cast<std::size_t>(x)] = 1.0;
        return grid;
    }
    std::size_t seg = 0;
    for (int x = 0; x <= 100; ++x) {
        const double fx = static_cast<double>(x) / 100.0;
        while (seg + 1 < points.size() - 1 &&
               points[seg + 1].first < fx) {
            ++seg;
        }
        const auto &[x0, y0] = points[seg];
        const auto &[x1, y1] = points[seg + 1];
        double y;
        if (fx <= x0) {
            y = y0;
        } else if (fx >= x1) {
            y = y1;
        } else {
            y = y0 + (y1 - y0) * (fx - x0) / (x1 - x0);
        }
        grid[static_cast<std::size_t>(x)] = y;
    }
    return grid;
}

} // namespace

std::vector<AppAnalysis>
analyzeStudy(app::Study &study)
{
    const DurationNs threshold = study.config().perceptibleThreshold;
    core::PatternMiner miner(threshold);

    std::vector<AppAnalysis> results;
    for (std::size_t a = 0; a < study.config().apps.size(); ++a) {
        app::AppSessions loaded = study.loadApp(a);
        AppAnalysis result;
        result.name = loaded.params.name;
        result.cdfEpisodesAtPatternPercent.assign(101, 0.0);

        std::vector<core::OverviewRow> rows;
        const auto n = static_cast<double>(loaded.sessions.size());
        for (const core::Session &session : loaded.sessions) {
            const core::PatternSet patterns = miner.mine(session);
            rows.push_back(
                core::computeOverview(session, patterns, threshold));

            const auto triggers =
                core::analyzeTriggers(session, threshold);
            const auto location =
                core::analyzeLocation(session, threshold);
            const auto concurrency =
                core::analyzeConcurrency(session, threshold);
            const auto states =
                core::analyzeGuiStates(session, threshold);
            const auto occurrence = core::occurrenceShares(patterns);
            const auto cdf = resampleCdf(core::patternCdf(patterns));

            const auto add_shares = [&](core::TriggerShares &dst,
                                        const core::TriggerShares &src) {
                dst.input += src.input / n;
                dst.output += src.output / n;
                dst.async += src.async / n;
                dst.unspecified += src.unspecified / n;
                dst.episodeCount += src.episodeCount;
            };
            add_shares(result.triggers.all, triggers.all);
            add_shares(result.triggers.perceptible,
                       triggers.perceptible);

            const auto add_location =
                [&](core::LocationShares &dst,
                    const core::LocationShares &src) {
                    dst.appFraction += src.appFraction / n;
                    dst.libraryFraction += src.libraryFraction / n;
                    dst.gcFraction += src.gcFraction / n;
                    dst.nativeFraction += src.nativeFraction / n;
                    dst.sampleCount += src.sampleCount;
                    dst.episodeCount += src.episodeCount;
                };
            add_location(result.location.all, location.all);
            add_location(result.location.perceptible,
                         location.perceptible);

            result.concurrency.meanRunnableAll +=
                concurrency.meanRunnableAll / n;
            result.concurrency.meanRunnablePerceptible +=
                concurrency.meanRunnablePerceptible / n;
            result.concurrency.samplesAll += concurrency.samplesAll;
            result.concurrency.samplesPerceptible +=
                concurrency.samplesPerceptible;

            const auto add_states = [&](core::GuiStateShares &dst,
                                        const core::GuiStateShares &src) {
                dst.blocked += src.blocked / n;
                dst.waiting += src.waiting / n;
                dst.sleeping += src.sleeping / n;
                dst.runnable += src.runnable / n;
                dst.sampleCount += src.sampleCount;
            };
            add_states(result.states.all, states.all);
            add_states(result.states.perceptible, states.perceptible);

            result.occurrence.always += occurrence.always / n;
            result.occurrence.sometimes += occurrence.sometimes / n;
            result.occurrence.once += occurrence.once / n;
            result.occurrence.never += occurrence.never / n;
            result.occurrence.patternCount += occurrence.patternCount;

            for (int x = 0; x <= 100; ++x) {
                result.cdfEpisodesAtPatternPercent
                    [static_cast<std::size_t>(x)] +=
                    cdf[static_cast<std::size_t>(x)] / n;
            }
        }
        result.overview = core::meanOverview(rows);
        results.push_back(std::move(result));
    }
    return results;
}

double
meanOf(const std::vector<AppAnalysis> &apps,
       const std::function<double(const AppAnalysis &)> &get)
{
    lag_assert(!apps.empty(), "meanOf over zero apps");
    double total = 0.0;
    for (const auto &app : apps)
        total += get(app);
    return total / static_cast<double>(apps.size());
}

std::string
figurePath(const std::string &name)
{
    std::filesystem::create_directories("figures");
    return "figures/" + name;
}

} // namespace lag::bench
