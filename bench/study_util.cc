#include "study_util.hh"

#include <cstdlib>
#include <filesystem>

#include "engine/incremental.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "engine/study_driver.hh"
#include "util/logging.hh"

namespace lag::bench
{

app::StudyConfig
selectStudyConfig(int argc, char **argv)
{
    app::StudyConfig config;
    const char *quick = std::getenv("LAGALYZER_QUICK");
    if (quick != nullptr && quick[0] != '\0' && quick[0] != '0') {
        inform("bench: LAGALYZER_QUICK set; using the scaled-down "
               "study");
        config = app::StudyConfig::quickStudy();
    } else {
        config = app::StudyConfig::paperStudy();
    }
    const char *jobs_env = std::getenv("LAGALYZER_JOBS");
    if (jobs_env != nullptr && jobs_env[0] != '\0') {
        config.jobs = static_cast<std::uint32_t>(
            std::strtoul(jobs_env, nullptr, 10));
    }
    const char *bytes_env = std::getenv("LAGALYZER_CACHE_MAX_BYTES");
    if (bytes_env != nullptr && bytes_env[0] != '\0') {
        config.cacheMaxBytes = std::strtoull(bytes_env, nullptr, 10);
    }
    const char *age_env = std::getenv("LAGALYZER_CACHE_MAX_AGE");
    if (age_env != nullptr && age_env[0] != '\0') {
        config.cacheMaxAgeSeconds =
            std::strtoull(age_env, nullptr, 10);
    }
    if (argv != nullptr) {
        const std::uint32_t jobs = app::parseJobsOption(argc, argv);
        if (jobs != 0)
            config.jobs = jobs;
        const app::CacheLimitOptions limits =
            app::parseCacheLimitOptions(argc, argv);
        if (limits.maxBytes != 0)
            config.cacheMaxBytes = limits.maxBytes;
        if (limits.maxAgeSeconds != 0)
            config.cacheMaxAgeSeconds = limits.maxAgeSeconds;
        config.incremental = !app::parseNoIncrementalOption(argc, argv);
    } else {
        int argc0 = 0;
        config.incremental =
            !app::parseNoIncrementalOption(argc0, nullptr);
    }
    return config;
}

namespace
{

/** Linear resample of a CDF onto the 0..100 pattern-percent grid. */
std::vector<double>
resampleCdf(const std::vector<std::pair<double, double>> &points)
{
    std::vector<double> grid(101, 0.0);
    if (points.size() < 2) {
        // Degenerate set: everything covered immediately.
        for (int x = 1; x <= 100; ++x)
            grid[static_cast<std::size_t>(x)] = 1.0;
        return grid;
    }
    std::size_t seg = 0;
    for (int x = 0; x <= 100; ++x) {
        const double fx = static_cast<double>(x) / 100.0;
        while (seg + 1 < points.size() - 1 &&
               points[seg + 1].first < fx) {
            ++seg;
        }
        const auto &[x0, y0] = points[seg];
        const auto &[x1, y1] = points[seg + 1];
        double y;
        if (fx <= x0) {
            y = y0;
        } else if (fx >= x1) {
            y = y1;
        } else {
            y = y0 + (y1 - y0) * (fx - x0) / (x1 - x0);
        }
        grid[static_cast<std::size_t>(x)] = y;
    }
    return grid;
}

/**
 * Per-session analyses indexed [app][session], answered through
 * engine::aggregateFromCache: cached `.ares` entries where possible,
 * decode + analyze (and store back) only on a miss. On the default
 * incremental path only the manifest is validated up front, so a
 * warm analysis cache never opens a trace; `--no-incremental`
 * recomputes every session from its trace instead.
 */
std::vector<std::vector<engine::SessionAnalysis>>
analyzeSessions(app::Study &study)
{
    const app::StudyConfig &config = study.config();
    engine::AggregateOptions options;
    options.incremental = config.incremental;
    if (options.incremental)
        study.validate();
    else
        study.ensureTraces();
    const engine::ResultCache cache(config.cacheDir,
                                    config.fingerprint());

    std::vector<std::string> names;
    names.reserve(config.apps.size());
    for (const auto &app : config.apps)
        names.push_back(app.name);

    engine::ThreadPool pool(config.jobs);
    engine::StudyAggregate aggregate = engine::aggregateFromCache(
        cache, names, config.sessionsPerApp,
        config.perceptibleThreshold, pool,
        [&study](std::size_t a, std::uint32_t s) {
            return study.loadSession(a, s);
        },
        options);
    inform("bench: ", aggregate.sessionsFromCache,
           " session(s) from the analysis cache, ",
           aggregate.sessionsRecomputed, " recomputed");

    // Bound the analysis directory after the run: stale-fingerprint
    // entries always go, then size/age limits when configured.
    // evict() itself informs about what it removed.
    const engine::CacheEvictionPolicy policy{
        config.cacheMaxBytes, config.cacheMaxAgeSeconds};
    cache.evict(policy);
    return std::move(aggregate.grid);
}

} // namespace

std::vector<AppAnalysis>
analyzeStudy(app::Study &study)
{
    const auto grid = analyzeSessions(study);

    // Deterministic serial merge in [app][session] order — the
    // arithmetic (and thus every bit of the output) matches the
    // historical serial path exactly.
    std::vector<AppAnalysis> results;
    for (std::size_t a = 0; a < study.config().apps.size(); ++a) {
        AppAnalysis result;
        result.name = study.config().apps[a].name;
        result.cdfEpisodesAtPatternPercent.assign(101, 0.0);

        std::vector<core::OverviewRow> rows;
        const auto n = static_cast<double>(grid[a].size());
        for (const engine::SessionAnalysis &sa : grid[a]) {
            rows.push_back(sa.overview);
            const auto cdf = resampleCdf(sa.cdf);

            const auto add_shares = [&](core::TriggerShares &dst,
                                        const core::TriggerShares &src) {
                dst.input += src.input / n;
                dst.output += src.output / n;
                dst.async += src.async / n;
                dst.unspecified += src.unspecified / n;
                dst.episodeCount += src.episodeCount;
            };
            add_shares(result.triggers.all, sa.triggers.all);
            add_shares(result.triggers.perceptible,
                       sa.triggers.perceptible);

            const auto add_location =
                [&](core::LocationShares &dst,
                    const core::LocationShares &src) {
                    dst.appFraction += src.appFraction / n;
                    dst.libraryFraction += src.libraryFraction / n;
                    dst.gcFraction += src.gcFraction / n;
                    dst.nativeFraction += src.nativeFraction / n;
                    dst.sampleCount += src.sampleCount;
                    dst.episodeCount += src.episodeCount;
                };
            add_location(result.location.all, sa.location.all);
            add_location(result.location.perceptible,
                         sa.location.perceptible);

            result.concurrency.meanRunnableAll +=
                sa.concurrency.meanRunnableAll / n;
            result.concurrency.meanRunnablePerceptible +=
                sa.concurrency.meanRunnablePerceptible / n;
            result.concurrency.samplesAll +=
                sa.concurrency.samplesAll;
            result.concurrency.samplesPerceptible +=
                sa.concurrency.samplesPerceptible;

            const auto add_states = [&](core::GuiStateShares &dst,
                                        const core::GuiStateShares &src) {
                dst.blocked += src.blocked / n;
                dst.waiting += src.waiting / n;
                dst.sleeping += src.sleeping / n;
                dst.runnable += src.runnable / n;
                dst.sampleCount += src.sampleCount;
            };
            add_states(result.states.all, sa.states.all);
            add_states(result.states.perceptible,
                       sa.states.perceptible);

            result.occurrence.always += sa.occurrence.always / n;
            result.occurrence.sometimes +=
                sa.occurrence.sometimes / n;
            result.occurrence.once += sa.occurrence.once / n;
            result.occurrence.never += sa.occurrence.never / n;
            result.occurrence.patternCount +=
                sa.occurrence.patternCount;

            for (int x = 0; x <= 100; ++x) {
                result.cdfEpisodesAtPatternPercent
                    [static_cast<std::size_t>(x)] +=
                    cdf[static_cast<std::size_t>(x)] / n;
            }
        }
        result.overview = core::meanOverview(rows);
        results.push_back(std::move(result));
    }
    return results;
}

double
meanOf(const std::vector<AppAnalysis> &apps,
       const std::function<double(const AppAnalysis &)> &get)
{
    lag_assert(!apps.empty(), "meanOf over zero apps");
    double total = 0.0;
    for (const auto &app : apps)
        total += get(app);
    return total / static_cast<double>(apps.size());
}

std::string
figurePath(const std::string &name)
{
    std::filesystem::create_directories("figures");
    return "figures/" + name;
}

} // namespace lag::bench
