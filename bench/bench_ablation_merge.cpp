/**
 * @file
 * Ablation: one session versus four — cross-session pattern merging.
 *
 * The paper's related-work section credits LagAlyzer with
 * "integrating multiple traces in its analysis [to] help uncover
 * repeating patterns of bad performance" (§VI). This harness
 * quantifies the benefit: patterns mined from a single session are
 * compared with patterns merged across all four sessions, showing
 * how many slow patterns recur in every session (reproducible
 * problems worth a developer's time) versus appearing only once
 * (likely environmental noise).
 */

#include <iostream>

#include "core/aggregate.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    study.ensureTraces();

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("s0 patterns", report::Align::Right);
    table.addColumn("merged", report::Align::Right);
    table.addColumn("recurring", report::Align::Right);
    table.addColumn("recurring-always", report::Align::Right);
    table.addColumn("1-session slow", report::Align::Right);

    for (std::size_t a = 0; a < study.config().apps.size(); ++a) {
        const app::AppSessions loaded = study.loadApp(a);
        const core::PatternMiner miner(msToNs(100));
        const core::PatternSet single =
            miner.mine(loaded.sessions[0]);
        const core::MergedPatternSet merged =
            core::minePatternsAcrossSessions(loaded.sessions,
                                             msToNs(100));

        // Slow patterns seen in exactly one session.
        std::size_t one_session_slow = 0;
        for (const auto &pattern : merged.patterns) {
            if (pattern.totalPerceptible > 0 &&
                pattern.sessions.size() == 1) {
                ++one_session_slow;
            }
        }

        table.addRow({loaded.params.name,
                      formatCount(single.patterns.size()),
                      formatCount(merged.patterns.size()),
                      formatCount(merged.recurringCount()),
                      formatCount(merged.recurringAlwaysCount()),
                      formatCount(one_session_slow)});
    }

    std::cout
        << "Ablation: cross-session pattern merging (paper SVI: "
           "LagAlyzer 'integrates multiple traces in its "
           "analysis')\n\n"
        << table.render() << '\n'
        << "'recurring' = patterns present in all 4 sessions; "
           "'recurring-always' = recurring and perceptible in every "
           "occurrence (prime optimization targets); '1-session "
           "slow' = perceptible patterns seen in only one session — "
           "without merging, a developer cannot tell these from "
           "reproducible problems.\n";
    return 0;
}
