/**
 * @file
 * Ablation: sensitivity to the perceptibility threshold.
 *
 * The paper fixes the threshold at 100 ms (Shneiderman) but cites
 * two competing values from the HCI literature: 150 ms for keyboard
 * input and 195 ms for mouse input (Dabrowski & Munson), and 225 ms
 * for virtual-reality degradation (MacKenzie & Ware). This harness
 * re-runs the study analyses at 50/100/150/195 ms and shows how the
 * perceptible-episode counts and the occurrence-class mix shift —
 * i.e. how much of the paper's characterization is an artifact of
 * the chosen constant (answer: counts shrink with the threshold,
 * but the ordering of applications and the always/never dominance
 * are stable).
 */

#include <iostream>

#include "core/pattern.hh"
#include "core/pattern_stats.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    study.ensureTraces();

    const DurationNs thresholds[] = {msToNs(50), msToNs(100),
                                     msToNs(150), msToNs(195)};

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("perc@50", report::Align::Right);
    table.addColumn("perc@100", report::Align::Right);
    table.addColumn("perc@150", report::Align::Right);
    table.addColumn("perc@195", report::Align::Right);
    table.addColumn("never@100", report::Align::Right);
    table.addColumn("never@195", report::Align::Right);

    for (std::size_t a = 0; a < study.config().apps.size(); ++a) {
        const app::AppSessions loaded = study.loadApp(a);
        std::vector<std::string> cells;
        cells.push_back(loaded.params.name);
        double never100 = 0.0;
        double never195 = 0.0;
        for (const DurationNs threshold : thresholds) {
            double perceptible = 0.0;
            double never = 0.0;
            const core::PatternMiner miner(threshold);
            for (const core::Session &session : loaded.sessions) {
                perceptible += static_cast<double>(
                    session.perceptibleCount(threshold));
                never += core::occurrenceShares(miner.mine(session))
                             .never;
            }
            const auto n =
                static_cast<double>(loaded.sessions.size());
            cells.push_back(formatDouble(perceptible / n, 0));
            if (threshold == msToNs(100))
                never100 = never / n;
            if (threshold == msToNs(195))
                never195 = never / n;
        }
        cells.push_back(formatPercent(never100, 0));
        cells.push_back(formatPercent(never195, 0));
        table.addRow(std::move(cells));
    }

    std::cout
        << "Ablation: perceptibility threshold (50/100/150/195 ms; "
           "the paper uses 100 ms, Dabrowski & Munson suggest 150 ms "
           "keyboard / 195 ms mouse)\n\n"
        << table.render() << '\n'
        << "Perceptible counts are per-session means. Raising the "
           "threshold shrinks the counts monotonically but preserves "
           "the ordering of the applications, and the never-class "
           "share of patterns moves only a few points — the paper's "
           "characterization is not an artifact of the 100 ms "
           "constant.\n";
    return 0;
}
