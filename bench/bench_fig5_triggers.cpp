/**
 * @file
 * Reproduces Figure 5: episode triggers — input, output,
 * asynchronous, or unspecified — over all episodes and over the
 * perceptible ones. Paper headlines (perceptible): 40% input / 47%
 * output / 7% async on average; JMol 98% output; ArgoUML 78% input;
 * FindBugs 42% async; Arabeske 57% unspecified.
 */

#include <iostream>

#include "paper_data.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/charts.hh"
#include "viz/palette.hh"

namespace
{

using namespace lag;
using namespace lag::bench;

viz::StackedBarChart
makeChart(const char *title,
          const std::vector<AppAnalysis> &apps,
          const std::function<const core::TriggerShares &(
              const AppAnalysis &)> &select)
{
    viz::StackedBarChart chart(title, "Episodes [%]", 100.0);
    chart.addLegend("Input", std::string(viz::triggerColor(0)));
    chart.addLegend("Output", std::string(viz::triggerColor(1)));
    chart.addLegend("Async", std::string(viz::triggerColor(2)));
    chart.addLegend("Unspecified", std::string(viz::triggerColor(3)));
    for (const auto &app : apps) {
        const core::TriggerShares &shares = select(app);
        chart.addRow(viz::BarRow{
            app.name,
            {{shares.input * 100.0, std::string(viz::triggerColor(0))},
             {shares.output * 100.0,
              std::string(viz::triggerColor(1))},
             {shares.async * 100.0, std::string(viz::triggerColor(2))},
             {shares.unspecified * 100.0,
              std::string(viz::triggerColor(3))}}});
    }
    return chart;
}

} // namespace

int
main(int argc, char **argv)
{
    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("", report::Align::Left);
    table.addColumn("input", report::Align::Right);
    table.addColumn("output", report::Align::Right);
    table.addColumn("async", report::Align::Right);
    table.addColumn("unspec", report::Align::Right);
    table.addColumn("| all:input", report::Align::Right);
    table.addColumn("output", report::Align::Right);
    table.addColumn("async", report::Align::Right);

    core::TriggerShares mean_perc;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &perc = apps[i].triggers.perceptible;
        const auto &all = apps[i].triggers.all;
        const auto &paper = kPaperFig5Perceptible[i];
        table.addRow({apps[i].name, "paper",
                      std::to_string(paper.input) + "%",
                      std::to_string(paper.output) + "%",
                      std::to_string(paper.async) + "%",
                      std::to_string(paper.unspecified) + "%", "", "",
                      ""});
        table.addRow({"", "ours", formatPercent(perc.input, 0),
                      formatPercent(perc.output, 0),
                      formatPercent(perc.async, 0),
                      formatPercent(perc.unspecified, 0),
                      formatPercent(all.input, 0),
                      formatPercent(all.output, 0),
                      formatPercent(all.async, 0)});
        mean_perc.input += perc.input / 14.0;
        mean_perc.output += perc.output / 14.0;
        mean_perc.async += perc.async / 14.0;
        mean_perc.unspecified += perc.unspecified / 14.0;
    }

    std::cout << "Figure 5: triggers of (perceptible) episodes\n\n"
              << table.render() << '\n';
    std::cout << "Mean over perceptible episodes — paper: 40% input, "
                 "47% output, 7% async; measured: "
              << formatPercent(mean_perc.input, 0) << " input, "
              << formatPercent(mean_perc.output, 0) << " output, "
              << formatPercent(mean_perc.async, 0) << " async\n";

    makeChart("Figure 5 (upper): triggers of all episodes", apps,
              [](const AppAnalysis &a) -> const core::TriggerShares & {
                  return a.triggers.all;
              })
        .render()
        .writeFile(figurePath("fig5_triggers_all.svg"));
    makeChart("Figure 5 (lower): triggers of perceptible episodes",
              apps,
              [](const AppAnalysis &a) -> const core::TriggerShares & {
                  return a.triggers.perceptible;
              })
        .render()
        .writeFile(figurePath("fig5_triggers_perceptible.svg"));
    std::cout << "SVGs written to figures/fig5_triggers_*.svg\n";
    return 0;
}
