/**
 * @file
 * Performance of the analysis pipeline (google-benchmark).
 *
 * The paper reports: "The fully automated analysis of about 7.5
 * hours of interactive sessions (roughly 250'000 episodes) took 15
 * minutes (including the generation of MATLAB graphs)" — about 280
 * episodes analyzed per second. These microbenchmarks measure the
 * stages of our pipeline (trace decode, session build, pattern
 * mining, the full analysis suite, sketch rendering) and report
 * episodes/second for comparison.
 *
 * Before the microbenchmarks, main() times one full quick study
 * end-to-end twice — once on a single worker, once on the engine's
 * default (or `--jobs N`) worker count — and prints one JSON line
 * comparing serial and parallel wall time. Set
 * LAGALYZER_SKIP_SPEEDUP=1 to skip that (it simulates traces).
 *
 * More JSON lines quantify the zero-copy decode and arena session
 * build: `decode_mb_per_s` (mmap vs stream, with per-decode
 * allocation counts and bytes as the copy proxy), `session_build_ms`
 * (arena vs heap) and `episode_shard_speedup` (within-session
 * sharded analysis vs serial), plus `obs_pipeline` (pool steal
 * ratio, cache hit rate, queue-depth high-water mark from the
 * always-on metrics registry). `--smoke` prints only those lines
 * with few iterations — that mode backs the `perf` CTest label.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "app/study.hh"
#include "study_util.hh"
#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "core/pattern_stats.hh"
#include "core/triggers.hh"
#include "engine/ingest.hh"
#include "engine/parallel_analysis.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "serve/store.hh"
#include "trace/io.hh"
#include "viz/sketch.hh"

namespace
{

/**
 * Process-wide allocation counters. The container runs this bench
 * on a single core, so wall time can't show the zero-copy and arena
 * wins directly; heap traffic (allocation count and bytes, a proxy
 * for bytes copied) is the hardware-independent measure the JSON
 * lines report.
 * @{
 */
std::atomic<std::uint64_t> g_allocCount{0};
std::atomic<std::uint64_t> g_allocBytes{0};

struct AllocSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
};

AllocSnapshot
allocNow()
{
    return {g_allocCount.load(std::memory_order_relaxed),
            g_allocBytes.load(std::memory_order_relaxed)};
}

AllocSnapshot
allocSince(const AllocSnapshot &start)
{
    const AllocSnapshot now = allocNow();
    return {now.count - start.count, now.bytes - start.bytes};
}
/** @} */

} // namespace

// The counting operator new below wraps malloc, so the matching
// operator delete must call free. GCC's new/delete pairing
// heuristic cannot see through replaced global operators and would
// flag every inlined delete site in this TU as a mismatch.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(size, std::memory_order_relaxed);
    if (void *ptr = std::malloc(size == 0 ? 1 : size))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace
{

using namespace lag;

/** One cached 60 s GanttProject session (trace bytes + session). */
struct Fixture
{
    std::string bytes;
    core::Session session;
    std::size_t episodes;

    Fixture()
        : bytes([] {
              app::AppParams params =
                  app::catalogApp("GanttProject");
              params.sessionLength = secToNs(60);
              return trace::serializeTrace(
                  app::runSession(params, 0).trace);
          }()),
          session(core::Session::fromTrace(
              trace::deserializeTrace(bytes))),
          episodes(session.episodes().size())
    {
    }

    static const Fixture &
    get()
    {
        static const Fixture fixture;
        return fixture;
    }
};

void
BM_TraceDecode(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    for (auto _ : state) {
        trace::Trace t = trace::deserializeTrace(f.bytes);
        benchmark::DoNotOptimize(t.events.data());
    }
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);

void
BM_SessionBuild(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    for (auto _ : state) {
        state.PauseTiming();
        trace::Trace t = trace::deserializeTrace(f.bytes);
        state.ResumeTiming();
        core::Session s = core::Session::fromTrace(std::move(t));
        benchmark::DoNotOptimize(s.episodes().data());
    }
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionBuild)->Unit(benchmark::kMillisecond);

void
BM_PatternMining(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    const core::PatternMiner miner(msToNs(100));
    for (auto _ : state) {
        core::PatternSet set = miner.mine(f.session);
        benchmark::DoNotOptimize(set.patterns.data());
    }
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PatternMining)->Unit(benchmark::kMillisecond);

void
BM_FullAnalysisSuite(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    const core::PatternMiner miner(msToNs(100));
    for (auto _ : state) {
        const core::PatternSet set = miner.mine(f.session);
        const auto overview =
            core::computeOverview(f.session, set, msToNs(100));
        const auto triggers =
            core::analyzeTriggers(f.session, msToNs(100));
        const auto location =
            core::analyzeLocation(f.session, msToNs(100));
        const auto concurrency =
            core::analyzeConcurrency(f.session, msToNs(100));
        const auto states =
            core::analyzeGuiStates(f.session, msToNs(100));
        const auto occurrence = core::occurrenceShares(set);
        const auto cdf = core::patternCdf(set);
        benchmark::DoNotOptimize(overview.tracedCount);
        benchmark::DoNotOptimize(triggers.all.input);
        benchmark::DoNotOptimize(location.all.gcFraction);
        benchmark::DoNotOptimize(concurrency.meanRunnableAll);
        benchmark::DoNotOptimize(states.all.blocked);
        benchmark::DoNotOptimize(occurrence.always);
        benchmark::DoNotOptimize(cdf.size());
    }
    // The paper's pipeline: ~250k episodes in 15 min = ~280/s.
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["paper_episodes/s"] = 280;
}
BENCHMARK(BM_FullAnalysisSuite)->Unit(benchmark::kMillisecond);

void
BM_SketchRender(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    // Slowest episode, like the examples render.
    const core::Episode *slowest = &f.session.episodes()[0];
    for (const auto &episode : f.session.episodes()) {
        if (episode.duration() > slowest->duration())
            slowest = &episode;
    }
    for (auto _ : state) {
        const viz::SvgDocument doc =
            viz::renderEpisodeSketch(f.session, *slowest);
        benchmark::DoNotOptimize(doc.finish().size());
    }
}
BENCHMARK(BM_SketchRender)->Unit(benchmark::kMillisecond);

void
BM_SessionSimulation(benchmark::State &state)
{
    // Measurement-side throughput: simulate 10 s of CrosswordSage.
    app::AppParams params = app::catalogApp("CrosswordSage");
    params.sessionLength = secToNs(10);
    for (auto _ : state) {
        auto result = app::runSession(
            params, static_cast<std::uint32_t>(state.iterations()));
        benchmark::DoNotOptimize(result.trace.events.data());
    }
    state.counters["sim_s/s"] = benchmark::Counter(
        10.0 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionSimulation)->Unit(benchmark::kMillisecond);

/** Wall time of @p fn in milliseconds. */
template <typename Fn>
double
timedMs(const Fn &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

/**
 * Trace decode throughput, mapped vs stream, as one JSON line.
 * Heap traffic per decode is the copy proxy: the stream path pays
 * for the whole file buffer, the mmap path only for the decoded
 * structures, so `alloc_bytes_speedup` is the zero-copy win
 * independent of the machine's memory bandwidth.
 */
void
reportDecodeThroughput(const Fixture &f, int iterations)
{
    const std::string path = "lagalyzer-perf-decode.trace";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(f.bytes.data(),
                  static_cast<std::streamsize>(f.bytes.size()));
    }

    const double mb =
        static_cast<double>(f.bytes.size()) / (1024.0 * 1024.0);
    const auto decodePass = [&](trace::TraceReadMode mode,
                                double &ms, AllocSnapshot &allocs) {
        const AllocSnapshot start = allocNow();
        ms = timedMs([&] {
            for (int i = 0; i < iterations; ++i) {
                trace::Trace t = trace::readTraceFile(path, mode);
                benchmark::DoNotOptimize(t.events.data());
            }
        });
        allocs = allocSince(start);
        allocs.count /= static_cast<std::uint64_t>(iterations);
        allocs.bytes /= static_cast<std::uint64_t>(iterations);
        ms /= iterations;
    };

    double mapped_ms = 0.0;
    double stream_ms = 0.0;
    AllocSnapshot mapped;
    AllocSnapshot stream;
    decodePass(trace::TraceReadMode::Mapped, mapped_ms, mapped);
    decodePass(trace::TraceReadMode::Stream, stream_ms, stream);
    std::filesystem::remove(path);

    std::printf(
        "{\"bench\":\"decode_mb_per_s\",\"file_mb\":%.2f,"
        "\"mapped_mb_per_s\":%.1f,\"stream_mb_per_s\":%.1f,"
        "\"mapped_allocs\":%llu,\"stream_allocs\":%llu,"
        "\"mapped_alloc_bytes\":%llu,\"stream_alloc_bytes\":%llu,"
        "\"alloc_bytes_speedup\":%.2f}\n",
        mb, mapped_ms > 0.0 ? mb / (mapped_ms / 1000.0) : 0.0,
        stream_ms > 0.0 ? mb / (stream_ms / 1000.0) : 0.0,
        static_cast<unsigned long long>(mapped.count),
        static_cast<unsigned long long>(stream.count),
        static_cast<unsigned long long>(mapped.bytes),
        static_cast<unsigned long long>(stream.bytes),
        mapped.bytes > 0
            ? static_cast<double>(stream.bytes) /
                  static_cast<double>(mapped.bytes)
            : 0.0);
    std::fflush(stdout);
}

/**
 * Session build time and heap traffic, arena vs plain heap, as one
 * JSON line. `alloc_count_speedup` is the malloc-pressure win of
 * the arena + exact-reserve build.
 */
void
reportSessionBuild(const Fixture &f, int iterations)
{
    const auto buildPass = [&](bool use_arena, double &ms,
                               AllocSnapshot &allocs) {
        core::SessionBuildOptions options;
        options.useArena = use_arena;
        const AllocSnapshot start = allocNow();
        ms = timedMs([&] {
            for (int i = 0; i < iterations; ++i) {
                trace::Trace t = trace::deserializeTrace(f.bytes);
                core::Session s =
                    core::Session::fromTrace(std::move(t), options);
                benchmark::DoNotOptimize(s.episodes().data());
            }
        });
        allocs = allocSince(start);
        allocs.count /= static_cast<std::uint64_t>(iterations);
        allocs.bytes /= static_cast<std::uint64_t>(iterations);
        ms /= iterations;
    };

    double arena_ms = 0.0;
    double heap_ms = 0.0;
    AllocSnapshot arena;
    AllocSnapshot heap;
    buildPass(true, arena_ms, arena);
    buildPass(false, heap_ms, heap);

    std::printf(
        "{\"bench\":\"session_build_ms\",\"arena_ms\":%.2f,"
        "\"heap_ms\":%.2f,\"arena_allocs\":%llu,"
        "\"heap_allocs\":%llu,\"arena_alloc_bytes\":%llu,"
        "\"heap_alloc_bytes\":%llu,\"alloc_count_speedup\":%.2f}\n",
        arena_ms, heap_ms,
        static_cast<unsigned long long>(arena.count),
        static_cast<unsigned long long>(heap.count),
        static_cast<unsigned long long>(arena.bytes),
        static_cast<unsigned long long>(heap.bytes),
        arena.count > 0 ? static_cast<double>(heap.count) /
                              static_cast<double>(arena.count)
                        : 0.0);
    std::fflush(stdout);
}

/**
 * Within-session sharded analysis vs the serial suite as one JSON
 * line. On a single-core container the wall-clock ratio hovers
 * around 1; the line also records the shard count so multi-core
 * runs can attribute their speedup.
 */
void
reportShardSpeedup(const Fixture &f, std::uint32_t jobs,
                   int iterations)
{
    if (jobs == 0)
        jobs = app::defaultJobs();
    const DurationNs threshold = msToNs(100);

    const double serial_ms = timedMs([&] {
        for (int i = 0; i < iterations; ++i) {
            const engine::SessionAnalysis analysis =
                engine::analyzeSession(f.session, threshold);
            benchmark::DoNotOptimize(analysis.patternKeys.data());
        }
    }) / iterations;

    engine::ThreadPool pool(jobs);
    const std::size_t shards =
        engine::episodeShards(
            f.episodes,
            engine::shardCountFor(pool.workerCount(), f.episodes))
            .size();
    const double parallel_ms = timedMs([&] {
        for (int i = 0; i < iterations; ++i) {
            const engine::SessionAnalysis analysis =
                engine::analyzeSessionParallel(f.session, threshold,
                                               pool);
            benchmark::DoNotOptimize(analysis.patternKeys.data());
        }
    }) / iterations;

    std::printf(
        "{\"bench\":\"episode_shard_speedup\",\"episodes\":%llu,"
        "\"serial_ms\":%.2f,\"parallel_ms\":%.2f,\"jobs\":%u,"
        "\"shards\":%llu,\"speedup\":%.2f}\n",
        static_cast<unsigned long long>(f.episodes), serial_ms,
        parallel_ms, jobs,
        static_cast<unsigned long long>(shards),
        parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    std::fflush(stdout);
}

/** One full study pass (simulate + analyze) on @p jobs workers. */
double
timedStudyPass(app::StudyConfig config, std::uint32_t jobs)
{
    std::filesystem::remove_all(config.cacheDir);
    config.jobs = jobs;
    app::Study study(config);
    const auto start = std::chrono::steady_clock::now();
    study.ensureTraces();
    const auto analyses = bench::analyzeStudy(study);
    benchmark::DoNotOptimize(analyses.size());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

/**
 * Serial vs parallel wall time of a full quick study, reported as
 * one JSON line. The cache directory is private to this comparison
 * and cleared before each pass so both sides do the same work.
 */
void
reportStudySpeedup(std::uint32_t jobs)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.cacheDir = "lagalyzer-cache-perf-compare";
    if (jobs == 0)
        jobs = app::defaultJobs();

    const double serial_s = timedStudyPass(config, 1);
    const double parallel_s = timedStudyPass(config, jobs);
    std::filesystem::remove_all(config.cacheDir);

    std::printf("{\"bench\":\"study_speedup\","
                "\"workload\":\"quickStudy(5)\","
                "\"serial_s\":%.3f,\"parallel_s\":%.3f,"
                "\"jobs\":%u,\"speedup\":%.2f}\n",
                serial_s, parallel_s, jobs,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
    std::fflush(stdout);
}

/**
 * Incremental aggregation vs full recompute on a warm analysis
 * cache, as one JSON line. A cold pass populates a private trace +
 * analysis cache; a recompute pass (`--no-incremental` semantics)
 * decodes and re-analyzes every session; a warm incremental pass
 * must answer purely from `.ares` entries. The trace decoder's byte
 * counter is sampled around the warm pass and reported — under
 * `--incremental-smoke` a nonzero delta fails the run, proving the
 * decoder never touched a trace on the warm path. Returns false on
 * that violation.
 */
bool
reportIncrementalSpeedup(std::uint32_t jobs, bool enforce)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.cacheDir = "lagalyzer-cache-perf-incremental";
    config.jobs = jobs;
    config.incremental = true;
    std::filesystem::remove_all(config.cacheDir);

    // Cold: simulate + analyze, populating both caches.
    const double cold_s = timedMs([&] {
        app::Study study(config);
        const auto analyses = bench::analyzeStudy(study);
        benchmark::DoNotOptimize(analyses.size());
    }) / 1000.0;

    // Recompute: warm trace cache, but every session decoded and
    // re-analyzed — what every run paid before the incremental path.
    app::StudyConfig full = config;
    full.incremental = false;
    const double recompute_s = timedMs([&] {
        app::Study study(full);
        const auto analyses = bench::analyzeStudy(study);
        benchmark::DoNotOptimize(analyses.size());
    }) / 1000.0;

    // Warm incremental: .ares entries only; the decoder must idle.
    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    const std::uint64_t decode_before =
        before.counterValue("trace.decode.bytes");
    const double warm_s = timedMs([&] {
        app::Study study(config);
        const auto analyses = bench::analyzeStudy(study);
        benchmark::DoNotOptimize(analyses.size());
    }) / 1000.0;
    const obs::MetricsSnapshot after = obs::metrics().snapshot();
    const std::uint64_t decoded_bytes =
        after.counterValue("trace.decode.bytes") - decode_before;
    const std::uint64_t from_cache =
        after.counterValue("cache.aggregate.cached") -
        before.counterValue("cache.aggregate.cached");
    const std::uint64_t recomputed =
        after.counterValue("cache.aggregate.recomputed") -
        before.counterValue("cache.aggregate.recomputed");
    std::filesystem::remove_all(config.cacheDir);

    std::printf(
        "{\"bench\":\"incremental_speedup\","
        "\"workload\":\"quickStudy(5)\",\"cold_s\":%.3f,"
        "\"recompute_s\":%.3f,\"warm_s\":%.3f,"
        "\"warm_decode_bytes\":%llu,\"warm_from_cache\":%llu,"
        "\"warm_recomputed\":%llu,\"speedup\":%.2f}\n",
        cold_s, recompute_s, warm_s,
        static_cast<unsigned long long>(decoded_bytes),
        static_cast<unsigned long long>(from_cache),
        static_cast<unsigned long long>(recomputed),
        warm_s > 0.0 ? recompute_s / warm_s : 0.0);
    std::fflush(stdout);

    if (enforce && (decoded_bytes != 0 || recomputed != 0)) {
        std::fprintf(stderr,
                     "incremental smoke FAILED: warm pass decoded "
                     "%llu trace byte(s) and recomputed %llu "
                     "session(s); expected a pure cache aggregation\n",
                     static_cast<unsigned long long>(decoded_bytes),
                     static_cast<unsigned long long>(recomputed));
        return false;
    }
    return true;
}

/**
 * Live-ingest throughput as one JSON line. Streams the fixture
 * trace into an IngestPipeline in chunked appends, cutting an epoch
 * after every chunk — the `lagd --follow` hot loop without sockets.
 * `ingest_mlines_per_s` is decoded records per wall second (in
 * millions), the streaming analogue of the batch decode line above;
 * `ingest_lag_ms` is the worst epoch turnaround (poll + reanalyze +
 * publish), i.e. how stale a live dashboard can observe the store.
 */
void
reportIngestThroughput(const Fixture &f, std::uint32_t jobs,
                       int chunks)
{
    if (jobs == 0)
        jobs = app::defaultJobs();
    const std::string path = "lagalyzer-perf-ingest.lag";
    std::filesystem::remove(path);

    engine::ThreadPool pool(jobs);
    engine::IngestOptions options;
    std::size_t published = 0;
    engine::IngestPipeline pipeline(
        pool, options,
        [&published](const engine::IngestUpdate &) { ++published; });
    pipeline.addSource(path);

    const std::size_t chunk =
        f.bytes.size() / static_cast<std::size_t>(chunks) + 1;
    double max_epoch_ms = 0.0;
    const double total_ms = timedMs([&] {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        std::size_t offset = 0;
        while (offset < f.bytes.size()) {
            const std::size_t n =
                std::min(chunk, f.bytes.size() - offset);
            out.write(f.bytes.data() + offset,
                      static_cast<std::streamsize>(n));
            out.flush();
            offset += n;
            const double epoch_ms =
                timedMs([&] { pipeline.runEpoch(); });
            max_epoch_ms = std::max(max_epoch_ms, epoch_ms);
        }
        while (!pipeline.allComplete()) {
            const double epoch_ms =
                timedMs([&] { pipeline.runEpoch(); });
            max_epoch_ms = std::max(max_epoch_ms, epoch_ms);
        }
    });
    std::filesystem::remove(path);

    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    const std::uint64_t records =
        snap.counterValue("ingest.records");
    const double total_s = total_ms / 1000.0;
    std::printf(
        "{\"bench\":\"ingest\",\"file_mb\":%.2f,\"records\":%llu,"
        "\"epochs\":%llu,\"published\":%llu,"
        "\"ingest_mlines_per_s\":%.3f,\"ingest_lag_ms\":%.2f,"
        "\"jobs\":%u}\n",
        static_cast<double>(f.bytes.size()) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(records),
        static_cast<unsigned long long>(pipeline.epoch()),
        static_cast<unsigned long long>(published),
        total_s > 0.0
            ? static_cast<double>(records) / total_s / 1e6
            : 0.0,
        max_epoch_ms, jobs);
    std::fflush(stdout);
}

/**
 * End-to-end lagd query latency as one JSON line. Boots an
 * in-process HotStore + HttpServer over a tiny private study on an
 * ephemeral port, then measures @p requests client-side round trips
 * (TCP connect + request + response) cycling through the endpoint
 * mix a dashboard would hit. p50/p99 are over individual requests.
 */
void
reportQueryLatency(std::uint32_t jobs, int requests)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(3);
    config.cacheDir = "lagalyzer-cache-perf-serve";
    config.jobs = jobs;
    config.apps.resize(3);
    config.sessionsPerApp = 2;
    std::filesystem::remove_all(config.cacheDir);

    engine::ThreadPool pool(config.jobs);
    serve::HotStore store(config, pool);
    store.load();
    serve::Router router;
    store.installRoutes(router);
    serve::HttpServer server(serve::ServerConfig{}, // port 0
                             std::move(router), pool);
    server.start();

    serve::ClientOptions client;
    client.port = server.port();
    const std::string &app_name = config.apps[0].name;
    const std::string targets[] = {
        "/healthz",
        "/v1/apps",
        "/v1/patterns?app=" + app_name +
            "&sort=total_lag&limit=10",
        "/v1/cdf?app=" + app_name,
        "/v1/figures/table3",
    };

    std::vector<double> latencies_us;
    latencies_us.reserve(static_cast<std::size_t>(requests));
    bool all_ok = true;
    for (int i = 0; i < requests; ++i) {
        const std::string &target =
            targets[static_cast<std::size_t>(i) % std::size(targets)];
        const auto start = std::chrono::steady_clock::now();
        const serve::ClientResult result =
            serve::httpRequest(client, "GET", target);
        const std::chrono::duration<double, std::micro> elapsed =
            std::chrono::steady_clock::now() - start;
        latencies_us.push_back(elapsed.count());
        all_ok = all_ok && result.ok && result.status == 200;
    }
    server.stop();
    std::filesystem::remove_all(config.cacheDir);

    std::sort(latencies_us.begin(), latencies_us.end());
    const auto percentile = [&](double p) {
        const auto rank = static_cast<std::size_t>(
            p * static_cast<double>(latencies_us.size() - 1));
        return latencies_us[rank];
    };
    std::printf("{\"bench\":\"query_latency\",\"requests\":%d,"
                "\"all_ok\":%s,\"query_p50_us\":%.1f,"
                "\"query_p99_us\":%.1f}\n",
                requests, all_ok ? "true" : "false",
                percentile(0.50), percentile(0.99));
    std::fflush(stdout);
}

/**
 * Engine self-observation totals for the whole bench run, as one
 * JSON line: how well the pool balanced (steal ratio), how much the
 * result cache saved (hit rate), the deepest queue backlog, and the
 * decode volume behind the numbers above. Reads the always-on
 * metrics registry (src/obs), so it reflects every pass that ran
 * before it.
 */
void
reportObsMetrics()
{
    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    const std::uint64_t steals =
        snap.counterValue("pool.steal.success");
    const std::uint64_t failed_steals =
        snap.counterValue("pool.steal.fail");
    const std::uint64_t tasks = snap.counterValue("pool.task.count");
    const std::uint64_t hits = snap.counterValue("cache.hit");
    const std::uint64_t misses = snap.counterValue("cache.miss");
    const double steal_ratio =
        tasks > 0 ? static_cast<double>(steals) /
                        static_cast<double>(tasks)
                  : 0.0;
    const double hit_rate =
        hits + misses > 0 ? static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;

    std::printf(
        "{\"bench\":\"obs_pipeline\",\"pool_tasks\":%llu,"
        "\"pool_steals\":%llu,\"pool_failed_steals\":%llu,"
        "\"pool_steal_ratio\":%.3f,\"queue_depth_max\":%lld,"
        "\"cache_hits\":%llu,\"cache_misses\":%llu,"
        "\"cache_hit_rate\":%.3f,\"decode_count\":%llu,"
        "\"decode_bytes\":%llu}\n",
        static_cast<unsigned long long>(tasks),
        static_cast<unsigned long long>(steals),
        static_cast<unsigned long long>(failed_steals), steal_ratio,
        static_cast<long long>(snap.gaugeMax("pool.queue.depth")),
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses), hit_rate,
        static_cast<unsigned long long>(
            snap.counterValue("trace.decode.count")),
        static_cast<unsigned long long>(
            snap.counterValue("trace.decode.bytes")));
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t jobs = lag::app::parseJobsOption(argc, argv);

    bool smoke = false;
    bool incremental_smoke = false;
    {
        int out = 1;
        for (int in = 1; in < argc; ++in) {
            if (std::string_view(argv[in]) == "--smoke")
                smoke = true;
            else if (std::string_view(argv[in]) ==
                     "--incremental-smoke")
                incremental_smoke = true;
            else
                argv[out++] = argv[in];
        }
        argc = out;
    }

    if (incremental_smoke) {
        // CI gate: the warm pass of a twice-run study must never
        // touch the trace decoder. Exits nonzero when it does.
        return reportIncrementalSpeedup(jobs, true) ? 0 : 1;
    }

    if (smoke) {
        // CI smoke (`ctest -L perf`): just the pipeline JSON lines,
        // few iterations, no study simulation, no microbenchmarks.
        const Fixture &f = Fixture::get();
        reportDecodeThroughput(f, 3);
        reportSessionBuild(f, 3);
        reportShardSpeedup(f, jobs, 3);
        reportIngestThroughput(f, jobs, 16);
        reportQueryLatency(jobs, 40);
        reportObsMetrics();
        return 0;
    }

    const char *skip = std::getenv("LAGALYZER_SKIP_SPEEDUP");
    if (skip == nullptr || skip[0] == '\0' || skip[0] == '0') {
        reportStudySpeedup(jobs);
        reportIncrementalSpeedup(jobs, false);
    }

    const Fixture &f = Fixture::get();
    reportDecodeThroughput(f, 10);
    reportSessionBuild(f, 10);
    reportShardSpeedup(f, jobs, 10);
    reportIngestThroughput(f, jobs, 64);
    reportQueryLatency(jobs, 200);
    reportObsMetrics();

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
