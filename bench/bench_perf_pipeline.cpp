/**
 * @file
 * Performance of the analysis pipeline (google-benchmark).
 *
 * The paper reports: "The fully automated analysis of about 7.5
 * hours of interactive sessions (roughly 250'000 episodes) took 15
 * minutes (including the generation of MATLAB graphs)" — about 280
 * episodes analyzed per second. These microbenchmarks measure the
 * stages of our pipeline (trace decode, session build, pattern
 * mining, the full analysis suite, sketch rendering) and report
 * episodes/second for comparison.
 *
 * Before the microbenchmarks, main() times one full quick study
 * end-to-end twice — once on a single worker, once on the engine's
 * default (or `--jobs N`) worker count — and prints one JSON line
 * comparing serial and parallel wall time. Set
 * LAGALYZER_SKIP_SPEEDUP=1 to skip that (it simulates traces).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "app/study.hh"
#include "study_util.hh"
#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "core/pattern_stats.hh"
#include "core/triggers.hh"
#include "trace/io.hh"
#include "viz/sketch.hh"

namespace
{

using namespace lag;

/** One cached 60 s GanttProject session (trace bytes + session). */
struct Fixture
{
    std::string bytes;
    core::Session session;
    std::size_t episodes;

    Fixture()
        : bytes([] {
              app::AppParams params =
                  app::catalogApp("GanttProject");
              params.sessionLength = secToNs(60);
              return trace::serializeTrace(
                  app::runSession(params, 0).trace);
          }()),
          session(core::Session::fromTrace(
              trace::deserializeTrace(bytes))),
          episodes(session.episodes().size())
    {
    }

    static const Fixture &
    get()
    {
        static const Fixture fixture;
        return fixture;
    }
};

void
BM_TraceDecode(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    for (auto _ : state) {
        trace::Trace t = trace::deserializeTrace(f.bytes);
        benchmark::DoNotOptimize(t.events.data());
    }
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceDecode)->Unit(benchmark::kMillisecond);

void
BM_SessionBuild(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    for (auto _ : state) {
        state.PauseTiming();
        trace::Trace t = trace::deserializeTrace(f.bytes);
        state.ResumeTiming();
        core::Session s = core::Session::fromTrace(std::move(t));
        benchmark::DoNotOptimize(s.episodes().data());
    }
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionBuild)->Unit(benchmark::kMillisecond);

void
BM_PatternMining(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    const core::PatternMiner miner(msToNs(100));
    for (auto _ : state) {
        core::PatternSet set = miner.mine(f.session);
        benchmark::DoNotOptimize(set.patterns.data());
    }
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PatternMining)->Unit(benchmark::kMillisecond);

void
BM_FullAnalysisSuite(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    const core::PatternMiner miner(msToNs(100));
    for (auto _ : state) {
        const core::PatternSet set = miner.mine(f.session);
        const auto overview =
            core::computeOverview(f.session, set, msToNs(100));
        const auto triggers =
            core::analyzeTriggers(f.session, msToNs(100));
        const auto location =
            core::analyzeLocation(f.session, msToNs(100));
        const auto concurrency =
            core::analyzeConcurrency(f.session, msToNs(100));
        const auto states =
            core::analyzeGuiStates(f.session, msToNs(100));
        const auto occurrence = core::occurrenceShares(set);
        const auto cdf = core::patternCdf(set);
        benchmark::DoNotOptimize(overview.tracedCount);
        benchmark::DoNotOptimize(triggers.all.input);
        benchmark::DoNotOptimize(location.all.gcFraction);
        benchmark::DoNotOptimize(concurrency.meanRunnableAll);
        benchmark::DoNotOptimize(states.all.blocked);
        benchmark::DoNotOptimize(occurrence.always);
        benchmark::DoNotOptimize(cdf.size());
    }
    // The paper's pipeline: ~250k episodes in 15 min = ~280/s.
    state.counters["episodes/s"] = benchmark::Counter(
        static_cast<double>(f.episodes * state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["paper_episodes/s"] = 280;
}
BENCHMARK(BM_FullAnalysisSuite)->Unit(benchmark::kMillisecond);

void
BM_SketchRender(benchmark::State &state)
{
    const Fixture &f = Fixture::get();
    // Slowest episode, like the examples render.
    const core::Episode *slowest = &f.session.episodes()[0];
    for (const auto &episode : f.session.episodes()) {
        if (episode.duration() > slowest->duration())
            slowest = &episode;
    }
    for (auto _ : state) {
        const viz::SvgDocument doc =
            viz::renderEpisodeSketch(f.session, *slowest);
        benchmark::DoNotOptimize(doc.finish().size());
    }
}
BENCHMARK(BM_SketchRender)->Unit(benchmark::kMillisecond);

void
BM_SessionSimulation(benchmark::State &state)
{
    // Measurement-side throughput: simulate 10 s of CrosswordSage.
    app::AppParams params = app::catalogApp("CrosswordSage");
    params.sessionLength = secToNs(10);
    for (auto _ : state) {
        auto result = app::runSession(
            params, static_cast<std::uint32_t>(state.iterations()));
        benchmark::DoNotOptimize(result.trace.events.data());
    }
    state.counters["sim_s/s"] = benchmark::Counter(
        10.0 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionSimulation)->Unit(benchmark::kMillisecond);

/** One full study pass (simulate + analyze) on @p jobs workers. */
double
timedStudyPass(app::StudyConfig config, std::uint32_t jobs)
{
    std::filesystem::remove_all(config.cacheDir);
    config.jobs = jobs;
    app::Study study(config);
    const auto start = std::chrono::steady_clock::now();
    study.ensureTraces();
    const auto analyses = bench::analyzeStudy(study);
    benchmark::DoNotOptimize(analyses.size());
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

/**
 * Serial vs parallel wall time of a full quick study, reported as
 * one JSON line. The cache directory is private to this comparison
 * and cleared before each pass so both sides do the same work.
 */
void
reportStudySpeedup(std::uint32_t jobs)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.cacheDir = "lagalyzer-cache-perf-compare";
    if (jobs == 0)
        jobs = app::defaultJobs();

    const double serial_s = timedStudyPass(config, 1);
    const double parallel_s = timedStudyPass(config, jobs);
    std::filesystem::remove_all(config.cacheDir);

    std::printf("{\"bench\":\"study_speedup\","
                "\"workload\":\"quickStudy(5)\","
                "\"serial_s\":%.3f,\"parallel_s\":%.3f,"
                "\"jobs\":%u,\"speedup\":%.2f}\n",
                serial_s, parallel_s, jobs,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t jobs = lag::app::parseJobsOption(argc, argv);

    const char *skip = std::getenv("LAGALYZER_SKIP_SPEEDUP");
    if (skip == nullptr || skip[0] == '\0' || skip[0] == '0')
        reportStudySpeedup(jobs);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
