/**
 * @file
 * Reproduces Figure 4: long-latency episodes in patterns — the share
 * of each application's patterns that are always, sometimes, once,
 * or never perceptible. Paper headlines: GanttProject 57% always;
 * FreeMind 92% never; on average 96% of patterns are consistently
 * slow or fast and 22% are at least once perceptible.
 */

#include <iostream>

#include "paper_data.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/charts.hh"
#include "viz/palette.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("", report::Align::Left);
    table.addColumn("always", report::Align::Right);
    table.addColumn("sometimes", report::Align::Right);
    table.addColumn("once", report::Align::Right);
    table.addColumn("never", report::Align::Right);

    viz::StackedBarChart chart(
        "Figure 4: long-latency episodes in patterns", "Patterns [%]",
        100.0);
    chart.addLegend("Always", std::string(viz::occurrenceColor(0)));
    chart.addLegend("Sometimes", std::string(viz::occurrenceColor(1)));
    chart.addLegend("Once", std::string(viz::occurrenceColor(2)));
    chart.addLegend("Never", std::string(viz::occurrenceColor(3)));

    double consistent = 0.0;
    double ever_perceptible = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &occ = apps[i].occurrence;
        const auto &paper = kPaperFig4[i];
        table.addRow({apps[i].name, "paper",
                      std::to_string(paper.always) + "%",
                      std::to_string(paper.sometimes) + "%",
                      std::to_string(paper.once) + "%",
                      std::to_string(paper.never) + "%"});
        table.addRow({"", "ours", formatPercent(occ.always, 0),
                      formatPercent(occ.sometimes, 0),
                      formatPercent(occ.once, 0),
                      formatPercent(occ.never, 0)});
        chart.addRow(viz::BarRow{
            apps[i].name,
            {{occ.always * 100.0,
              std::string(viz::occurrenceColor(0))},
             {occ.sometimes * 100.0,
              std::string(viz::occurrenceColor(1))},
             {occ.once * 100.0, std::string(viz::occurrenceColor(2))},
             {occ.never * 100.0,
              std::string(viz::occurrenceColor(3))}}});
        consistent += occ.always + occ.never;
        ever_perceptible += occ.always + occ.sometimes + occ.once;
    }

    std::cout << "Figure 4: occurrence classes of patterns (values "
                 "marked 'paper' partially read off the chart; "
                 "stated values exact)\n\n"
              << table.render() << '\n';
    const auto n = static_cast<double>(apps.size());
    std::cout << "Consistently slow or fast — paper: 96%; measured: "
              << formatPercent(consistent / n, 0) << '\n';
    std::cout << "At least once perceptible — paper: 22%; measured: "
              << formatPercent(ever_perceptible / n, 0) << '\n';

    const std::string path = figurePath("fig4_occurrence.svg");
    chart.render().writeFile(path);
    std::cout << "SVG written to " << path << '\n';
    return 0;
}
