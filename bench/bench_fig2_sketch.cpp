/**
 * @file
 * Reproduces Figure 2: an episode sketch from GanttProject showing
 * deeply nested paint intervals — a paint request to the main
 * window recursing through the component tree (paper §IV.A:
 * "GanttProject has a complex, deeply nested structure of GUI
 * components").
 *
 * The episode is taken from a real session of the GanttProject
 * model: the deepest perceptible episode of session 0.
 */

#include <iostream>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/session.hh"
#include "util/logging.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/sketch.hh"

int
main()
{
    using namespace lag;

    app::AppParams params = app::catalogApp("GanttProject");
    params.sessionLength = secToNs(60);
    app::SessionRunResult run = app::runSession(params, 0);
    const core::Session session =
        core::Session::fromTrace(std::move(run.trace));

    // Pick the deepest perceptible episode.
    const core::Episode *chosen = nullptr;
    std::size_t best_depth = 0;
    for (const auto &episode : session.episodes()) {
        if (episode.duration() < msToNs(100))
            continue;
        const std::size_t depth =
            session.episodeRoot(episode).depth();
        if (depth > best_depth) {
            best_depth = depth;
            chosen = &episode;
        }
    }
    if (chosen == nullptr)
        fatal("no perceptible GanttProject episode found");

    const auto &root = session.episodeRoot(*chosen);
    std::cout << "Figure 2: GanttProject episode sketch (paper: "
                 "average Descs 18, Depth 12 across patterns)\n\n"
              << "Chosen episode: duration "
              << formatDurationNs(chosen->duration())
              << ", interval-tree depth " << best_depth
              << ", descendants " << root.descendantCount() << "\n";

    viz::SketchOptions options;
    options.title = "Figure 2: GanttProject deep paint nesting";
    const std::string path = bench::figurePath("fig2_sketch.svg");
    viz::renderEpisodeSketch(session, *chosen, options).writeFile(path);
    std::cout << "SVG written to " << path << "\n\n";
    std::cout << viz::renderAsciiSketch(session, *chosen, 100);
    return 0;
}
