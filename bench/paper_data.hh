/**
 * @file
 * Reference values reported in the paper, used by the bench
 * harnesses to print paper-vs-measured comparisons.
 *
 * Table III values are copied verbatim from the paper. Figure
 * values marked "approx" are read off the charts (the paper gives
 * no tables for Figures 4-8) with the text's explicitly stated
 * numbers — e.g. "98% of JMol's perceptible episodes are output
 * episodes" — taking precedence.
 */

#ifndef LAG_BENCH_PAPER_DATA_HH
#define LAG_BENCH_PAPER_DATA_HH

#include <array>
#include <cstdint>

namespace lag::bench
{

/** One row of the paper's Table III. */
struct PaperOverviewRow
{
    const char *name;
    int e2eSeconds;
    int inEpsPercent;
    std::uint64_t shortCount;
    std::uint64_t tracedCount;
    std::uint64_t perceptibleCount;
    int longPerMin;
    int distinctPatterns;
    std::uint64_t coveredEpisodes;
    int oneEpPercent;
    int descs;
    int depth;
};

/** Table III, including the final Mean row. */
inline constexpr std::array<PaperOverviewRow, 15> kPaperTable3 = {{
    {"Arabeske", 461, 25, 323605, 6278, 177, 95, 427, 5456, 62, 7, 5},
    {"ArgoUML", 630, 35, 196247, 9066, 265, 75, 1292, 8011, 66, 10, 5},
    {"CrosswordSage", 367, 8, 109547, 1173, 36, 80, 119, 1068, 46, 5, 4},
    {"Euclide", 614, 35, 109572, 9676, 96, 26, 202, 9053, 35, 5, 4},
    {"FindBugs", 599, 21, 39254, 6336, 120, 56, 245, 6128, 44, 6, 4},
    {"FreeMind", 524, 11, 325135, 3462, 26, 30, 246, 3326, 55, 7, 5},
    {"GanttProject", 523, 47, 126940, 2564, 706, 168, 803, 2373, 70, 18,
     12},
    {"JEdit", 502, 9, 117615, 2271, 24, 33, 150, 1610, 50, 5, 4},
    {"JFreeChart", 250, 26, 77720, 1658, 175, 164, 114, 1581, 44, 6, 5},
    {"JHotDraw", 421, 41, 246836, 5980, 338, 114, 454, 5675, 70, 8, 5},
    {"Jmol", 449, 46, 110929, 3197, 604, 180, 187, 3062, 52, 7, 5},
    {"Laoe", 460, 47, 1241198, 3174, 61, 18, 226, 3007, 58, 8, 5},
    {"NetBeans", 398, 27, 305177, 3120, 149, 82, 642, 2911, 66, 10, 5},
    {"SwingSet", 384, 20, 219569, 4310, 70, 57, 444, 4152, 59, 9, 6},
    {"Mean", 470, 28, 253525, 4447, 203, 84, 396, 4101, 56, 8, 5},
}};

/** Figure 5 (perceptible episodes): trigger shares in percent,
 * approx from the chart; text-stated values exact. */
struct PaperTriggerRow
{
    const char *name;
    int input;
    int output;
    int async;
    int unspecified;
};

inline constexpr std::array<PaperTriggerRow, 15> kPaperFig5Perceptible =
    {{
        {"Arabeske", 20, 18, 5, 57},   // 57% unspecified stated
        {"ArgoUML", 78, 16, 2, 4},     // 78% input stated
        {"CrosswordSage", 55, 35, 2, 8},
        {"Euclide", 70, 22, 2, 6},
        {"FindBugs", 30, 20, 42, 8},   // 42% async stated
        {"FreeMind", 50, 40, 2, 8},
        {"GanttProject", 25, 70, 2, 3},
        {"JEdit", 60, 30, 2, 8},
        {"JFreeChart", 25, 70, 2, 3},
        {"JHotDraw", 45, 50, 2, 3},
        {"Jmol", 1, 98, 0, 1},         // 98% output stated
        {"Laoe", 50, 42, 2, 6},
        {"NetBeans", 45, 40, 10, 5},
        {"SwingSet", 40, 52, 3, 5},
        {"Mean", 40, 47, 7, 6},        // means stated in the text
    }};

/** Figure 6 (perceptible): location shares in percent. The app/lib
 * pair and the GC/native pair are independent stacks. */
struct PaperLocationRow
{
    const char *name;
    int library;
    int app;
    int gc;
    int native;
};

inline constexpr std::array<PaperLocationRow, 15> kPaperFig6Perceptible =
    {{
        {"Arabeske", 55, 45, 60, 3},   // GC ~60% stated
        {"ArgoUML", 55, 45, 26, 4},    // GC 26% stated
        {"CrosswordSage", 60, 40, 5, 4},
        {"Euclide", 73, 27, 4, 3},     // 73% library stated
        {"FindBugs", 50, 50, 10, 4},
        {"FreeMind", 60, 40, 8, 4},
        {"GanttProject", 50, 50, 6, 6},
        {"JEdit", 52, 48, 8, 4},
        {"JFreeChart", 50, 50, 8, 24}, // 24% native stated
        {"JHotDraw", 4, 96, 6, 4},     // 96% app stated
        {"Jmol", 35, 65, 8, 6},
        {"Laoe", 45, 55, 8, 5},
        {"NetBeans", 55, 45, 10, 5},
        {"SwingSet", 70, 30, 8, 5},
        {"Mean", 52, 48, 11, 5},       // means stated in the text
    }};

/** Figure 7: mean runnable threads (approx; >1 only for Arabeske,
 * FindBugs, NetBeans during perceptible episodes — stated). */
struct PaperConcurrencyRow
{
    const char *name;
    double all;
    double perceptible;
};

inline constexpr std::array<PaperConcurrencyRow, 15> kPaperFig7 = {{
    {"Arabeske", 1.35, 1.30},
    {"ArgoUML", 1.10, 0.95},
    {"CrosswordSage", 1.05, 0.90},
    {"Euclide", 1.05, 0.45},
    {"FindBugs", 1.60, 1.90},
    {"FreeMind", 1.10, 0.85},
    {"GanttProject", 1.10, 1.00},
    {"JEdit", 1.10, 0.70},
    {"JFreeChart", 1.10, 0.95},
    {"JHotDraw", 1.10, 1.00},
    {"Jmol", 1.10, 1.00},
    {"Laoe", 1.15, 0.95},
    {"NetBeans", 1.40, 1.30},
    {"SwingSet", 1.10, 0.90},
    {"Mean", 1.20, 1.00}, // "only 1.2 threads runnable on average"
}};

/** Figure 8 (perceptible): GUI-thread state shares in percent
 * (remainder runnable). jEdit >25% wait, FreeMind 12% blocked,
 * Euclide >60% sleep — stated. */
struct PaperStateRow
{
    const char *name;
    int blocked;
    int waiting;
    int sleeping;
};

inline constexpr std::array<PaperStateRow, 15> kPaperFig8Perceptible = {{
    {"Arabeske", 1, 3, 1},
    {"ArgoUML", 1, 2, 1},
    {"CrosswordSage", 1, 2, 2},
    {"Euclide", 0, 1, 62},
    {"FindBugs", 2, 5, 1},
    {"FreeMind", 12, 2, 1},
    {"GanttProject", 1, 1, 0},
    {"JEdit", 1, 26, 2},
    {"JFreeChart", 1, 2, 1},
    {"JHotDraw", 0, 1, 0},
    {"Jmol", 0, 1, 0},
    {"Laoe", 1, 2, 2},
    {"NetBeans", 2, 4, 1},
    {"SwingSet", 1, 2, 3},
    {"Mean", 2, 4, 5},
}};

/** Figure 4: occurrence-class shares of patterns in percent
 * (GanttProject 57% always, FreeMind 92% never — stated; "96% of
 * patterns are consistently slow or fast" and "22% are at least
 * once perceptible" on average — stated). */
struct PaperOccurrenceRow
{
    const char *name;
    int always;
    int sometimes;
    int once;
    int never;
};

inline constexpr std::array<PaperOccurrenceRow, 15> kPaperFig4 = {{
    {"Arabeske", 15, 3, 6, 76},
    {"ArgoUML", 10, 3, 7, 80},
    {"CrosswordSage", 10, 4, 8, 78},
    {"Euclide", 5, 2, 5, 88},
    {"FindBugs", 8, 4, 8, 80},
    {"FreeMind", 3, 1, 4, 92},     // 92% never stated
    {"GanttProject", 57, 6, 7, 30}, // 57% always stated
    {"JEdit", 6, 2, 6, 86},
    {"JFreeChart", 25, 8, 10, 57},
    {"JHotDraw", 22, 5, 8, 65},
    {"Jmol", 35, 8, 7, 50},
    {"Laoe", 8, 2, 6, 84},
    {"NetBeans", 12, 4, 10, 74},
    {"SwingSet", 8, 3, 7, 82},
    {"Mean", 16, 4, 7, 73},
}};

} // namespace lag::bench

#endif // LAG_BENCH_PAPER_DATA_HH
