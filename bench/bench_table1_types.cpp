/**
 * @file
 * Reproduces Table I: the interval-type taxonomy. Definitional, but
 * printed from the implementation so the taxonomy in code and paper
 * are verifiably the same.
 */

#include <iostream>

#include "core/interval.hh"
#include "report/table.hh"

int
main()
{
    using namespace lag;

    struct Row
    {
        core::IntervalType type;
        const char *description;
    };
    const Row rows[] = {
        {core::IntervalType::Dispatch,
         "Start to end of a given episode"},
        {core::IntervalType::Listener, "A listener notification call"},
        {core::IntervalType::Paint, "A graphics rendering operation"},
        {core::IntervalType::Native, "A JNI native call"},
        {core::IntervalType::Async,
         "The handling of an event posted in a background thread"},
        {core::IntervalType::Gc, "A garbage collection"},
    };

    report::TextTable table;
    table.addColumn("Name", report::Align::Left);
    table.addColumn("Description", report::Align::Left);
    for (const auto &row : rows) {
        table.addRow({core::intervalTypeName(row.type),
                      row.description});
    }
    std::cout << "Table I: interval types\n\n" << table.render();
    return 0;
}
