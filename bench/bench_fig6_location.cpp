/**
 * @file
 * Reproduces Figure 6: where episode time is spent — application vs
 * runtime library (from GUI-thread stack samples) and GC vs native
 * (from explicit intervals). Paper headlines (perceptible): 52%
 * library / 48% application on average, 11% GC, 5% native; Arabeske
 * ~60% GC; ArgoUML 26% GC; JFreeChart 24% native; Euclide 73%
 * library; JHotDraw 96% application.
 */

#include <iostream>

#include "paper_data.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/charts.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("", report::Align::Left);
    table.addColumn("library", report::Align::Right);
    table.addColumn("app", report::Align::Right);
    table.addColumn("GC", report::Align::Right);
    table.addColumn("native", report::Align::Right);
    table.addColumn("| all:GC", report::Align::Right);

    viz::StackedBarChart lib_chart(
        "Figure 6: perceptible episode time, library vs application",
        "Episodes >100ms - Time [%]", 100.0);
    lib_chart.addLegend("RT Library", "#4c78a8");
    lib_chart.addLegend("Application", "#59a14f");
    viz::StackedBarChart gc_chart(
        "Figure 6: perceptible episode time, GC and native",
        "Episodes >100ms - Time [%]", 100.0);
    gc_chart.addLegend("GC", "#d62728");
    gc_chart.addLegend("Native", "#e8743b");

    double mean_lib = 0.0;
    double mean_gc = 0.0;
    double mean_native = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &perc = apps[i].location.perceptible;
        const auto &all = apps[i].location.all;
        const auto &paper = kPaperFig6Perceptible[i];
        table.addRow({apps[i].name, "paper",
                      std::to_string(paper.library) + "%",
                      std::to_string(paper.app) + "%",
                      std::to_string(paper.gc) + "%",
                      std::to_string(paper.native) + "%", ""});
        table.addRow({"", "ours",
                      formatPercent(perc.libraryFraction, 0),
                      formatPercent(perc.appFraction, 0),
                      formatPercent(perc.gcFraction, 0),
                      formatPercent(perc.nativeFraction, 0),
                      formatPercent(all.gcFraction, 0)});
        lib_chart.addRow(viz::BarRow{
            apps[i].name,
            {{perc.libraryFraction * 100.0, "#4c78a8"},
             {perc.appFraction * 100.0, "#59a14f"}}});
        gc_chart.addRow(viz::BarRow{
            apps[i].name,
            {{perc.gcFraction * 100.0, "#d62728"},
             {perc.nativeFraction * 100.0, "#e8743b"}}});
        mean_lib += perc.libraryFraction / 14.0;
        mean_gc += perc.gcFraction / 14.0;
        mean_native += perc.nativeFraction / 14.0;
    }

    std::cout << "Figure 6: location of time in (perceptible) "
                 "episodes\n\n"
              << table.render() << '\n';
    std::cout << "Means — paper: 52% library, 11% GC, 5% native; "
                 "measured: "
              << formatPercent(mean_lib, 0) << " library, "
              << formatPercent(mean_gc, 0) << " GC, "
              << formatPercent(mean_native, 0) << " native\n";

    lib_chart.render().writeFile(figurePath("fig6_location_lib.svg"));
    gc_chart.render().writeFile(figurePath("fig6_location_gc.svg"));
    std::cout << "SVGs written to figures/fig6_location_*.svg\n";
    return 0;
}
