/**
 * @file
 * Reproduces Figure 1: the episode sketch of a 1705 ms paint episode
 * whose lag bottoms out in a native DrawLine call containing a
 * 466 ms garbage collection — and whose sample row goes quiet for
 * far longer than the GC interval, because the JVMTI-style sampler
 * stops at the safepoint and the GUI thread waits for a time slice
 * after the collection (paper §II.B).
 *
 * The episode is scripted through the full production pipeline
 * (simulated JVM -> LiLa -> trace -> Session -> sketch renderer);
 * the paper's interval durations are reproduced by construction and
 * printed next to the measured tree.
 */

#include <functional>
#include <iostream>

#include "core/session.hh"
#include "util/logging.hh"
#include "jvm/vm.hh"
#include "lila/agent.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/sketch.hh"

namespace
{

using namespace lag;

/** Paint-cascade node helper. */
jvm::ActivityNode
paintNode(const char *cls, DurationNs self)
{
    jvm::ActivityNode node;
    node.kind = jvm::ActivityKind::Paint;
    node.frame = jvm::Frame{cls, "paint"};
    node.selfCost = self;
    return node;
}

void
dumpTree(const core::Session &session, const core::IntervalNode &node,
         int depth)
{
    std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
              << core::intervalTypeName(node.type);
    if (node.classSym != 0) {
        std::cout << ' ' << session.symbol(node.classSym) << '.'
                  << session.symbol(node.methodSym);
    }
    std::cout << " — " << formatDurationNs(node.duration()) << '\n';
    for (const auto &child : node.children)
        dumpTree(session, child, depth + 1);
}

} // namespace

int
main()
{
    // --- Script the paper's episode ---------------------------------
    // Figure 1's numbers: episode 1705 ms; JLayeredPane.paint
    // 1533 ms; JToolBar.paint 1347 ms; native DrawLine 843 ms with a
    // 466 ms GC inside.
    jvm::JvmConfig config;
    config.seed = 20100328; // ISPASS 2010
    config.dispatchOverhead = 0;
    config.samplePeriod = msToNs(10);
    // Make the single collection exactly 466 ms and let the sampler
    // stay down for a while afterwards, as in the figure.
    config.heap.youngCapacityBytes = 32 << 20;
    config.heap.minorPauseMedian = msToNs(466);
    config.heap.minorPauseMin = msToNs(466);
    config.heap.minorPauseMax = msToNs(466);
    config.samplerResumeDelayMax = msToNs(260);
    config.postGcRescheduleJitterMax = msToNs(40);

    lila::LilaAgent agent(lila::LilaConfig{});
    jvm::Jvm vm(config, agent);
    vm.createEventDispatchThread();
    agent.beginSession("Figure1", 0, config.seed, config.samplePeriod,
                       0);
    vm.start();

    vm.eventQueue().scheduleAfter(secToNs(2), [&vm] {
        // Native DrawLine: 377 ms of native CPU; allocating twice
        // the young generation pulls the collection in mid-call, so
        // its traced span is 377 + 466 = 843 ms.
        jvm::ActivityNode native;
        native.kind = jvm::ActivityKind::Native;
        native.frame =
            jvm::Frame{"sun.java2d.loops.DrawLine", "DrawLine"};
        native.selfCost = msToNs(377);
        native.allocBytes = 64 << 20;

        jvm::ActivityNode toolbar =
            paintNode("javax.swing.JToolBar", msToNs(504));
        toolbar.children.push_back(std::move(native));
        jvm::ActivityNode layered =
            paintNode("javax.swing.JLayeredPane", msToNs(186));
        layered.children.push_back(std::move(toolbar));
        jvm::ActivityNode root_pane =
            paintNode("javax.swing.JRootPane", msToNs(150));
        root_pane.children.push_back(std::move(layered));
        jvm::ActivityNode frame =
            paintNode("javax.swing.JFrame", msToNs(22));
        frame.children.push_back(std::move(root_pane));

        jvm::GuiEvent event;
        event.handler = std::make_shared<const jvm::ActivityNode>(
            std::move(frame));
        vm.postGuiEvent(event);
    });
    vm.run(secToNs(6));

    const core::Session session =
        core::Session::fromTrace(agent.finishSession(vm.now()));
    if (session.episodes().empty())
        fatal("figure-1 episode was not recorded");
    const core::Episode &episode = session.episodes()[0];

    std::cout << "Figure 1: episode sketch (paper values: episode "
                 "1705 ms; JLayeredPane 1533 ms; JToolBar 1347 ms; "
                 "native DrawLine 843 ms; GC 466 ms)\n\n";
    std::cout << "Measured interval tree:\n";
    dumpTree(session, session.episodeRoot(episode), 0);

    // The sample gap around the GC must exceed the GC itself.
    TimeNs gap_start = episode.begin;
    TimeNs max_gap = 0;
    TimeNs gap_at = 0;
    for (std::size_t s = episode.firstSample; s < episode.lastSample;
         ++s) {
        const TimeNs t = session.samples()[s].time;
        if (t - gap_start > max_gap) {
            max_gap = t - gap_start;
            gap_at = gap_start;
        }
        gap_start = t;
    }
    std::cout << "\nLongest sample gap: " << formatDurationNs(max_gap)
              << " (GC interval: 466.0 ms) starting "
              << formatDurationNs(gap_at - episode.begin)
              << " into the episode — the sampler stops for longer "
                 "than the collection, as the paper observes.\n";

    viz::SketchOptions options;
    options.title = "Figure 1: episode sketch";
    const std::string path = lag::bench::figurePath("fig1_sketch.svg");
    viz::renderEpisodeSketch(session, episode, options).writeFile(path);
    std::cout << "\nSVG written to " << path << "\n\n";
    std::cout << viz::renderAsciiSketch(session, episode, 100);
    return 0;
}
