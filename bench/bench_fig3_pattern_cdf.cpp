/**
 * @file
 * Reproduces Figure 3: the cumulative distribution of episodes into
 * patterns, one series per application. The paper's headline: "the
 * patterns follow the Pareto rule: roughly 80% of episodes are
 * covered by only 20% of the patterns."
 */

#include <iostream>

#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/charts.hh"
#include "viz/palette.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("eps@10%pat", report::Align::Right);
    table.addColumn("eps@20%pat", report::Align::Right);
    table.addColumn("eps@50%pat", report::Align::Right);

    viz::CdfChart chart("Figure 3: cumulative distribution of "
                        "episodes into patterns",
                        "Patterns [%]", "Cumulative episodes [%]");

    double at20_total = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &cdf = apps[i].cdfEpisodesAtPatternPercent;
        table.addRow({apps[i].name, formatPercent(cdf[10]),
                      formatPercent(cdf[20]), formatPercent(cdf[50])});
        at20_total += cdf[20];

        viz::CdfSeries series;
        series.label = apps[i].name;
        series.color = std::string(viz::seriesColor(i));
        for (int x = 0; x <= 100; ++x) {
            series.points.emplace_back(
                static_cast<double>(x) / 100.0,
                cdf[static_cast<std::size_t>(x)]);
        }
        chart.addSeries(std::move(series));
    }

    std::cout << "Figure 3: episodes covered by the most populous "
                 "patterns (mean of 4 sessions)\n\n"
              << table.render() << '\n';
    std::cout << "Pareto check — paper: ~80% of episodes in 20% of "
                 "patterns; measured mean: "
              << formatPercent(at20_total /
                               static_cast<double>(apps.size()))
              << " of episodes in 20% of patterns\n";

    const std::string path = figurePath("fig3_pattern_cdf.svg");
    chart.render().writeFile(path);
    std::cout << "SVG written to " << path << '\n';
    return 0;
}
