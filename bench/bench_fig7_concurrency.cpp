/**
 * @file
 * Reproduces Figure 7: concurrency in episodes — the mean number of
 * runnable threads per in-episode stack sample. Paper headlines:
 * only ~1.2 threads runnable on average; below 1 for perceptible
 * episodes; above 1 during perceptible episodes only for Arabeske,
 * FindBugs and NetBeans (their background threads).
 */

#include <iostream>

#include "paper_data.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/charts.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("paper:all", report::Align::Right);
    table.addColumn("ours:all", report::Align::Right);
    table.addColumn("paper:perc", report::Align::Right);
    table.addColumn("ours:perc", report::Align::Right);

    viz::StackedBarChart all_chart(
        "Figure 7 (upper): mean runnable threads, all episodes",
        "Runnable threads", 2.0);
    viz::StackedBarChart perc_chart(
        "Figure 7 (lower): mean runnable threads, perceptible",
        "Runnable threads", 2.0);

    double mean_all = 0.0;
    std::vector<std::string> above_one;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &conc = apps[i].concurrency;
        const auto &paper = kPaperFig7[i];
        table.addRow({apps[i].name, formatDouble(paper.all, 2),
                      formatDouble(conc.meanRunnableAll, 2),
                      formatDouble(paper.perceptible, 2),
                      formatDouble(conc.meanRunnablePerceptible, 2)});
        all_chart.addRow(viz::BarRow{
            apps[i].name,
            {{conc.meanRunnableAll, "#4c78a8"}}});
        perc_chart.addRow(viz::BarRow{
            apps[i].name,
            {{conc.meanRunnablePerceptible, "#4c78a8"}}});
        mean_all += conc.meanRunnableAll / 14.0;
        if (conc.meanRunnablePerceptible > 1.05)
            above_one.push_back(apps[i].name);
    }

    std::cout << "Figure 7: concurrency in episodes (mean runnable "
                 "threads per sample; paper values approximate "
                 "except stated ones)\n\n"
              << table.render() << '\n';
    std::cout << "Mean over all episodes — paper: ~1.2; measured: "
              << formatDouble(mean_all, 2) << '\n';
    std::cout << "Above 1 during perceptible episodes — paper: "
                 "Arabeske, FindBugs, NetBeans; measured: "
              << join(above_one, ", ") << '\n';

    all_chart.render().writeFile(
        figurePath("fig7_concurrency_all.svg"));
    perc_chart.render().writeFile(
        figurePath("fig7_concurrency_perceptible.svg"));
    std::cout << "SVGs written to figures/fig7_concurrency_*.svg\n";
    return 0;
}
