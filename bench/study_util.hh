/**
 * @file
 * Shared plumbing for the bench harnesses.
 *
 * Every figure/table harness works from the same cached study
 * (simulated on first use); per-app results are averaged over the
 * four sessions exactly as the paper's Table III does. Set
 * LAGALYZER_QUICK=1 to run against the scaled-down study instead
 * (useful on slow machines; the shapes survive, absolute counts
 * shrink).
 *
 * Simulation, decoding and analysis fan out across the engine's
 * work-stealing pool; per-session analysis results are cached on
 * disk (engine::ResultCache) and, by default, cross-session
 * aggregates are answered incrementally from those `.ares` entries
 * (engine::aggregateFromCache) — a warm re-run never opens a trace
 * file. `--no-incremental` (or LAGALYZER_NO_INCREMENTAL=1) falls
 * back to decoding and re-analyzing every session. Worker count:
 * `--jobs N` on any harness command line, or LAGALYZER_JOBS=N in
 * the environment (default: one per hardware thread). Results are
 * byte-identical at any worker count and on either path.
 *
 * The analysis cache is garbage-collected after each run:
 * stale-fingerprint entries are always dropped, and
 * `--cache-max-bytes N[k|M|G]` / `--cache-max-age SECONDS` (or
 * LAGALYZER_CACHE_MAX_BYTES / LAGALYZER_CACHE_MAX_AGE, plain
 * numbers) bound what remains. Limits only affect the disk
 * footprint, never the computed results.
 */

#ifndef LAG_BENCH_STUDY_UTIL_HH
#define LAG_BENCH_STUDY_UTIL_HH

#include <functional>
#include <string>
#include <vector>

#include "app/study.hh"
#include "core/figure_json.hh"

namespace lag::bench
{

/**
 * The study configuration selected by the environment and, when a
 * harness passes its command line, by `--jobs N` (which overrides
 * LAGALYZER_JOBS; the option is stripped from argv).
 */
app::StudyConfig selectStudyConfig(int argc = 0,
                                   char **argv = nullptr);

/**
 * Everything analyses need from one app, session-averaged. Now the
 * shared core figure-input struct: the bench harnesses and lagd's
 * hot store consume the identical type, averaged by the identical
 * code (engine::averageSessionAnalyses), so their figure bytes
 * cannot drift apart.
 */
using AppAnalysis = core::AppFigureData;

/**
 * Run the full analysis pipeline for every app in the study,
 * averaging the four sessions per app. Loads lazily app-by-app to
 * bound memory. Progress lines go to stderr.
 */
std::vector<AppAnalysis> analyzeStudy(app::Study &study);

/** Average the per-app values of @p get over all apps. */
double meanOf(const std::vector<AppAnalysis> &apps,
              const std::function<double(const AppAnalysis &)> &get);

/** Create ./figures/ if needed and return the path of @p name. */
std::string figurePath(const std::string &name);

} // namespace lag::bench

#endif // LAG_BENCH_STUDY_UTIL_HH
