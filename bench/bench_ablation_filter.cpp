/**
 * @file
 * Ablation: the profiler's episode/interval filter (3 ms in the
 * paper).
 *
 * LiLa drops episodes and intervals shorter than 3 ms "to reduce
 * measurement overhead and perturbation" (§IV.A) and to keep traces
 * small enough to load ("LagAlyzer is an offline tool that needs to
 * load the complete session trace into memory", §V). This harness
 * re-records the same sessions with 1 / 3 / 10 ms filters and shows
 * the trade-off: trace size and traced-episode counts versus the
 * structure available to the pattern miner.
 */

#include <iostream>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "trace/io.hh"
#include "util/strings.hh"

int
main()
{
    using namespace lag;

    const char *apps[] = {"ArgoUML", "FreeMind"};
    const DurationNs filters[] = {msToNs(1), msToNs(3), msToNs(10)};

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("filter", report::Align::Right);
    table.addColumn("trace bytes", report::Align::Right);
    table.addColumn("traced", report::Align::Right);
    table.addColumn("filtered", report::Align::Right);
    table.addColumn("Dist", report::Align::Right);
    table.addColumn("Descs", report::Align::Right);
    table.addColumn(">=100ms", report::Align::Right);

    std::cout << "Ablation: the profiler's short-episode filter "
                 "(paper: 3 ms; 60 s sessions)\n\n";

    for (const char *name : apps) {
        app::AppParams params = app::catalogApp(name);
        params.sessionLength = secToNs(60);
        for (const DurationNs filter : filters) {
            app::SessionOptions options;
            options.filterThreshold = filter;
            auto result = app::runSession(params, 0, options);
            const std::string bytes =
                trace::serializeTrace(result.trace);
            const core::Session session =
                core::Session::fromTrace(std::move(result.trace));
            const core::PatternSet patterns =
                core::PatternMiner(msToNs(100)).mine(session);
            const auto row = core::computeOverview(
                session, patterns, msToNs(100));
            table.addRow({filter == filters[0] ? name : "",
                          formatDurationNs(filter),
                          formatCount(bytes.size()),
                          formatCount(row.tracedCount),
                          formatCount(row.shortCount),
                          formatCount(row.distinctPatterns),
                          formatDouble(row.meanDescs, 1),
                          formatCount(row.perceptibleCount)});
        }
        table.addSeparator();
    }

    std::cout << table.render() << '\n'
              << "A 1 ms filter lets an order of magnitude more "
                 "episodes (and their intervals) into the trace — "
                 "richer trees, more distinct patterns, much bigger "
                 "files; a 10 ms filter hides structure from the "
                 "miner. The perceptible counts barely move: the "
                 "filter is safe for the analyses that matter.\n";
    return 0;
}
