/**
 * @file
 * Reproduces Figure 8: synchronization and sleep during episodes —
 * the share of in-episode samples in which the GUI thread was
 * blocked on a monitor, waiting, or sleeping (remainder runnable).
 * Paper headlines (perceptible): jEdit >25% waiting (modal
 * dialogs); FreeMind 12% blocked (display-config contention);
 * Euclide >60% sleeping (the Apple combo-box blink); near zero over
 * all episodes — "aggregate information is not necessarily helpful
 * in pinpointing the causes of perceptible lag".
 */

#include <iostream>

#include "paper_data.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"
#include "viz/charts.hh"
#include "viz/palette.hh"

namespace
{

using namespace lag;
using namespace lag::bench;

viz::StackedBarChart
makeChart(const char *title, const char *axis,
          const std::vector<AppAnalysis> &apps,
          const std::function<const core::GuiStateShares &(
              const AppAnalysis &)> &select)
{
    // The paper zooms this figure's x-axis to 60%.
    viz::StackedBarChart chart(title, axis, 60.0);
    chart.addLegend("Blocked", "#d62728");
    chart.addLegend("Wait", "#ff7f0e");
    chart.addLegend("Sleeping", "#1f77b4");
    for (const auto &app : apps) {
        const auto &shares = select(app);
        chart.addRow(viz::BarRow{
            app.name,
            {{shares.blocked * 100.0, "#d62728"},
             {shares.waiting * 100.0, "#ff7f0e"},
             {shares.sleeping * 100.0, "#1f77b4"}}});
    }
    return chart;
}

} // namespace

int
main(int argc, char **argv)
{
    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("", report::Align::Left);
    table.addColumn("blocked", report::Align::Right);
    table.addColumn("wait", report::Align::Right);
    table.addColumn("sleep", report::Align::Right);
    table.addColumn("| all:blk", report::Align::Right);
    table.addColumn("wait", report::Align::Right);
    table.addColumn("sleep", report::Align::Right);

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &perc = apps[i].states.perceptible;
        const auto &all = apps[i].states.all;
        const auto &paper = kPaperFig8Perceptible[i];
        table.addRow({apps[i].name, "paper",
                      std::to_string(paper.blocked) + "%",
                      std::to_string(paper.waiting) + "%",
                      std::to_string(paper.sleeping) + "%", "", "",
                      ""});
        table.addRow({"", "ours", formatPercent(perc.blocked, 0),
                      formatPercent(perc.waiting, 0),
                      formatPercent(perc.sleeping, 0),
                      formatPercent(all.blocked, 1),
                      formatPercent(all.waiting, 1),
                      formatPercent(all.sleeping, 1)});
    }

    std::cout << "Figure 8: GUI-thread states during (perceptible) "
                 "episodes\n\n"
              << table.render() << '\n';

    const auto &jedit = apps[7].states.perceptible;
    const auto &freemind = apps[5].states.perceptible;
    const auto &euclide = apps[3].states.perceptible;
    std::cout << "Paper call-outs vs measured:\n"
              << "  jEdit waiting  — paper >25%; measured "
              << formatPercent(jedit.waiting, 0) << '\n'
              << "  FreeMind blocked — paper 12%; measured "
              << formatPercent(freemind.blocked, 0) << '\n'
              << "  Euclide sleeping — paper >60%; measured "
              << formatPercent(euclide.sleeping, 0) << '\n';

    makeChart("Figure 8 (upper): all episodes",
              "Episodes - Time [%]", apps,
              [](const AppAnalysis &a) -> const core::GuiStateShares & {
                  return a.states.all;
              })
        .render()
        .writeFile(figurePath("fig8_states_all.svg"));
    makeChart("Figure 8 (lower): perceptible episodes",
              "Episodes >100ms - Time [%]", apps,
              [](const AppAnalysis &a) -> const core::GuiStateShares & {
                  return a.states.perceptible;
              })
        .render()
        .writeFile(figurePath("fig8_states_perceptible.svg"));
    std::cout << "SVGs written to figures/fig8_states_*.svg\n";
    return 0;
}
