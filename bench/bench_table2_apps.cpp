/**
 * @file
 * Reproduces Table II: the 14 benchmark applications, printed from
 * the model catalog (identity columns are the paper's values; the
 * last column summarizes what each model substitutes for the real
 * application).
 */

#include <iostream>

#include "app/catalog.hh"
#include "report/table.hh"
#include "util/strings.hh"

int
main()
{
    using namespace lag;

    report::TextTable table;
    table.addColumn("Application", report::Align::Left);
    table.addColumn("Version", report::Align::Left);
    table.addColumn("Classes", report::Align::Right);
    table.addColumn("Description", report::Align::Left);
    table.addColumn("Session [s]", report::Align::Right);
    table.addColumn("Model highlights", report::Align::Left);

    for (const auto &app : app::defaultCatalog()) {
        std::vector<std::string> notes;
        if (app.explicitGcProb > 0)
            notes.push_back("System.gc() commands");
        if (app.comboSleepProb > 0)
            notes.push_back("combo-box blink sleep");
        if (app.modalWaitProb > 0)
            notes.push_back("modal-dialog waits");
        if (!app.hogs.empty())
            notes.push_back("monitor contention");
        for (const auto &timer : app.timers) {
            notes.push_back(timer.postsRepaint ? "animation timer"
                                               : "async updater");
        }
        if (!app.loaders.empty())
            notes.push_back("background load");
        if (app.paintDepthMin >= 8)
            notes.push_back("deep paint nesting");
        table.addRow({app.name, app.version,
                      std::to_string(app.classCount), app.description,
                      formatDouble(nsToSec(app.sessionLength), 0),
                      join(notes, ", ")});
    }
    std::cout << "Table II: applications (identity columns verbatim "
                 "from the paper)\n\n"
              << table.render();
    return 0;
}
