/**
 * @file
 * Ablation: profiler perturbation (the paper's §V future work).
 *
 * "The LiLa profiler could potentially exhibit measurement
 * perturbation. For example, it could slow down the application due
 * to its instrumentation [...]. We plan to study the perturbation of
 * LiLa in future work."
 *
 * This harness performs that study on the simulated substrate: the
 * same sessions are re-run with 0 / 20 / 100 microseconds of extra
 * CPU charged to every instrumented call, and the resulting Table
 * III metrics are compared. Because the workload is deterministic,
 * every difference is attributable to the instrumentation.
 */

#include <iostream>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"

int
main()
{
    using namespace lag;

    const char *apps[] = {"JEdit", "GanttProject", "Jmol"};
    const DurationNs overheads[] = {0, usToNs(20), usToNs(100)};

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("probe cost", report::Align::Right);
    table.addColumn("In-Eps[%]", report::Align::Right);
    table.addColumn(">=3ms", report::Align::Right);
    table.addColumn(">=100ms", report::Align::Right);
    table.addColumn("Dist", report::Align::Right);

    std::cout << "Ablation: profiler perturbation (extra CPU per "
                 "instrumented call; 60 s sessions)\n"
              << "The paper left measuring LiLa's perturbation to "
                 "future work (SV); here the substrate makes it "
                 "directly observable.\n\n";

    for (const char *name : apps) {
        app::AppParams params = app::catalogApp(name);
        params.sessionLength = secToNs(60);
        for (const DurationNs overhead : overheads) {
            app::SessionOptions options;
            options.instrumentationOverhead = overhead;
            auto result = app::runSession(params, 0, options);
            const core::Session session =
                core::Session::fromTrace(std::move(result.trace));
            const core::PatternSet patterns =
                core::PatternMiner(msToNs(100)).mine(session);
            const auto row = core::computeOverview(
                session, patterns, msToNs(100));
            table.addRow({overhead == 0 ? name : "",
                          formatDurationNs(overhead),
                          formatDouble(row.inEpsPercent, 1),
                          formatCount(row.tracedCount),
                          formatCount(row.perceptibleCount),
                          formatCount(row.distinctPatterns)});
        }
        table.addSeparator();
    }

    std::cout << table.render() << '\n'
              << "Per-call probe costs inflate in-episode time and "
                 "push borderline episodes across the 3 ms filter "
                 "(more traced episodes); the perceptible counts "
                 "move much less, since 100 ms episodes contain few "
                 "enough instrumented calls for the probe cost to "
                 "matter. A 20 us probe is a tolerable perturbation; "
                 "100 us visibly distorts the trace.\n";
    return 0;
}
