/**
 * @file
 * Analysis hot-path microbenchmarks: flat layout vs node trees.
 *
 * Each run prints one JSON line per kernel comparing the node-tree
 * implementation against its flat-slice twin on the same cached
 * 60 s GanttProject session:
 *
 *  - `flat_build`            cost of flattenSession itself
 *  - `sig_mpatterns_per_s`   signature hashing (patternSignature +
 *                            fnv1a vs one-pass flatSignatureHash),
 *                            millions of signatures per second
 *  - `walk_mnodes_per_s`     structural walks (descendantCount,
 *                            depth, GC typeTime), millions of
 *                            logical nodes walked per second
 *  - `classify_mepisodes_per_s`  trigger classification
 *                            (episodeTrigger vs flatEpisodeTrigger,
 *                            SIMD under LAG_SIMD), millions of
 *                            episodes per second
 *  - `merge_mepisodes_per_s` the serial shard-merge tail of the
 *                            parallel miner (PatternMiner::merge
 *                            over 8 flat-mined shards)
 *
 * Before timing anything, every kernel's node and flat results are
 * compared on every episode; any mismatch prints to stderr and the
 * process exits nonzero, so `ctest -L perf` doubles as an
 * equivalence smoke. `--smoke` runs few iterations (CI); the full
 * run uses enough repetitions for stable rates. Record full-run
 * lines in EXPERIMENTS.md when the hot path changes.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/flat_simd.hh"
#include "core/flat_tree.hh"
#include "core/location.hh"
#include "core/pattern.hh"
#include "core/triggers.hh"
#include "trace/io.hh"
#include "util/hash.hh"

namespace
{

using namespace lag;

/** One cached 60 s GanttProject session and its flat layout. */
struct Fixture
{
    core::Session session;
    core::FlatSession flat;
    std::size_t episodes;
    std::uint64_t nodes;

    Fixture()
        : session([] {
              app::AppParams params =
                  app::catalogApp("GanttProject");
              params.sessionLength = secToNs(60);
              return core::Session::fromTrace(
                  app::runSession(params, 0).trace);
          }()),
          flat(core::flattenSession(session)),
          episodes(session.episodes().size()), nodes(0)
    {
        for (const core::FlatTree &tree : flat.trees())
            nodes += tree.size();
    }

    static const Fixture &
    get()
    {
        static const Fixture fixture;
        return fixture;
    }
};

/** Wall time of @p fn in milliseconds. */
template <typename Fn>
double
timedMs(const Fn &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

/**
 * Node-vs-flat equivalence over every episode: signature hash and
 * string, structural walks, native/GC times and trigger class must
 * agree exactly. Returns false (after printing the first mismatch)
 * when they do not.
 */
bool
verifyEquivalence(const Fixture &f)
{
    const auto &episodes = f.session.episodes();
    const auto &strings = f.session.strings();
    const auto &trees = f.flat.trees();
    core::FlatSigStack scratch;
    std::string flatSig;
    for (std::size_t i = 0; i < f.episodes; ++i) {
        const core::IntervalNode &root =
            f.session.episodeRoot(episodes[i]);
        const core::FlatTree &tree = trees[f.flat.episodeTree(i)];
        const std::uint32_t node = f.flat.episodeNode(i);

        const std::string nodeSig =
            core::patternSignature(root, strings);
        flatSig.clear();
        core::flatSignatureString(tree, node, strings, flatSig,
                                  scratch);
        const std::uint64_t flatHash =
            core::flatSignatureHash(tree, node, strings, scratch);
        if (flatSig != nodeSig || flatHash != fnv1a(nodeSig)) {
            std::fprintf(stderr,
                         "episode %zu: signature mismatch "
                         "(node \"%s\", flat \"%s\")\n",
                         i, nodeSig.c_str(), flatSig.c_str());
            return false;
        }
        if (core::flatDescendantCount(tree, node) !=
                root.descendantCount() ||
            core::flatDepth(tree, node) != root.depth() ||
            core::flatTypeTime(tree, node, core::IntervalType::Gc) !=
                root.typeTime(core::IntervalType::Gc) ||
            core::flatNativeTimeExcludingGc(tree, node) !=
                core::nativeTimeExcludingGc(root)) {
            std::fprintf(stderr,
                         "episode %zu: walk mismatch\n", i);
            return false;
        }
        if (core::flatEpisodeTrigger(tree, node) !=
            core::episodeTrigger(root)) {
            std::fprintf(stderr,
                         "episode %zu: trigger mismatch\n", i);
            return false;
        }
    }
    return true;
}

void
reportFlatBuild(const Fixture &f, int reps)
{
    const double ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            const core::FlatSession flat =
                core::flattenSession(f.session);
            benchmark::DoNotOptimize(flat.trees().data());
        }
    }) / reps;
    std::printf(
        "{\"bench\":\"flat_build\",\"trees\":%llu,\"nodes\":%llu,"
        "\"build_ms\":%.3f,\"mnodes_per_s\":%.1f}\n",
        static_cast<unsigned long long>(f.flat.trees().size()),
        static_cast<unsigned long long>(f.nodes), ms,
        ms > 0.0 ? static_cast<double>(f.nodes) / (ms * 1e3) : 0.0);
    std::fflush(stdout);
}

void
reportSignatureHashing(const Fixture &f, int reps)
{
    const auto &episodes = f.session.episodes();
    const auto &strings = f.session.strings();
    const auto &trees = f.flat.trees();

    std::uint64_t nodeSum = 0;
    const double node_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < f.episodes; ++i) {
                const std::string sig = core::patternSignature(
                    f.session.episodeRoot(episodes[i]), strings);
                nodeSum += fnv1a(sig);
            }
        }
    }) / reps;
    benchmark::DoNotOptimize(nodeSum);

    std::uint64_t flatSum = 0;
    core::FlatSigStack scratch;
    const double flat_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < f.episodes; ++i) {
                flatSum += core::flatSignatureHash(
                    trees[f.flat.episodeTree(i)],
                    f.flat.episodeNode(i), strings, scratch);
            }
        }
    }) / reps;
    benchmark::DoNotOptimize(flatSum);

    const double m = static_cast<double>(f.episodes) / 1e6;
    std::printf(
        "{\"bench\":\"sig_mpatterns_per_s\",\"episodes\":%llu,"
        "\"reps\":%d,\"node\":%.3f,\"flat\":%.3f,"
        "\"speedup\":%.2f}\n",
        static_cast<unsigned long long>(f.episodes), reps,
        node_ms > 0.0 ? m / (node_ms / 1e3) : 0.0,
        flat_ms > 0.0 ? m / (flat_ms / 1e3) : 0.0,
        flat_ms > 0.0 ? node_ms / flat_ms : 0.0);
    std::fflush(stdout);
}

void
reportStructuralWalks(const Fixture &f, int reps)
{
    const auto &episodes = f.session.episodes();
    const auto &trees = f.flat.trees();

    // Logical work per pass: every episode node visited once per
    // walk kind (count, depth, GC time). The flat side answers two
    // of the three in O(1); the rate measures work accomplished,
    // not instructions retired — that asymmetry is the point.
    std::uint64_t episodeNodes = 0;
    for (std::size_t i = 0; i < f.episodes; ++i) {
        episodeNodes += core::flatDescendantCount(
                            trees[f.flat.episodeTree(i)],
                            f.flat.episodeNode(i)) +
                        1;
    }

    std::uint64_t nodeSum = 0;
    const double node_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < f.episodes; ++i) {
                const core::IntervalNode &root =
                    f.session.episodeRoot(episodes[i]);
                nodeSum += root.descendantCount() + root.depth() +
                           static_cast<std::uint64_t>(
                               root.typeTime(core::IntervalType::Gc));
            }
        }
    }) / reps;
    benchmark::DoNotOptimize(nodeSum);

    std::uint64_t flatSum = 0;
    const double flat_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < f.episodes; ++i) {
                const core::FlatTree &tree =
                    trees[f.flat.episodeTree(i)];
                const std::uint32_t node = f.flat.episodeNode(i);
                flatSum += core::flatDescendantCount(tree, node) +
                           core::flatDepth(tree, node) +
                           static_cast<std::uint64_t>(
                               core::flatTypeTime(
                                   tree, node,
                                   core::IntervalType::Gc));
            }
        }
    }) / reps;
    benchmark::DoNotOptimize(flatSum);

    const double m = 3.0 * static_cast<double>(episodeNodes) / 1e6;
    std::printf(
        "{\"bench\":\"walk_mnodes_per_s\",\"logical_mnodes\":%.3f,"
        "\"reps\":%d,\"node\":%.1f,\"flat\":%.1f,"
        "\"speedup\":%.2f}\n",
        m, reps, node_ms > 0.0 ? m / (node_ms / 1e3) : 0.0,
        flat_ms > 0.0 ? m / (flat_ms / 1e3) : 0.0,
        flat_ms > 0.0 ? node_ms / flat_ms : 0.0);
    std::fflush(stdout);
}

void
reportClassification(const Fixture &f, int reps)
{
    const auto &episodes = f.session.episodes();
    const auto &trees = f.flat.trees();

    std::uint64_t nodeSum = 0;
    const double node_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < f.episodes; ++i) {
                nodeSum += static_cast<std::uint64_t>(
                    core::episodeTrigger(
                        f.session.episodeRoot(episodes[i])));
            }
        }
    }) / reps;
    benchmark::DoNotOptimize(nodeSum);

    std::uint64_t flatSum = 0;
    const double flat_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            for (std::size_t i = 0; i < f.episodes; ++i) {
                flatSum += static_cast<std::uint64_t>(
                    core::flatEpisodeTrigger(
                        trees[f.flat.episodeTree(i)],
                        f.flat.episodeNode(i)));
            }
        }
    }) / reps;
    benchmark::DoNotOptimize(flatSum);

#if defined(LAG_SIMD) && \
    (defined(LAG_HAS_SSE2) || defined(LAG_HAS_NEON))
    const bool simd = true;
#else
    const bool simd = false;
#endif
    const double m = static_cast<double>(f.episodes) / 1e6;
    std::printf(
        "{\"bench\":\"classify_mepisodes_per_s\",\"episodes\":%llu,"
        "\"reps\":%d,\"simd\":%s,\"node\":%.3f,\"flat\":%.3f,"
        "\"speedup\":%.2f}\n",
        static_cast<unsigned long long>(f.episodes), reps,
        simd ? "true" : "false",
        node_ms > 0.0 ? m / (node_ms / 1e3) : 0.0,
        flat_ms > 0.0 ? m / (flat_ms / 1e3) : 0.0,
        flat_ms > 0.0 ? node_ms / flat_ms : 0.0);
    std::fflush(stdout);
}

void
reportSummaryMerge(const Fixture &f, int reps)
{
    // The merge step of the sharded miner: mine 8 shards once (off
    // the clock, on the flat path), then time reducing copies of
    // them — the serial tail every parallel mine pays.
    constexpr std::size_t kShards = 8;
    const core::PatternMiner miner(msToNs(100));
    std::vector<core::PatternShard> shards;
    shards.reserve(kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
        const std::size_t begin = f.episodes * s / kShards;
        const std::size_t end = f.episodes * (s + 1) / kShards;
        shards.push_back(
            miner.mineRange(f.session, f.flat, begin, end));
    }

    std::size_t patternSum = 0;
    const double merge_ms = timedMs([&] {
        for (int r = 0; r < reps; ++r) {
            patternSum +=
                miner.merge(shards).patterns.size();
        }
    }) / reps;
    benchmark::DoNotOptimize(patternSum);

    const double m = static_cast<double>(f.episodes) / 1e6;
    std::printf(
        "{\"bench\":\"merge_mepisodes_per_s\",\"shards\":%llu,"
        "\"episodes\":%llu,\"reps\":%d,\"patterns\":%llu,"
        "\"merged\":%.3f}\n",
        static_cast<unsigned long long>(kShards),
        static_cast<unsigned long long>(f.episodes), reps,
        static_cast<unsigned long long>(patternSum / reps),
        merge_ms > 0.0 ? m / (merge_ms / 1e3) : 0.0);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int in = 1; in < argc; ++in) {
        if (std::string_view(argv[in]) == "--smoke")
            smoke = true;
    }

    const Fixture &f = Fixture::get();
    if (!verifyEquivalence(f))
        return 1;

    const int reps = smoke ? 3 : 100;
    reportFlatBuild(f, smoke ? 3 : 20);
    reportSignatureHashing(f, reps);
    reportStructuralWalks(f, reps);
    reportClassification(f, reps);
    reportSummaryMerge(f, smoke ? 3 : 50);
    return 0;
}
