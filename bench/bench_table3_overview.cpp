/**
 * @file
 * Reproduces Table III: overall statistics of the 14-application
 * characterization study, next to the paper's reported values.
 *
 * Every row is the mean over four simulated sessions, exactly as in
 * the paper. The "paper" lines are Table III verbatim; the "ours"
 * lines are measured from the cached study traces.
 */

#include <iostream>

#include "paper_data.hh"
#include "report/table.hh"
#include "study_util.hh"
#include "util/strings.hh"

int
main(int argc, char **argv)
{
    using namespace lag;
    using namespace lag::bench;

    app::Study study(selectStudyConfig(argc, argv));
    const std::vector<AppAnalysis> apps = analyzeStudy(study);

    report::TextTable table;
    table.addColumn("Benchmark", report::Align::Left);
    table.addColumn("", report::Align::Left);
    table.addColumn("E2E[s]", report::Align::Right);
    table.addColumn("In-Eps[%]", report::Align::Right);
    table.addColumn("<3ms", report::Align::Right);
    table.addColumn(">=3ms", report::Align::Right);
    table.addColumn(">=100ms", report::Align::Right);
    table.addColumn("Long/min", report::Align::Right);
    table.addColumn("Dist", report::Align::Right);
    table.addColumn("#Eps", report::Align::Right);
    table.addColumn("One-Ep[%]", report::Align::Right);
    table.addColumn("Descs", report::Align::Right);
    table.addColumn("Depth", report::Align::Right);

    core::OverviewRow mean_measured{};
    std::vector<core::OverviewRow> measured_rows;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &paper = kPaperTable3[i];
        const core::OverviewRow &ours = apps[i].overview;
        measured_rows.push_back(ours);
        table.addRow({apps[i].name, "paper",
                      std::to_string(paper.e2eSeconds),
                      std::to_string(paper.inEpsPercent),
                      formatCount(paper.shortCount),
                      formatCount(paper.tracedCount),
                      formatCount(paper.perceptibleCount),
                      std::to_string(paper.longPerMin),
                      std::to_string(paper.distinctPatterns),
                      formatCount(paper.coveredEpisodes),
                      std::to_string(paper.oneEpPercent),
                      std::to_string(paper.descs),
                      std::to_string(paper.depth)});
        table.addRow({"", "ours", formatDouble(ours.e2eSeconds, 0),
                      formatDouble(ours.inEpsPercent, 0),
                      formatCount(ours.shortCount),
                      formatCount(ours.tracedCount),
                      formatCount(ours.perceptibleCount),
                      formatDouble(ours.longPerMin, 0),
                      formatCount(ours.distinctPatterns),
                      formatCount(ours.coveredEpisodes),
                      formatDouble(ours.oneEpPercent, 0),
                      formatDouble(ours.meanDescs, 0),
                      formatDouble(ours.meanDepth, 0)});
        table.addSeparator();
    }

    const core::OverviewRow mean = core::meanOverview(measured_rows);
    const auto &paper_mean = kPaperTable3.back();
    table.addRow({"Mean", "paper",
                  std::to_string(paper_mean.e2eSeconds),
                  std::to_string(paper_mean.inEpsPercent),
                  formatCount(paper_mean.shortCount),
                  formatCount(paper_mean.tracedCount),
                  formatCount(paper_mean.perceptibleCount),
                  std::to_string(paper_mean.longPerMin),
                  std::to_string(paper_mean.distinctPatterns),
                  formatCount(paper_mean.coveredEpisodes),
                  std::to_string(paper_mean.oneEpPercent),
                  std::to_string(paper_mean.descs),
                  std::to_string(paper_mean.depth)});
    table.addRow({"", "ours", formatDouble(mean.e2eSeconds, 0),
                  formatDouble(mean.inEpsPercent, 0),
                  formatCount(mean.shortCount),
                  formatCount(mean.tracedCount),
                  formatCount(mean.perceptibleCount),
                  formatDouble(mean.longPerMin, 0),
                  formatCount(mean.distinctPatterns),
                  formatCount(mean.coveredEpisodes),
                  formatDouble(mean.oneEpPercent, 0),
                  formatDouble(mean.meanDescs, 0),
                  formatDouble(mean.meanDepth, 0)});

    std::cout << "Table III: overall statistics (paper vs measured; "
                 "mean of 4 sessions per app)\n\n"
              << table.render();
    (void)mean_measured;
    return 0;
}
