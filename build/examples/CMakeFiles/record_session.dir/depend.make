# Empty dependencies file for record_session.
# This may be replaced when dependencies are built.
