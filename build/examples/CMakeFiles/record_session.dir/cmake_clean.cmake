file(REMOVE_RECURSE
  "CMakeFiles/record_session.dir/record_session.cpp.o"
  "CMakeFiles/record_session.dir/record_session.cpp.o.d"
  "record_session"
  "record_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
