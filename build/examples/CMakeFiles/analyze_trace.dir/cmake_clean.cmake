file(REMOVE_RECURSE
  "CMakeFiles/analyze_trace.dir/analyze_trace.cpp.o"
  "CMakeFiles/analyze_trace.dir/analyze_trace.cpp.o.d"
  "analyze_trace"
  "analyze_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
