# Empty dependencies file for analyze_trace.
# This may be replaced when dependencies are built.
