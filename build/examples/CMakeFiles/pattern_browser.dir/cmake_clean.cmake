file(REMOVE_RECURSE
  "CMakeFiles/pattern_browser.dir/pattern_browser.cpp.o"
  "CMakeFiles/pattern_browser.dir/pattern_browser.cpp.o.d"
  "pattern_browser"
  "pattern_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
