# Empty dependencies file for pattern_browser.
# This may be replaced when dependencies are built.
