# Empty dependencies file for bench_fig2_sketch.
# This may be replaced when dependencies are built.
