# Empty dependencies file for bench_fig6_location.
# This may be replaced when dependencies are built.
