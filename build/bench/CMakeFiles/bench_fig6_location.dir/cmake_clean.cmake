file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_location.dir/bench_fig6_location.cpp.o"
  "CMakeFiles/bench_fig6_location.dir/bench_fig6_location.cpp.o.d"
  "bench_fig6_location"
  "bench_fig6_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
