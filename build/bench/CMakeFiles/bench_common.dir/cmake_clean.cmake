file(REMOVE_RECURSE
  "../lib/libbench_common.a"
  "../lib/libbench_common.pdb"
  "CMakeFiles/bench_common.dir/study_util.cc.o"
  "CMakeFiles/bench_common.dir/study_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
