# Empty dependencies file for bench_fig5_triggers.
# This may be replaced when dependencies are built.
