file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_triggers.dir/bench_fig5_triggers.cpp.o"
  "CMakeFiles/bench_fig5_triggers.dir/bench_fig5_triggers.cpp.o.d"
  "bench_fig5_triggers"
  "bench_fig5_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
