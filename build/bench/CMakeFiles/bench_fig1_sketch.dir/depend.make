# Empty dependencies file for bench_fig1_sketch.
# This may be replaced when dependencies are built.
