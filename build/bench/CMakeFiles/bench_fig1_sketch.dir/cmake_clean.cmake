file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_sketch.dir/bench_fig1_sketch.cpp.o"
  "CMakeFiles/bench_fig1_sketch.dir/bench_fig1_sketch.cpp.o.d"
  "bench_fig1_sketch"
  "bench_fig1_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
