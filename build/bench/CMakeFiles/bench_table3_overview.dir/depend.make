# Empty dependencies file for bench_table3_overview.
# This may be replaced when dependencies are built.
