file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_overview.dir/bench_table3_overview.cpp.o"
  "CMakeFiles/bench_table3_overview.dir/bench_table3_overview.cpp.o.d"
  "bench_table3_overview"
  "bench_table3_overview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
