file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_occurrence.dir/bench_fig4_occurrence.cpp.o"
  "CMakeFiles/bench_fig4_occurrence.dir/bench_fig4_occurrence.cpp.o.d"
  "bench_fig4_occurrence"
  "bench_fig4_occurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_occurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
