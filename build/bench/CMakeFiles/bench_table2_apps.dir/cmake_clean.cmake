file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_apps.dir/bench_table2_apps.cpp.o"
  "CMakeFiles/bench_table2_apps.dir/bench_table2_apps.cpp.o.d"
  "bench_table2_apps"
  "bench_table2_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
