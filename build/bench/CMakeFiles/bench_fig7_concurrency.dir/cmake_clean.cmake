file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_concurrency.dir/bench_fig7_concurrency.cpp.o"
  "CMakeFiles/bench_fig7_concurrency.dir/bench_fig7_concurrency.cpp.o.d"
  "bench_fig7_concurrency"
  "bench_fig7_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
