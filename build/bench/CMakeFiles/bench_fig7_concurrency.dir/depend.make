# Empty dependencies file for bench_fig7_concurrency.
# This may be replaced when dependencies are built.
