
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_types.cpp" "bench/CMakeFiles/bench_table1_types.dir/bench_table1_types.cpp.o" "gcc" "bench/CMakeFiles/bench_table1_types.dir/bench_table1_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/lag_app.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lag_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/lila/CMakeFiles/lag_lila.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/lag_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/lag_report.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/lag_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lag_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
