# Empty dependencies file for bench_table1_types.
# This may be replaced when dependencies are built.
