file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_types.dir/bench_table1_types.cpp.o"
  "CMakeFiles/bench_table1_types.dir/bench_table1_types.cpp.o.d"
  "bench_table1_types"
  "bench_table1_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
