file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_pattern_cdf.dir/bench_fig3_pattern_cdf.cpp.o"
  "CMakeFiles/bench_fig3_pattern_cdf.dir/bench_fig3_pattern_cdf.cpp.o.d"
  "bench_fig3_pattern_cdf"
  "bench_fig3_pattern_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_pattern_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
