# Empty dependencies file for bench_fig8_threadstates.
# This may be replaced when dependencies are built.
