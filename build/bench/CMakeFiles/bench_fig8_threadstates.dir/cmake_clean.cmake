file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_threadstates.dir/bench_fig8_threadstates.cpp.o"
  "CMakeFiles/bench_fig8_threadstates.dir/bench_fig8_threadstates.cpp.o.d"
  "bench_fig8_threadstates"
  "bench_fig8_threadstates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_threadstates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
