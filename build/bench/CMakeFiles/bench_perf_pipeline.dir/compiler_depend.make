# Empty compiler generated dependencies file for bench_perf_pipeline.
# This may be replaced when dependencies are built.
