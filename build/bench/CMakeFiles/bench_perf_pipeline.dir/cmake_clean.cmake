file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_pipeline.dir/bench_perf_pipeline.cpp.o"
  "CMakeFiles/bench_perf_pipeline.dir/bench_perf_pipeline.cpp.o.d"
  "bench_perf_pipeline"
  "bench_perf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
