file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_perturbation.dir/bench_ablation_perturbation.cpp.o"
  "CMakeFiles/bench_ablation_perturbation.dir/bench_ablation_perturbation.cpp.o.d"
  "bench_ablation_perturbation"
  "bench_ablation_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
