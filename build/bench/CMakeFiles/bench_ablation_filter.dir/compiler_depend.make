# Empty compiler generated dependencies file for bench_ablation_filter.
# This may be replaced when dependencies are built.
