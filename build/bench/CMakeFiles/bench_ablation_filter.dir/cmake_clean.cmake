file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_filter.dir/bench_ablation_filter.cpp.o"
  "CMakeFiles/bench_ablation_filter.dir/bench_ablation_filter.cpp.o.d"
  "bench_ablation_filter"
  "bench_ablation_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
