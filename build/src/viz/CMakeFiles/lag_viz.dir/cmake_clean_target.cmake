file(REMOVE_RECURSE
  "liblag_viz.a"
)
