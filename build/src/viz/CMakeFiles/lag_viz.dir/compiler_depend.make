# Empty compiler generated dependencies file for lag_viz.
# This may be replaced when dependencies are built.
