file(REMOVE_RECURSE
  "CMakeFiles/lag_viz.dir/charts.cc.o"
  "CMakeFiles/lag_viz.dir/charts.cc.o.d"
  "CMakeFiles/lag_viz.dir/palette.cc.o"
  "CMakeFiles/lag_viz.dir/palette.cc.o.d"
  "CMakeFiles/lag_viz.dir/sketch.cc.o"
  "CMakeFiles/lag_viz.dir/sketch.cc.o.d"
  "CMakeFiles/lag_viz.dir/svg.cc.o"
  "CMakeFiles/lag_viz.dir/svg.cc.o.d"
  "liblag_viz.a"
  "liblag_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
