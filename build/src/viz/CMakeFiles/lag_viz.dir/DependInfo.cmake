
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/charts.cc" "src/viz/CMakeFiles/lag_viz.dir/charts.cc.o" "gcc" "src/viz/CMakeFiles/lag_viz.dir/charts.cc.o.d"
  "/root/repo/src/viz/palette.cc" "src/viz/CMakeFiles/lag_viz.dir/palette.cc.o" "gcc" "src/viz/CMakeFiles/lag_viz.dir/palette.cc.o.d"
  "/root/repo/src/viz/sketch.cc" "src/viz/CMakeFiles/lag_viz.dir/sketch.cc.o" "gcc" "src/viz/CMakeFiles/lag_viz.dir/sketch.cc.o.d"
  "/root/repo/src/viz/svg.cc" "src/viz/CMakeFiles/lag_viz.dir/svg.cc.o" "gcc" "src/viz/CMakeFiles/lag_viz.dir/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lag_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lag_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
