# Empty dependencies file for lag_sim.
# This may be replaced when dependencies are built.
