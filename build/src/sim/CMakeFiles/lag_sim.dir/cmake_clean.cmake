file(REMOVE_RECURSE
  "CMakeFiles/lag_sim.dir/event_queue.cc.o"
  "CMakeFiles/lag_sim.dir/event_queue.cc.o.d"
  "liblag_sim.a"
  "liblag_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
