file(REMOVE_RECURSE
  "liblag_sim.a"
)
