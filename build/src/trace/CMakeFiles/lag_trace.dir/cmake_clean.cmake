file(REMOVE_RECURSE
  "CMakeFiles/lag_trace.dir/io.cc.o"
  "CMakeFiles/lag_trace.dir/io.cc.o.d"
  "CMakeFiles/lag_trace.dir/trace.cc.o"
  "CMakeFiles/lag_trace.dir/trace.cc.o.d"
  "liblag_trace.a"
  "liblag_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
