file(REMOVE_RECURSE
  "liblag_trace.a"
)
