# Empty dependencies file for lag_trace.
# This may be replaced when dependencies are built.
