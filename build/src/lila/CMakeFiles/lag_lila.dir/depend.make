# Empty dependencies file for lag_lila.
# This may be replaced when dependencies are built.
