file(REMOVE_RECURSE
  "CMakeFiles/lag_lila.dir/agent.cc.o"
  "CMakeFiles/lag_lila.dir/agent.cc.o.d"
  "liblag_lila.a"
  "liblag_lila.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_lila.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
