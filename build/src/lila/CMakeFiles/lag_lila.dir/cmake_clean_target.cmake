file(REMOVE_RECURSE
  "liblag_lila.a"
)
