# CMake generated Testfile for 
# Source directory: /root/repo/src/lila
# Build directory: /root/repo/build/src/lila
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
