
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/activity.cc" "src/jvm/CMakeFiles/lag_jvm.dir/activity.cc.o" "gcc" "src/jvm/CMakeFiles/lag_jvm.dir/activity.cc.o.d"
  "/root/repo/src/jvm/gui_queue.cc" "src/jvm/CMakeFiles/lag_jvm.dir/gui_queue.cc.o" "gcc" "src/jvm/CMakeFiles/lag_jvm.dir/gui_queue.cc.o.d"
  "/root/repo/src/jvm/heap.cc" "src/jvm/CMakeFiles/lag_jvm.dir/heap.cc.o" "gcc" "src/jvm/CMakeFiles/lag_jvm.dir/heap.cc.o.d"
  "/root/repo/src/jvm/monitor.cc" "src/jvm/CMakeFiles/lag_jvm.dir/monitor.cc.o" "gcc" "src/jvm/CMakeFiles/lag_jvm.dir/monitor.cc.o.d"
  "/root/repo/src/jvm/thread.cc" "src/jvm/CMakeFiles/lag_jvm.dir/thread.cc.o" "gcc" "src/jvm/CMakeFiles/lag_jvm.dir/thread.cc.o.d"
  "/root/repo/src/jvm/vm.cc" "src/jvm/CMakeFiles/lag_jvm.dir/vm.cc.o" "gcc" "src/jvm/CMakeFiles/lag_jvm.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
