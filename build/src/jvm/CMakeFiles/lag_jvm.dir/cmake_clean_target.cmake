file(REMOVE_RECURSE
  "liblag_jvm.a"
)
