file(REMOVE_RECURSE
  "CMakeFiles/lag_jvm.dir/activity.cc.o"
  "CMakeFiles/lag_jvm.dir/activity.cc.o.d"
  "CMakeFiles/lag_jvm.dir/gui_queue.cc.o"
  "CMakeFiles/lag_jvm.dir/gui_queue.cc.o.d"
  "CMakeFiles/lag_jvm.dir/heap.cc.o"
  "CMakeFiles/lag_jvm.dir/heap.cc.o.d"
  "CMakeFiles/lag_jvm.dir/monitor.cc.o"
  "CMakeFiles/lag_jvm.dir/monitor.cc.o.d"
  "CMakeFiles/lag_jvm.dir/thread.cc.o"
  "CMakeFiles/lag_jvm.dir/thread.cc.o.d"
  "CMakeFiles/lag_jvm.dir/vm.cc.o"
  "CMakeFiles/lag_jvm.dir/vm.cc.o.d"
  "liblag_jvm.a"
  "liblag_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
