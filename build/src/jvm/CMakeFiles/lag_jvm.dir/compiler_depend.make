# Empty compiler generated dependencies file for lag_jvm.
# This may be replaced when dependencies are built.
