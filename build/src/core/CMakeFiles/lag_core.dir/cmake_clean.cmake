file(REMOVE_RECURSE
  "CMakeFiles/lag_core.dir/aggregate.cc.o"
  "CMakeFiles/lag_core.dir/aggregate.cc.o.d"
  "CMakeFiles/lag_core.dir/blame.cc.o"
  "CMakeFiles/lag_core.dir/blame.cc.o.d"
  "CMakeFiles/lag_core.dir/browser.cc.o"
  "CMakeFiles/lag_core.dir/browser.cc.o.d"
  "CMakeFiles/lag_core.dir/classify.cc.o"
  "CMakeFiles/lag_core.dir/classify.cc.o.d"
  "CMakeFiles/lag_core.dir/concurrency.cc.o"
  "CMakeFiles/lag_core.dir/concurrency.cc.o.d"
  "CMakeFiles/lag_core.dir/interval.cc.o"
  "CMakeFiles/lag_core.dir/interval.cc.o.d"
  "CMakeFiles/lag_core.dir/location.cc.o"
  "CMakeFiles/lag_core.dir/location.cc.o.d"
  "CMakeFiles/lag_core.dir/overview.cc.o"
  "CMakeFiles/lag_core.dir/overview.cc.o.d"
  "CMakeFiles/lag_core.dir/pattern.cc.o"
  "CMakeFiles/lag_core.dir/pattern.cc.o.d"
  "CMakeFiles/lag_core.dir/pattern_stats.cc.o"
  "CMakeFiles/lag_core.dir/pattern_stats.cc.o.d"
  "CMakeFiles/lag_core.dir/session.cc.o"
  "CMakeFiles/lag_core.dir/session.cc.o.d"
  "CMakeFiles/lag_core.dir/triggers.cc.o"
  "CMakeFiles/lag_core.dir/triggers.cc.o.d"
  "liblag_core.a"
  "liblag_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
