# Empty dependencies file for lag_core.
# This may be replaced when dependencies are built.
