file(REMOVE_RECURSE
  "liblag_core.a"
)
