
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/core/CMakeFiles/lag_core.dir/aggregate.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/aggregate.cc.o.d"
  "/root/repo/src/core/blame.cc" "src/core/CMakeFiles/lag_core.dir/blame.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/blame.cc.o.d"
  "/root/repo/src/core/browser.cc" "src/core/CMakeFiles/lag_core.dir/browser.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/browser.cc.o.d"
  "/root/repo/src/core/classify.cc" "src/core/CMakeFiles/lag_core.dir/classify.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/classify.cc.o.d"
  "/root/repo/src/core/concurrency.cc" "src/core/CMakeFiles/lag_core.dir/concurrency.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/concurrency.cc.o.d"
  "/root/repo/src/core/interval.cc" "src/core/CMakeFiles/lag_core.dir/interval.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/interval.cc.o.d"
  "/root/repo/src/core/location.cc" "src/core/CMakeFiles/lag_core.dir/location.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/location.cc.o.d"
  "/root/repo/src/core/overview.cc" "src/core/CMakeFiles/lag_core.dir/overview.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/overview.cc.o.d"
  "/root/repo/src/core/pattern.cc" "src/core/CMakeFiles/lag_core.dir/pattern.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/pattern.cc.o.d"
  "/root/repo/src/core/pattern_stats.cc" "src/core/CMakeFiles/lag_core.dir/pattern_stats.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/pattern_stats.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/lag_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/session.cc.o.d"
  "/root/repo/src/core/triggers.cc" "src/core/CMakeFiles/lag_core.dir/triggers.cc.o" "gcc" "src/core/CMakeFiles/lag_core.dir/triggers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lag_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
