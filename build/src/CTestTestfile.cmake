# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("jvm")
subdirs("trace")
subdirs("lila")
subdirs("app")
subdirs("core")
subdirs("engine")
subdirs("viz")
subdirs("report")
