file(REMOVE_RECURSE
  "CMakeFiles/lag_engine.dir/graph.cc.o"
  "CMakeFiles/lag_engine.dir/graph.cc.o.d"
  "CMakeFiles/lag_engine.dir/pool.cc.o"
  "CMakeFiles/lag_engine.dir/pool.cc.o.d"
  "CMakeFiles/lag_engine.dir/result_cache.cc.o"
  "CMakeFiles/lag_engine.dir/result_cache.cc.o.d"
  "CMakeFiles/lag_engine.dir/study_driver.cc.o"
  "CMakeFiles/lag_engine.dir/study_driver.cc.o.d"
  "CMakeFiles/lag_engine.dir/task.cc.o"
  "CMakeFiles/lag_engine.dir/task.cc.o.d"
  "liblag_engine.a"
  "liblag_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
