# Empty dependencies file for lag_engine.
# This may be replaced when dependencies are built.
