
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/graph.cc" "src/engine/CMakeFiles/lag_engine.dir/graph.cc.o" "gcc" "src/engine/CMakeFiles/lag_engine.dir/graph.cc.o.d"
  "/root/repo/src/engine/pool.cc" "src/engine/CMakeFiles/lag_engine.dir/pool.cc.o" "gcc" "src/engine/CMakeFiles/lag_engine.dir/pool.cc.o.d"
  "/root/repo/src/engine/result_cache.cc" "src/engine/CMakeFiles/lag_engine.dir/result_cache.cc.o" "gcc" "src/engine/CMakeFiles/lag_engine.dir/result_cache.cc.o.d"
  "/root/repo/src/engine/study_driver.cc" "src/engine/CMakeFiles/lag_engine.dir/study_driver.cc.o" "gcc" "src/engine/CMakeFiles/lag_engine.dir/study_driver.cc.o.d"
  "/root/repo/src/engine/task.cc" "src/engine/CMakeFiles/lag_engine.dir/task.cc.o" "gcc" "src/engine/CMakeFiles/lag_engine.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lag_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
