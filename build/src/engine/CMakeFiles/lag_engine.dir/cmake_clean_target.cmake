file(REMOVE_RECURSE
  "liblag_engine.a"
)
