# CMake generated Testfile for 
# Source directory: /root/repo/src/engine
# Build directory: /root/repo/build/src/engine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
