file(REMOVE_RECURSE
  "CMakeFiles/lag_report.dir/table.cc.o"
  "CMakeFiles/lag_report.dir/table.cc.o.d"
  "liblag_report.a"
  "liblag_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
