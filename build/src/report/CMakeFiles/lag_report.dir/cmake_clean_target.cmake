file(REMOVE_RECURSE
  "liblag_report.a"
)
