# Empty compiler generated dependencies file for lag_report.
# This may be replaced when dependencies are built.
