
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/background.cc" "src/app/CMakeFiles/lag_app.dir/background.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/background.cc.o.d"
  "/root/repo/src/app/catalog.cc" "src/app/CMakeFiles/lag_app.dir/catalog.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/catalog.cc.o.d"
  "/root/repo/src/app/handlers.cc" "src/app/CMakeFiles/lag_app.dir/handlers.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/handlers.cc.o.d"
  "/root/repo/src/app/params.cc" "src/app/CMakeFiles/lag_app.dir/params.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/params.cc.o.d"
  "/root/repo/src/app/session_runner.cc" "src/app/CMakeFiles/lag_app.dir/session_runner.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/session_runner.cc.o.d"
  "/root/repo/src/app/study.cc" "src/app/CMakeFiles/lag_app.dir/study.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/study.cc.o.d"
  "/root/repo/src/app/user_script.cc" "src/app/CMakeFiles/lag_app.dir/user_script.cc.o" "gcc" "src/app/CMakeFiles/lag_app.dir/user_script.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lag_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lag_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/lag_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/lila/CMakeFiles/lag_lila.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lag_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lag_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lag_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
