file(REMOVE_RECURSE
  "CMakeFiles/lag_app.dir/background.cc.o"
  "CMakeFiles/lag_app.dir/background.cc.o.d"
  "CMakeFiles/lag_app.dir/catalog.cc.o"
  "CMakeFiles/lag_app.dir/catalog.cc.o.d"
  "CMakeFiles/lag_app.dir/handlers.cc.o"
  "CMakeFiles/lag_app.dir/handlers.cc.o.d"
  "CMakeFiles/lag_app.dir/params.cc.o"
  "CMakeFiles/lag_app.dir/params.cc.o.d"
  "CMakeFiles/lag_app.dir/session_runner.cc.o"
  "CMakeFiles/lag_app.dir/session_runner.cc.o.d"
  "CMakeFiles/lag_app.dir/study.cc.o"
  "CMakeFiles/lag_app.dir/study.cc.o.d"
  "CMakeFiles/lag_app.dir/user_script.cc.o"
  "CMakeFiles/lag_app.dir/user_script.cc.o.d"
  "liblag_app.a"
  "liblag_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
