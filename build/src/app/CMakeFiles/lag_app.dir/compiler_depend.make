# Empty compiler generated dependencies file for lag_app.
# This may be replaced when dependencies are built.
