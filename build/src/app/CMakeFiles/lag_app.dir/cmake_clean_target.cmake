file(REMOVE_RECURSE
  "liblag_app.a"
)
