file(REMOVE_RECURSE
  "CMakeFiles/lag_util.dir/logging.cc.o"
  "CMakeFiles/lag_util.dir/logging.cc.o.d"
  "CMakeFiles/lag_util.dir/random.cc.o"
  "CMakeFiles/lag_util.dir/random.cc.o.d"
  "CMakeFiles/lag_util.dir/stats.cc.o"
  "CMakeFiles/lag_util.dir/stats.cc.o.d"
  "CMakeFiles/lag_util.dir/strings.cc.o"
  "CMakeFiles/lag_util.dir/strings.cc.o.d"
  "liblag_util.a"
  "liblag_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lag_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
