# Empty compiler generated dependencies file for lag_util.
# This may be replaced when dependencies are built.
