file(REMOVE_RECURSE
  "liblag_util.a"
)
