# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_random_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_strings_test[1]_include.cmake")
include("/root/repo/build/tests/util_hash_test[1]_include.cmake")
include("/root/repo/build/tests/util_logging_test[1]_include.cmake")
include("/root/repo/build/tests/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_thread_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_heap_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_vm_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_properties_test[1]_include.cmake")
include("/root/repo/build/tests/lila_agent_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/core_session_test[1]_include.cmake")
include("/root/repo/build/tests/core_pattern_test[1]_include.cmake")
include("/root/repo/build/tests/core_analyses_test[1]_include.cmake")
include("/root/repo/build/tests/core_browser_test[1]_include.cmake")
include("/root/repo/build/tests/app_model_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/report_table_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/app_background_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_edge_test[1]_include.cmake")
include("/root/repo/build/tests/core_blame_test[1]_include.cmake")
include("/root/repo/build/tests/core_properties_test[1]_include.cmake")
