file(REMOVE_RECURSE
  "CMakeFiles/lila_agent_test.dir/lila_agent_test.cc.o"
  "CMakeFiles/lila_agent_test.dir/lila_agent_test.cc.o.d"
  "lila_agent_test"
  "lila_agent_test.pdb"
  "lila_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lila_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
