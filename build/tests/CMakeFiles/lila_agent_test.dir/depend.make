# Empty dependencies file for lila_agent_test.
# This may be replaced when dependencies are built.
