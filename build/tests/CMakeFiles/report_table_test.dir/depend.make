# Empty dependencies file for report_table_test.
# This may be replaced when dependencies are built.
