file(REMOVE_RECURSE
  "CMakeFiles/report_table_test.dir/report_table_test.cc.o"
  "CMakeFiles/report_table_test.dir/report_table_test.cc.o.d"
  "report_table_test"
  "report_table_test.pdb"
  "report_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
