file(REMOVE_RECURSE
  "CMakeFiles/core_browser_test.dir/core_browser_test.cc.o"
  "CMakeFiles/core_browser_test.dir/core_browser_test.cc.o.d"
  "core_browser_test"
  "core_browser_test.pdb"
  "core_browser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
