# Empty dependencies file for core_browser_test.
# This may be replaced when dependencies are built.
