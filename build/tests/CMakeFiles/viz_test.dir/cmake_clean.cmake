file(REMOVE_RECURSE
  "CMakeFiles/viz_test.dir/viz_test.cc.o"
  "CMakeFiles/viz_test.dir/viz_test.cc.o.d"
  "viz_test"
  "viz_test.pdb"
  "viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
