file(REMOVE_RECURSE
  "CMakeFiles/core_session_test.dir/core_session_test.cc.o"
  "CMakeFiles/core_session_test.dir/core_session_test.cc.o.d"
  "core_session_test"
  "core_session_test.pdb"
  "core_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
