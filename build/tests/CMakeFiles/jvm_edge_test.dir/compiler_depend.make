# Empty compiler generated dependencies file for jvm_edge_test.
# This may be replaced when dependencies are built.
