file(REMOVE_RECURSE
  "CMakeFiles/jvm_edge_test.dir/jvm_edge_test.cc.o"
  "CMakeFiles/jvm_edge_test.dir/jvm_edge_test.cc.o.d"
  "jvm_edge_test"
  "jvm_edge_test.pdb"
  "jvm_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
