file(REMOVE_RECURSE
  "CMakeFiles/core_analyses_test.dir/core_analyses_test.cc.o"
  "CMakeFiles/core_analyses_test.dir/core_analyses_test.cc.o.d"
  "core_analyses_test"
  "core_analyses_test.pdb"
  "core_analyses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_analyses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
