# Empty compiler generated dependencies file for core_analyses_test.
# This may be replaced when dependencies are built.
