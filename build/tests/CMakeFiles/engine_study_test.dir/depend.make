# Empty dependencies file for engine_study_test.
# This may be replaced when dependencies are built.
