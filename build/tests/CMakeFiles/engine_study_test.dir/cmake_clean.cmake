file(REMOVE_RECURSE
  "CMakeFiles/engine_study_test.dir/engine_study_test.cc.o"
  "CMakeFiles/engine_study_test.dir/engine_study_test.cc.o.d"
  "engine_study_test"
  "engine_study_test.pdb"
  "engine_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
