# Empty compiler generated dependencies file for jvm_monitor_test.
# This may be replaced when dependencies are built.
