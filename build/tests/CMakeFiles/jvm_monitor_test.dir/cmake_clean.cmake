file(REMOVE_RECURSE
  "CMakeFiles/jvm_monitor_test.dir/jvm_monitor_test.cc.o"
  "CMakeFiles/jvm_monitor_test.dir/jvm_monitor_test.cc.o.d"
  "jvm_monitor_test"
  "jvm_monitor_test.pdb"
  "jvm_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
