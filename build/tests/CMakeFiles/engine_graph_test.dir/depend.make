# Empty dependencies file for engine_graph_test.
# This may be replaced when dependencies are built.
