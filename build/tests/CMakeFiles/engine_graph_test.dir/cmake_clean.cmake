file(REMOVE_RECURSE
  "CMakeFiles/engine_graph_test.dir/engine_graph_test.cc.o"
  "CMakeFiles/engine_graph_test.dir/engine_graph_test.cc.o.d"
  "engine_graph_test"
  "engine_graph_test.pdb"
  "engine_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
