file(REMOVE_RECURSE
  "CMakeFiles/app_background_test.dir/app_background_test.cc.o"
  "CMakeFiles/app_background_test.dir/app_background_test.cc.o.d"
  "app_background_test"
  "app_background_test.pdb"
  "app_background_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_background_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
