# Empty dependencies file for app_background_test.
# This may be replaced when dependencies are built.
