# Empty compiler generated dependencies file for jvm_thread_test.
# This may be replaced when dependencies are built.
