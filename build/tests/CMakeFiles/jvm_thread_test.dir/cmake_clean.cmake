file(REMOVE_RECURSE
  "CMakeFiles/jvm_thread_test.dir/jvm_thread_test.cc.o"
  "CMakeFiles/jvm_thread_test.dir/jvm_thread_test.cc.o.d"
  "jvm_thread_test"
  "jvm_thread_test.pdb"
  "jvm_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
