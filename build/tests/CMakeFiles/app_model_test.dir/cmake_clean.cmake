file(REMOVE_RECURSE
  "CMakeFiles/app_model_test.dir/app_model_test.cc.o"
  "CMakeFiles/app_model_test.dir/app_model_test.cc.o.d"
  "app_model_test"
  "app_model_test.pdb"
  "app_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
