# Empty compiler generated dependencies file for app_model_test.
# This may be replaced when dependencies are built.
