file(REMOVE_RECURSE
  "CMakeFiles/jvm_heap_test.dir/jvm_heap_test.cc.o"
  "CMakeFiles/jvm_heap_test.dir/jvm_heap_test.cc.o.d"
  "jvm_heap_test"
  "jvm_heap_test.pdb"
  "jvm_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
