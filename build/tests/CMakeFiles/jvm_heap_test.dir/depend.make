# Empty dependencies file for jvm_heap_test.
# This may be replaced when dependencies are built.
