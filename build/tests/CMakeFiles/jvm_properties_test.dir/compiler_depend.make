# Empty compiler generated dependencies file for jvm_properties_test.
# This may be replaced when dependencies are built.
