file(REMOVE_RECURSE
  "CMakeFiles/jvm_properties_test.dir/jvm_properties_test.cc.o"
  "CMakeFiles/jvm_properties_test.dir/jvm_properties_test.cc.o.d"
  "jvm_properties_test"
  "jvm_properties_test.pdb"
  "jvm_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
