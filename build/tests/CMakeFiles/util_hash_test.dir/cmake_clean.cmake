file(REMOVE_RECURSE
  "CMakeFiles/util_hash_test.dir/util_hash_test.cc.o"
  "CMakeFiles/util_hash_test.dir/util_hash_test.cc.o.d"
  "util_hash_test"
  "util_hash_test.pdb"
  "util_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
