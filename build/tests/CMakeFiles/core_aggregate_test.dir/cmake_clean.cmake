file(REMOVE_RECURSE
  "CMakeFiles/core_aggregate_test.dir/core_aggregate_test.cc.o"
  "CMakeFiles/core_aggregate_test.dir/core_aggregate_test.cc.o.d"
  "core_aggregate_test"
  "core_aggregate_test.pdb"
  "core_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
