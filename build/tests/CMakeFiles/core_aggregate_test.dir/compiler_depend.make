# Empty compiler generated dependencies file for core_aggregate_test.
# This may be replaced when dependencies are built.
