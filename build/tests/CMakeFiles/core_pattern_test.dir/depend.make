# Empty dependencies file for core_pattern_test.
# This may be replaced when dependencies are built.
