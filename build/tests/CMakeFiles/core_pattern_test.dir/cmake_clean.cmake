file(REMOVE_RECURSE
  "CMakeFiles/core_pattern_test.dir/core_pattern_test.cc.o"
  "CMakeFiles/core_pattern_test.dir/core_pattern_test.cc.o.d"
  "core_pattern_test"
  "core_pattern_test.pdb"
  "core_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
