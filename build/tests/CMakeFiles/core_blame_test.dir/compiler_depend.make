# Empty compiler generated dependencies file for core_blame_test.
# This may be replaced when dependencies are built.
