file(REMOVE_RECURSE
  "CMakeFiles/core_blame_test.dir/core_blame_test.cc.o"
  "CMakeFiles/core_blame_test.dir/core_blame_test.cc.o.d"
  "core_blame_test"
  "core_blame_test.pdb"
  "core_blame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_blame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
