# Empty dependencies file for jvm_vm_test.
# This may be replaced when dependencies are built.
