file(REMOVE_RECURSE
  "CMakeFiles/jvm_vm_test.dir/jvm_vm_test.cc.o"
  "CMakeFiles/jvm_vm_test.dir/jvm_vm_test.cc.o.d"
  "jvm_vm_test"
  "jvm_vm_test.pdb"
  "jvm_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
