file(REMOVE_RECURSE
  "CMakeFiles/engine_pool_test.dir/engine_pool_test.cc.o"
  "CMakeFiles/engine_pool_test.dir/engine_pool_test.cc.o.d"
  "engine_pool_test"
  "engine_pool_test.pdb"
  "engine_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
