# Empty dependencies file for engine_pool_test.
# This may be replaced when dependencies are built.
