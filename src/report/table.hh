/**
 * @file
 * Aligned text tables and CSV output for the bench harnesses.
 *
 * The benches print the paper's tables next to the measured values;
 * TextTable handles column sizing and alignment, and the same data
 * can be exported as CSV for downstream plotting.
 */

#ifndef LAG_REPORT_TABLE_HH
#define LAG_REPORT_TABLE_HH

#include <string>
#include <vector>

namespace lag::report
{

/** Column alignment. */
enum class Align
{
    Left,
    Right,
};

/** A simple text table builder. */
class TextTable
{
  public:
    /** Define a column; call once per column before adding rows. */
    void addColumn(std::string header, Align align = Align::Right);

    /** Append a row; must have exactly one cell per column. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render with padded columns and a header rule. */
    std::string render() const;

    /** Render as CSV (headers first; separators are skipped). */
    std::string renderCsv() const;

    std::size_t columnCount() const { return headers_.size(); }
    std::size_t rowCount() const { return rows_.size(); }

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

} // namespace lag::report

#endif // LAG_REPORT_TABLE_HH
