#include "table.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace lag::report
{

void
TextTable::addColumn(std::string header, Align align)
{
    lag_assert(rows_.empty(), "columns must be defined before rows");
    headers_.push_back(std::move(header));
    aligns_.push_back(align);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    lag_assert(cells.size() == headers_.size(), "row has ",
               cells.size(), " cells, table has ", headers_.size(),
               " columns");
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    const auto emit_cells =
        [&](std::ostringstream &out,
            const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c) {
                if (c > 0)
                    out << "  ";
                const std::size_t pad = widths[c] - cells[c].size();
                if (aligns_[c] == Align::Right)
                    out << std::string(pad, ' ') << cells[c];
                else
                    out << cells[c] << std::string(pad, ' ');
            }
            out << '\n';
        };

    std::ostringstream out;
    emit_cells(out, headers_);
    std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
    for (const std::size_t w : widths)
        total += w;
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        if (row.separator)
            out << std::string(total, '-') << '\n';
        else
            emit_cells(out, row.cells);
    }
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    const auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (char c : cell) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };

    std::ostringstream out;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        if (c > 0)
            out << ',';
        out << quote(headers_[c]);
    }
    out << '\n';
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            if (c > 0)
                out << ',';
            out << quote(row.cells[c]);
        }
        out << '\n';
    }
    return out.str();
}

} // namespace lag::report
