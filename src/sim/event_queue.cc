#include "event_queue.hh"

#include "util/logging.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::sim
{

namespace
{

Mutex g_statsMutex{LockRank::SimStats, "sim-kernel-stats"};
KernelStats g_stats LAG_GUARDED_BY(g_statsMutex);

/** Fold one runUntil() batch into the process-wide totals. One
 * lock round-trip per batch, not per event, keeps this off the
 * simulation hot path. */
void
addBatch(std::uint64_t serviced)
{
    MutexLock lock(g_statsMutex);
    g_stats.eventsServiced += serviced;
    ++g_stats.runCalls;
}

} // namespace

KernelStats
kernelStats()
{
    MutexLock lock(g_statsMutex);
    return g_stats;
}

void
resetKernelStats()
{
    MutexLock lock(g_statsMutex);
    g_stats = KernelStats{};
}

EventId
EventQueue::schedule(TimeNs when, EventFn fn, EventPriority prio)
{
    lag_assert(when >= now_, "event scheduled in the past: when=", when,
               " now=", now_);
    lag_assert(fn != nullptr, "event callback must not be null");
    const EventId id = next_id_++;
    heap_.push(Entry{when, prio, next_seq_++, id});
    pending_fns_.emplace(id, std::move(fn));
    ++live_;
    return id;
}

EventId
EventQueue::scheduleAfter(DurationNs delay, EventFn fn, EventPriority prio)
{
    lag_assert(delay >= 0, "negative event delay: ", delay);
    return schedule(now_ + delay, std::move(fn), prio);
}

bool
EventQueue::cancel(EventId id)
{
    const auto it = pending_fns_.find(id);
    if (it == pending_fns_.end())
        return false;
    pending_fns_.erase(it);
    --live_;
    return true;
}

bool
EventQueue::popNext(Entry &out)
{
    while (!heap_.empty()) {
        Entry top = heap_.top();
        if (pending_fns_.find(top.id) == pending_fns_.end()) {
            heap_.pop(); // cancelled; discard lazily
            continue;
        }
        out = top;
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(TimeNs until)
{
    std::uint64_t fired = 0;
    Entry next;
    while (popNext(next)) {
        if (next.when > until)
            break;
        heap_.pop();
        auto it = pending_fns_.find(next.id);
        EventFn fn = std::move(it->second);
        pending_fns_.erase(it);
        --live_;
        now_ = next.when;
        ++serviced_;
        ++fired;
        fn();
    }
    if (now_ < until)
        now_ = until;
    addBatch(fired);
    return fired;
}

bool
EventQueue::step()
{
    Entry next;
    if (!popNext(next))
        return false;
    heap_.pop();
    auto it = pending_fns_.find(next.id);
    EventFn fn = std::move(it->second);
    pending_fns_.erase(it);
    --live_;
    now_ = next.when;
    ++serviced_;
    fn();
    return true;
}

} // namespace lag::sim
