/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal, deterministic event queue: events fire in (time,
 * priority, insertion-order) order, so two runs with identical inputs
 * produce identical schedules. The simulated JVM, the user-session
 * scripts and the stack sampler are all built on this kernel.
 */

#ifndef LAG_SIM_EVENT_QUEUE_HH
#define LAG_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace lag::sim
{

/** Callback invoked when a scheduled event fires. */
using EventFn = std::function<void()>;

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Priority of simultaneous events; lower values fire first. The JVM
 * uses this to order, e.g., a GC safepoint release before the next
 * scheduler tick at the same instant.
 */
enum class EventPriority : std::uint8_t
{
    High = 0,
    Normal = 1,
    Low = 2,
};

/**
 * Process-wide simulation-kernel counters, aggregated across every
 * EventQueue. One study runs many sessions concurrently on the
 * engine pool, each with its own (single-threaded) queue; these
 * totals are the only state the queues share, and they are guarded
 * by an annotated mutex (LockRank::SimStats). Totals are
 * deterministic once the driving pool is idle; snapshots taken
 * mid-run race only with their own staleness, never with a data
 * race.
 */
struct KernelStats
{
    /** Events serviced by runUntil()/step() across all queues. */
    std::uint64_t eventsServiced = 0;

    /** runUntil() invocations across all queues. */
    std::uint64_t runCalls = 0;
};

/** Snapshot of the process-wide kernel counters. */
KernelStats kernelStats();

/** Reset the process-wide kernel counters (tests). */
void resetKernelStats();

/**
 * Deterministic time-ordered event queue with cancellation.
 *
 * Cancellation is lazy: cancelled entries stay in the heap and are
 * skipped when popped, which keeps schedule() and cancel() O(log n)
 * without a secondary index into the heap.
 */
class EventQueue
{
  public:
    /** Current simulated time; advances as events are serviced. */
    TimeNs now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p when (>= now).
     * @return a handle usable with cancel().
     */
    EventId schedule(TimeNs when, EventFn fn,
                     EventPriority prio = EventPriority::Normal);

    /** Schedule @p fn at now() + @p delay. */
    EventId scheduleAfter(DurationNs delay, EventFn fn,
                          EventPriority prio = EventPriority::Normal);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown
     * id is a no-op and returns false.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live (not cancelled, not fired) events. */
    std::size_t pending() const { return live_; }

    /**
     * Service events until the queue is empty or simulated time would
     * exceed @p until. Events scheduled exactly at @p until do fire.
     * Afterwards now() == min(until, time of last event serviced
     * beyond which nothing is pending); runUntil never moves time
     * backwards.
     * @return number of events serviced.
     */
    std::uint64_t runUntil(TimeNs until);

    /** Service a single event if one is pending. @return fired? */
    bool step();

    /** Total events serviced over the queue's lifetime. */
    std::uint64_t servicedCount() const { return serviced_; }

  private:
    struct Entry
    {
        TimeNs when;
        EventPriority prio;
        std::uint64_t seq;
        EventId id;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Pop the next live entry; false when none remain. */
    bool popNext(Entry &out);

    TimeNs now_ = 0;
    std::uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    std::size_t live_ = 0;
    std::uint64_t serviced_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    // Callbacks and liveness are kept out of the heap entries so that
    // cancel() does not need to touch the heap; an entry whose id is
    // no longer in this map is dead and skipped on pop.
    std::unordered_map<EventId, EventFn> pending_fns_;
};

} // namespace lag::sim

#endif // LAG_SIM_EVENT_QUEUE_HH
