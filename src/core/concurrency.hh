/**
 * @file
 * Concurrency and GUI-thread state analyses (§IV.E, Figures 7–8).
 *
 * Both analyses work on the call-stack samples taken during
 * episodes:
 *
 *  - concurrency: the mean number of runnable threads per sample —
 *    exactly 1 means only the GUI thread was runnable, below 1 means
 *    the GUI thread was sometimes blocked/waiting/sleeping, above 1
 *    means background threads competed for the cores;
 *  - GUI-thread states: the fraction of samples in which the GUI
 *    thread was blocked on a monitor, waiting (Object.wait /
 *    LockSupport.park), sleeping (Thread.sleep), or runnable.
 */

#ifndef LAG_CORE_CONCURRENCY_HH
#define LAG_CORE_CONCURRENCY_HH

#include <array>

#include "session.hh"

namespace lag::core
{

/** Figure 7: mean runnable thread count per in-episode sample. */
struct ConcurrencyResult
{
    double meanRunnableAll = 0.0;
    double meanRunnablePerceptible = 0.0;
    std::size_t samplesAll = 0;
    std::size_t samplesPerceptible = 0;
};

/**
 * Integer partial of the concurrency analysis over an episode
 * range; partials over disjoint ranges merge by addition.
 */
struct ConcurrencyCounts
{
    std::uint64_t runnableAll = 0;
    std::uint64_t runnablePerceptible = 0;
    std::size_t samplesAll = 0;
    std::size_t samplesPerceptible = 0;

    void
    merge(const ConcurrencyCounts &other)
    {
        runnableAll += other.runnableAll;
        runnablePerceptible += other.runnablePerceptible;
        samplesAll += other.samplesAll;
        samplesPerceptible += other.samplesPerceptible;
    }
};

/** Tally runnable-thread counts over episodes [begin, end). */
ConcurrencyCounts countConcurrency(const Session &session,
                                   std::size_t begin, std::size_t end,
                                   DurationNs perceptible_threshold);

/** Turn merged counts into means. */
ConcurrencyResult finishConcurrency(const ConcurrencyCounts &counts);

/** Run the concurrency analysis on a session. */
ConcurrencyResult analyzeConcurrency(const Session &session,
                                     DurationNs perceptible_threshold);

/** Shares of GUI-thread states over one episode set; the four
 * fractions sum to 1 when samples exist. */
struct GuiStateShares
{
    double blocked = 0.0;
    double waiting = 0.0;
    double sleeping = 0.0;
    double runnable = 0.0;
    std::size_t sampleCount = 0;
};

/** Figure 8's two graphs. */
struct ThreadStateResult
{
    GuiStateShares all;
    GuiStateShares perceptible;
};

/**
 * Integer partial of the GUI-thread state analysis over an episode
 * range; partials over disjoint ranges merge by addition.
 */
struct GuiStateCounts
{
    std::array<std::size_t, 4> all{};         ///< by TraceThreadState
    std::array<std::size_t, 4> perceptible{}; ///< by TraceThreadState

    void
    merge(const GuiStateCounts &other)
    {
        for (std::size_t i = 0; i < all.size(); ++i) {
            all[i] += other.all[i];
            perceptible[i] += other.perceptible[i];
        }
    }
};

/** Tally GUI-thread states over episodes [begin, end). */
GuiStateCounts countGuiStates(const Session &session,
                              std::size_t begin, std::size_t end,
                              DurationNs perceptible_threshold);

/** Turn merged counts into shares. */
ThreadStateResult finishGuiStates(const GuiStateCounts &counts);

/** Run the GUI-thread state analysis on a session. */
ThreadStateResult analyzeGuiStates(const Session &session,
                                   DurationNs perceptible_threshold);

} // namespace lag::core

#endif // LAG_CORE_CONCURRENCY_HH
