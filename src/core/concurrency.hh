/**
 * @file
 * Concurrency and GUI-thread state analyses (§IV.E, Figures 7–8).
 *
 * Both analyses work on the call-stack samples taken during
 * episodes:
 *
 *  - concurrency: the mean number of runnable threads per sample —
 *    exactly 1 means only the GUI thread was runnable, below 1 means
 *    the GUI thread was sometimes blocked/waiting/sleeping, above 1
 *    means background threads competed for the cores;
 *  - GUI-thread states: the fraction of samples in which the GUI
 *    thread was blocked on a monitor, waiting (Object.wait /
 *    LockSupport.park), sleeping (Thread.sleep), or runnable.
 */

#ifndef LAG_CORE_CONCURRENCY_HH
#define LAG_CORE_CONCURRENCY_HH

#include "session.hh"

namespace lag::core
{

/** Figure 7: mean runnable thread count per in-episode sample. */
struct ConcurrencyResult
{
    double meanRunnableAll = 0.0;
    double meanRunnablePerceptible = 0.0;
    std::size_t samplesAll = 0;
    std::size_t samplesPerceptible = 0;
};

/** Run the concurrency analysis on a session. */
ConcurrencyResult analyzeConcurrency(const Session &session,
                                     DurationNs perceptible_threshold);

/** Shares of GUI-thread states over one episode set; the four
 * fractions sum to 1 when samples exist. */
struct GuiStateShares
{
    double blocked = 0.0;
    double waiting = 0.0;
    double sleeping = 0.0;
    double runnable = 0.0;
    std::size_t sampleCount = 0;
};

/** Figure 8's two graphs. */
struct ThreadStateResult
{
    GuiStateShares all;
    GuiStateShares perceptible;
};

/** Run the GUI-thread state analysis on a session. */
ThreadStateResult analyzeGuiStates(const Session &session,
                                   DurationNs perceptible_threshold);

} // namespace lag::core

#endif // LAG_CORE_CONCURRENCY_HH
