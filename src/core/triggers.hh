/**
 * @file
 * Trigger analysis: input, output, or asynchronous events (§IV.C).
 *
 * The trigger of an episode is determined by a preorder traversal of
 * its interval tree: the first Listener interval means the episode
 * handled user input; the first Paint interval means it produced
 * output; the first Async interval means it handled a notification
 * from a background thread. Episodes with none of these (no children
 * at all, or none that survived the profiler's 3 ms filter) are
 * unspecified.
 *
 * Swing's repaint manager enqueues repaints in a way that makes some
 * output episodes look asynchronous; following the paper's footnote,
 * an Async trigger whose first nested interval is a Paint is
 * reclassified as output.
 */

#ifndef LAG_CORE_TRIGGERS_HH
#define LAG_CORE_TRIGGERS_HH

#include <array>
#include <cstdint>

#include "flat_tree.hh"
#include "session.hh"

namespace lag::core
{

/** Episode trigger category. */
enum class TriggerKind : std::uint8_t
{
    Input = 0,
    Output = 1,
    Async = 2,
    Unspecified = 3,
};

/** Human-readable name of a trigger kind. */
const char *triggerKindName(TriggerKind kind);

/** Classify one episode by its interval tree. */
TriggerKind episodeTrigger(const IntervalNode &root);

/**
 * Classify one episode on the flat layout; identical to
 * episodeTrigger on the corresponding node tree.  The preorder
 * marker search becomes a byte scan of the type array over the
 * root's slice (SIMD-accelerated under LAG_SIMD, see flat_simd.hh).
 */
TriggerKind flatEpisodeTrigger(const FlatTree &tree,
                               std::uint32_t root);

/** Trigger shares over a set of episodes (fractions sum to 1). */
struct TriggerShares
{
    double input = 0.0;
    double output = 0.0;
    double async = 0.0;
    double unspecified = 0.0;
    std::size_t episodeCount = 0;
};

/** Result over all episodes and over perceptible episodes only,
 * matching the two graphs of Figure 5. */
struct TriggerAnalysisResult
{
    TriggerShares all;
    TriggerShares perceptible;
};

/**
 * Integer partial of the trigger analysis over an episode range.
 * Partials over disjoint ranges merge by addition, so any contiguous
 * sharding finishes to the exact bytes of the serial analysis.
 */
struct TriggerCounts
{
    std::array<std::size_t, 4> all{};         ///< by TriggerKind
    std::array<std::size_t, 4> perceptible{}; ///< by TriggerKind

    void
    merge(const TriggerCounts &other)
    {
        for (std::size_t i = 0; i < all.size(); ++i) {
            all[i] += other.all[i];
            perceptible[i] += other.perceptible[i];
        }
    }
};

/** Tally triggers over episodes [begin, end). */
TriggerCounts countTriggers(const Session &session, std::size_t begin,
                            std::size_t end,
                            DurationNs perceptible_threshold);

/** Flat-tree overload of countTriggers; byte-identical counts.
 * @p flat must be flattenSession(session). */
TriggerCounts countTriggers(const Session &session,
                            const FlatSession &flat, std::size_t begin,
                            std::size_t end,
                            DurationNs perceptible_threshold);

/** Turn merged counts into shares. */
TriggerAnalysisResult finishTriggers(const TriggerCounts &counts);

/** Run the trigger analysis on a session. */
TriggerAnalysisResult analyzeTriggers(const Session &session,
                                      DurationNs perceptible_threshold);

} // namespace lag::core

#endif // LAG_CORE_TRIGGERS_HH
