/**
 * @file
 * Structure-of-arrays flattening of a session's interval trees.
 *
 * The node tree (interval.hh) is the build-time representation:
 * vectors of vectors, one heap (or arena) object per child list,
 * walked by pointer-chasing recursion.  Every analysis stage walks
 * those trees once per episode, so after the zero-copy decode and
 * the incremental cache the scalar walks dominate a warm analysis
 * pass.  FlatTree re-stores one thread's whole forest as parallel
 * arrays in DFS preorder:
 *
 *     begin[] end[] type[] classSym[] methodSym[] gcKind[]
 *     subtreeEnd[]   — one past the last descendant of node i
 *
 * Preorder plus `subtreeEnd` turns any subtree into the contiguous
 * index slice [i, subtreeEnd[i]): descendant counts become index
 * arithmetic, preorder searches become linear scans over a byte
 * array (SIMD-friendly; see flat_simd.hh), and type-time walks
 * become branchy-but-local loops instead of recursion.  GC nodes
 * are leaves in every Session::fromTrace tree, so per-node GC
 * count/time prefix sums additionally make "GC time under this
 * subtree" an O(1) subtraction; trees where a GC node has children
 * (hand-built inputs) fall back to the general scan.
 *
 * The arrays live in a FlatSession-owned bump arena by default
 * (mirroring SessionBuildOptions), sized exactly up front, so
 * flattening composes with Session::fromTrace without adding heap
 * churn.  Flattening is iterative by construction — an explicit
 * stack, never the C stack — so hostile nesting depth cannot
 * overflow anything here.
 *
 * Every flat operation is the exact semantic twin of a node-tree
 * walk; the node implementations remain as the differentially
 * tested reference (tests/core_flat_tree_test.cc and the engine
 * equivalence suite assert byte-identical analysis output).
 */

#ifndef LAG_CORE_FLAT_TREE_HH
#define LAG_CORE_FLAT_TREE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interval.hh"
#include "session.hh"
#include "util/arena.hh"
#include "util/types.hh"

namespace lag::core
{

/** Vector type of the flat arrays; default-constructed = heap. */
template <typename T>
using FlatVec = std::vector<T, ArenaAllocator<T>>;

/** One thread's interval forest in structure-of-arrays preorder. */
struct FlatTree
{
    FlatTree() = default;

    /** Seed every array from @p arena (null = global heap). */
    explicit FlatTree(Arena *arena)
        : begin(ArenaAllocator<TimeNs>(arena)),
          end(ArenaAllocator<TimeNs>(arena)),
          subtreeEnd(ArenaAllocator<std::uint32_t>(arena)),
          classSym(ArenaAllocator<SymbolId>(arena)),
          methodSym(ArenaAllocator<SymbolId>(arena)),
          type(ArenaAllocator<std::uint8_t>(arena)),
          gcKind(ArenaAllocator<std::uint8_t>(arena)),
          roots(ArenaAllocator<std::uint32_t>(arena)),
          gcCountBefore(ArenaAllocator<std::uint32_t>(arena)),
          gcTimeBefore(ArenaAllocator<DurationNs>(arena))
    {
    }

    /** @name Parallel per-node arrays (DFS preorder). @{ */
    FlatVec<TimeNs> begin;
    FlatVec<TimeNs> end;
    FlatVec<std::uint32_t> subtreeEnd; ///< one past last descendant
    FlatVec<SymbolId> classSym;
    FlatVec<SymbolId> methodSym;
    FlatVec<std::uint8_t> type;   ///< IntervalType
    FlatVec<std::uint8_t> gcKind; ///< trace::TraceGcKind
    /** @} */

    /** Flat index of each root, in root (= time) order. */
    FlatVec<std::uint32_t> roots;

    /** Prefix sums over nodes [0, i): number of GC nodes and total
     * GC duration.  Size node count + 1.  Valid as subtree
     * aggregates only while gcLeavesOnly holds. */
    FlatVec<std::uint32_t> gcCountBefore;
    FlatVec<DurationNs> gcTimeBefore;

    /** True when every GC node is a leaf (always, for trees built
     * by Session::fromTrace); enables the O(1) GC aggregates. */
    bool gcLeavesOnly = true;

    std::size_t size() const { return begin.size(); }

    DurationNs
    duration(std::uint32_t i) const
    {
        return end[i] - begin[i];
    }

    IntervalType
    typeOf(std::uint32_t i) const
    {
        return static_cast<IntervalType>(type[i]);
    }

    /** Nodes in the subtree rooted at @p i, including @p i. */
    std::uint32_t
    subtreeSize(std::uint32_t i) const
    {
        return subtreeEnd[i] - i;
    }

    /** GC nodes inside [i, subtreeEnd[i]) excluding @p i itself. */
    std::uint32_t
    gcCountIn(std::uint32_t i) const
    {
        return gcCountBefore[subtreeEnd[i]] - gcCountBefore[i + 1];
    }

    /** Total duration of GC nodes below @p i (gcLeavesOnly only). */
    DurationNs
    gcTimeIn(std::uint32_t i) const
    {
        return gcTimeBefore[subtreeEnd[i]] - gcTimeBefore[i + 1];
    }
};

/**
 * All per-thread flat trees of one session plus the episode-to-node
 * index, built once per analysis pass by flattenSession().  Owns
 * the arena its arrays live in; move-only for exactly that reason.
 */
class FlatSession
{
  public:
    FlatSession() = default;
    FlatSession(FlatSession &&) noexcept = default;
    FlatSession &operator=(FlatSession &&) noexcept = default;
    FlatSession(const FlatSession &) = delete;
    FlatSession &operator=(const FlatSession &) = delete;

    /** Flat trees, parallel to Session::threads(). */
    const std::vector<FlatTree> &trees() const { return trees_; }

    /** Tree index of episode @p e (parallel to episodes()). */
    std::uint32_t
    episodeTree(std::size_t e) const
    {
        return episodeTree_[e];
    }

    /** Flat root-node index of episode @p e. */
    std::uint32_t
    episodeNode(std::size_t e) const
    {
        return episodeNode_[e];
    }

    /** Arena backing the arrays; null for heap builds. */
    const Arena *arena() const { return arena_.get(); }

  private:
    friend FlatSession flattenSession(const Session &session,
                                      bool use_arena);

    // Destroyed last: the trees' arrays live inside it.
    std::unique_ptr<Arena> arena_;
    std::vector<FlatTree> trees_;
    std::vector<std::uint32_t> episodeTree_;
    std::vector<std::uint32_t> episodeNode_;
};

/**
 * Flatten every thread tree of @p session.  Node counts are taken
 * from a sizing pre-pass so each array is reserved exactly; with
 * @p use_arena (the default) the arrays bump-allocate from a
 * session-independent arena owned by the result.
 */
FlatSession flattenSession(const Session &session,
                           bool use_arena = true);

/**
 * Flatten one interval forest (iteratively — safe at any nesting
 * depth).  The building block of flattenSession, exposed so tests
 * and benchmarks can flatten hand-built trees without a Session.
 * @p arena may be null (global heap).
 */
FlatTree flattenForest(const IntervalVec &roots,
                       Arena *arena = nullptr);

/** @name Flat walks — semantic twins of the IntervalNode methods.
 * All take a tree and a flat node index; @c descendantCount is pure
 * index arithmetic, the rest are linear scans over the slice.
 * @{ */

/** Number of descendants of @p i (excluding @p i). */
inline std::size_t
flatDescendantCount(const FlatTree &tree, std::uint32_t i)
{
    return tree.subtreeSize(i) - 1;
}

/** Depth of the subtree at @p i; a leaf has depth 1. */
std::size_t flatDepth(const FlatTree &tree, std::uint32_t i);

/** Total duration of descendants of @p i with @p wanted type,
 * never descending into a matching node (IntervalNode::typeTime).
 * GC queries are O(1) via the prefix sums when gcLeavesOnly. */
DurationNs flatTypeTime(const FlatTree &tree, std::uint32_t i,
                        IntervalType wanted);

/** Non-GC descendants of @p i (pattern.cc's nonGcDescendants). */
std::size_t flatNonGcDescendants(const FlatTree &tree,
                                 std::uint32_t i);

/** Depth of the subtree at @p i ignoring GC nodes; a leaf is 1. */
std::size_t flatNonGcDepth(const FlatTree &tree, std::uint32_t i);

/** @} */

/** @name Flat signature emission.
 * The canonical structural signature (pattern.hh) emitted straight
 * from the flat slice: hash-only for the per-episode hot path (no
 * intermediate string), string materialization for first-seen
 * patterns, and an id-level structural comparison that decides
 * signature equality without touching either string.
 * @{ */

/** One frame of the iterative signature walk (a child range plus
 * whether its '(' has been emitted). */
struct FlatSigFrame
{
    std::uint32_t cursor = 0;
    std::uint32_t end = 0;
    bool opened = false;
};

/** Reusable walk stack: pass the same one across episodes and the
 * per-episode emission allocates nothing. */
using FlatSigStack = std::vector<FlatSigFrame>;

/**
 * FNV-1a 64 of patternSignature(node, strings) computed in one pass
 * over the slice, with no intermediate string.  @p i must not be a
 * GC node.
 */
std::uint64_t flatSignatureHash(const FlatTree &tree,
                                std::uint32_t i,
                                const trace::StringTable &strings,
                                FlatSigStack &scratch);

/** Append the signature of @p i to @p out — byte-identical to
 * patternSignature(node, strings). */
void flatSignatureString(const FlatTree &tree, std::uint32_t i,
                         const trace::StringTable &strings,
                         std::string &out, FlatSigStack &scratch);

/** Convenience one-shot forms (own scratch per call). */
std::uint64_t flatSignatureHash(const FlatTree &tree,
                                std::uint32_t i,
                                const trace::StringTable &strings);
std::string flatSignatureString(const FlatTree &tree,
                                std::uint32_t i,
                                const trace::StringTable &strings);

/**
 * True when the subtrees at @p ia / @p ib have identical non-GC
 * structure and identical (type, classSym, methodSym) per node.
 * Within one session symbol ids are interned uniquely, so id-level
 * equality implies signature-string equality (the converse can fail
 * for pathological symbol strings; mining falls back to a string
 * comparison in that case).
 */
bool flatStructureEquals(const FlatTree &a, std::uint32_t ia,
                         const FlatTree &b, std::uint32_t ib);

/** @} */

} // namespace lag::core

#endif // LAG_CORE_FLAT_TREE_HH
