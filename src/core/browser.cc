#include "browser.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lag::core
{

PatternBrowserModel::PatternBrowserModel(const Session &session,
                                         const PatternSet &patterns)
    : session_(session), patterns_(patterns)
{
    rebuildVisible();
}

void
PatternBrowserModel::setPerceptibleOnly(bool enabled)
{
    if (perceptible_only_ == enabled)
        return;
    perceptible_only_ = enabled;
    rebuildVisible();
    if (has_selection_) {
        // Drop the selection if its pattern was filtered away.
        const bool still_visible =
            std::find(visible_.begin(), visible_.end(),
                      selected_pattern_) != visible_.end();
        if (!still_visible)
            has_selection_ = false;
    }
}

void
PatternBrowserModel::rebuildVisible()
{
    visible_.clear();
    visible_.reserve(patterns_.patterns.size());
    for (std::size_t i = 0; i < patterns_.patterns.size(); ++i) {
        if (perceptible_only_ &&
            patterns_.patterns[i].perceptibleCount == 0) {
            continue;
        }
        visible_.push_back(i);
    }
}

void
PatternBrowserModel::selectRow(std::size_t row)
{
    lag_assert(row < visible_.size(), "browser row ", row,
               " out of range (", visible_.size(), " visible)");
    has_selection_ = true;
    selected_pattern_ = visible_[row];
    episode_pos_ = 0;
}

bool
PatternBrowserModel::hasSelection() const
{
    return has_selection_;
}

const Pattern &
PatternBrowserModel::selectedPattern() const
{
    lag_assert(has_selection_, "no pattern selected");
    return patterns_.patterns[selected_pattern_];
}

const Episode &
PatternBrowserModel::currentEpisode() const
{
    const Pattern &pattern = selectedPattern();
    lag_assert(episode_pos_ < pattern.episodes.size(),
               "episode position out of range");
    return session_.episodes()[pattern.episodes[episode_pos_]];
}

void
PatternBrowserModel::nextEpisode()
{
    const Pattern &pattern = selectedPattern();
    if (episode_pos_ + 1 < pattern.episodes.size())
        ++episode_pos_;
}

void
PatternBrowserModel::prevEpisode()
{
    lag_assert(has_selection_, "no pattern selected");
    if (episode_pos_ > 0)
        --episode_pos_;
}

} // namespace lag::core
