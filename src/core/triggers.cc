#include "triggers.hh"

#include "flat_simd.hh"

namespace lag::core
{

namespace
{

/**
 * Preorder search for the first Listener/Paint/Async interval below
 * @p node. Returns nullptr when the subtree has none.
 */
const IntervalNode *
firstMarker(const IntervalNode &node, std::size_t nesting = 0)
{
    if (nesting >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Listener ||
            child.type == IntervalType::Paint ||
            child.type == IntervalType::Async) {
            return &child;
        }
        // Descend through Native and GC-free structure; GC children
        // have no descendants relevant here.
        if (const IntervalNode *found =
                firstMarker(child, nesting + 1))
            return found;
    }
    return nullptr;
}

} // namespace

const char *
triggerKindName(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::Input:       return "input";
      case TriggerKind::Output:      return "output";
      case TriggerKind::Async:       return "async";
      case TriggerKind::Unspecified: return "unspecified";
    }
    return "?";
}

TriggerKind
episodeTrigger(const IntervalNode &root)
{
    const IntervalNode *marker = firstMarker(root);
    if (marker == nullptr)
        return TriggerKind::Unspecified;
    switch (marker->type) {
      case IntervalType::Listener:
        return TriggerKind::Input;
      case IntervalType::Paint:
        return TriggerKind::Output;
      case IntervalType::Async: {
        // Repaint-manager special case (paper §IV.C footnote): an
        // async interval that contains a paint as its first nested
        // marker is really an output episode.
        const IntervalNode *inner = firstMarker(*marker);
        if (inner != nullptr && inner->type == IntervalType::Paint)
            return TriggerKind::Output;
        return TriggerKind::Async;
      }
      default:
        break;
    }
    return TriggerKind::Unspecified;
}

TriggerKind
flatEpisodeTrigger(const FlatTree &tree, std::uint32_t root)
{
    // The preorder slice of the root's descendants is exactly the
    // order the node-tree recursion visits, and GC nodes can never
    // match (their type byte is not a marker), so a flat byte scan
    // is the same search.
    const std::uint8_t *types = tree.type.data();
    const std::uint32_t sliceEnd = tree.subtreeEnd[root];
    const std::uint32_t m = findFirstMarker(types, root + 1, sliceEnd);
    if (m == sliceEnd)
        return TriggerKind::Unspecified;
    switch (tree.typeOf(m)) {
      case IntervalType::Listener:
        return TriggerKind::Input;
      case IntervalType::Paint:
        return TriggerKind::Output;
      case IntervalType::Async: {
        // Repaint-manager special case (paper §IV.C footnote): an
        // async interval that contains a paint as its first nested
        // marker is really an output episode.
        const std::uint32_t innerEnd = tree.subtreeEnd[m];
        const std::uint32_t inner =
            findFirstMarker(types, m + 1, innerEnd);
        if (inner != innerEnd &&
            tree.typeOf(inner) == IntervalType::Paint)
            return TriggerKind::Output;
        return TriggerKind::Async;
      }
      default:
        break;
    }
    return TriggerKind::Unspecified;
}

TriggerCounts
countTriggers(const Session &session, std::size_t begin,
              std::size_t end, DurationNs perceptible_threshold)
{
    TriggerCounts counts;
    const auto &episodes = session.episodes();
    for (std::size_t i = begin; i < end; ++i) {
        const Episode &episode = episodes[i];
        const TriggerKind kind =
            episodeTrigger(session.episodeRoot(episode));
        const auto idx = static_cast<std::size_t>(kind);
        ++counts.all[idx];
        if (episode.duration() >= perceptible_threshold)
            ++counts.perceptible[idx];
    }
    return counts;
}

TriggerCounts
countTriggers(const Session &session, const FlatSession &flat,
              std::size_t begin, std::size_t end,
              DurationNs perceptible_threshold)
{
    TriggerCounts counts;
    const auto &episodes = session.episodes();
    const auto &trees = flat.trees();
    for (std::size_t i = begin; i < end; ++i) {
        const TriggerKind kind = flatEpisodeTrigger(
            trees[flat.episodeTree(i)], flat.episodeNode(i));
        const auto idx = static_cast<std::size_t>(kind);
        ++counts.all[idx];
        if (episodes[i].duration() >= perceptible_threshold)
            ++counts.perceptible[idx];
    }
    return counts;
}

TriggerAnalysisResult
finishTriggers(const TriggerCounts &counts)
{
    const auto to_shares = [](const std::array<std::size_t, 4> &bucket) {
        TriggerShares shares;
        shares.episodeCount =
            bucket[0] + bucket[1] + bucket[2] + bucket[3];
        if (shares.episodeCount == 0)
            return shares;
        const auto total = static_cast<double>(shares.episodeCount);
        shares.input = static_cast<double>(bucket[0]) / total;
        shares.output = static_cast<double>(bucket[1]) / total;
        shares.async = static_cast<double>(bucket[2]) / total;
        shares.unspecified = static_cast<double>(bucket[3]) / total;
        return shares;
    };

    TriggerAnalysisResult result;
    result.all = to_shares(counts.all);
    result.perceptible = to_shares(counts.perceptible);
    return result;
}

TriggerAnalysisResult
analyzeTriggers(const Session &session, DurationNs perceptible_threshold)
{
    return finishTriggers(countTriggers(session, 0,
                                        session.episodes().size(),
                                        perceptible_threshold));
}

} // namespace lag::core
