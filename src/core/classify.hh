/**
 * @file
 * Application vs runtime-library classification of class names.
 *
 * The paper's Figure 6 partitions sample time into application and
 * runtime-library code "based on the fully qualified class name of
 * the method that was executing when the sample was taken" (§IV.D).
 * This is that classifier.
 */

#ifndef LAG_CORE_CLASSIFY_HH
#define LAG_CORE_CLASSIFY_HH

#include <string_view>

namespace lag::core
{

/**
 * True when @p class_name belongs to the Java runtime libraries
 * (JDK, toolkit, vendor packages) rather than the application.
 */
bool isRuntimeLibraryClass(std::string_view class_name);

} // namespace lag::core

#endif // LAG_CORE_CLASSIFY_HH
