#include "classify.hh"

#include <array>

#include "util/strings.hh"

namespace lag::core
{

bool
isRuntimeLibraryClass(std::string_view class_name)
{
    static constexpr std::array<std::string_view, 10> kPrefixes = {
        "java.",     "javax.",  "sun.",     "com.sun.", "com.apple.",
        "apple.",    "jdk.",    "org.omg.", "org.w3c.", "org.xml.",
    };
    for (const auto prefix : kPrefixes) {
        if (startsWith(class_name, prefix))
            return true;
    }
    return false;
}

} // namespace lag::core
