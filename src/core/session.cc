#include "session.hh"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/logging.hh"

namespace lag::core
{

namespace
{

using trace::EventType;
using trace::TraceError;

/** Per-thread state while replaying the event stream. */
struct TreeBuilder
{
    explicit TreeBuilder(const IntervalAllocator &alloc)
        : roots(alloc), stack(alloc)
    {
    }

    IntervalVec roots;
    IntervalVec stack; ///< open nodes, innermost last
};

/** Per-thread tallies from the counting pre-pass. */
struct ThreadCounts
{
    std::vector<std::size_t> open; ///< begin-event indices
    std::size_t roots = 0;
    std::size_t maxDepth = 0;
};

/**
 * Counting pre-pass: replay the event stream once without building
 * anything, recording each begin event's eventual child count, each
 * thread's root count and maximum nesting depth, and the number of
 * collections.  The build pass then reserves every vector exactly,
 * so arena storage is never abandoned to regrowth.  Malformed
 * streams are deliberately tolerated here — the build pass raises
 * the authoritative errors.
 */
struct PrePass
{
    std::vector<std::uint32_t> childCount; ///< by begin-event index
    std::unordered_map<ThreadId, ThreadCounts> threads;
    std::size_t collections = 0;
};

PrePass
countEvents(const trace::Trace &trace)
{
    PrePass pre;
    pre.childCount.assign(trace.events.size(), 0);
    for (const auto &thread : trace.threads)
        pre.threads.emplace(thread.id, ThreadCounts{});
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        const auto &event = trace.events[i];
        switch (event.type) {
          case EventType::DispatchBegin:
          case EventType::IntervalBegin: {
            auto it = pre.threads.find(event.thread);
            if (it == pre.threads.end())
                break;
            // Nesting depth is data-dependent and usually tiny; a
            // reserve here would just guess.
            it->second.open.push_back(i); // lag-lint: allow(reserve-loop)
            it->second.maxDepth = std::max(it->second.maxDepth,
                                           it->second.open.size());
            break;
          }
          case EventType::DispatchEnd:
          case EventType::IntervalEnd: {
            auto it = pre.threads.find(event.thread);
            if (it == pre.threads.end() || it->second.open.empty())
                break;
            it->second.open.pop_back();
            if (it->second.open.empty())
                ++it->second.roots;
            else
                ++pre.childCount[it->second.open.back()];
            break;
          }
          case EventType::GcBegin:
            break;
          case EventType::GcEnd:
            ++pre.collections;
            break;
        }
    }
    return pre;
}

/** Close the innermost open node and attach it to its parent. */
void
closeTop(TreeBuilder &builder, TimeNs time, bool expect_dispatch,
         ThreadId thread)
{
    if (builder.stack.empty()) {
        throw TraceError("interval end without begin on thread " +
                         std::to_string(thread));
    }
    IntervalNode node = std::move(builder.stack.back());
    builder.stack.pop_back();
    const bool is_dispatch = node.type == IntervalType::Dispatch;
    if (is_dispatch != expect_dispatch) {
        throw TraceError("mismatched begin/end types on thread " +
                         std::to_string(thread));
    }
    if (time < node.begin)
        throw TraceError("interval ends before it begins");
    node.end = time;
    if (builder.stack.empty())
        builder.roots.push_back(std::move(node));
    else
        builder.stack.back().children.push_back(std::move(node));
}

/**
 * Insert a copy of @p gc among @p siblings, descending into the
 * deepest non-GC node that fully contains it. Partial overlap means
 * the trace is inconsistent (the world was not stopped).
 */
void
insertGcInto(IntervalVec &siblings, const IntervalNode &gc)
{
    // Find a sibling that fully contains the collection.
    for (auto &sibling : siblings) {
        if (sibling.type == IntervalType::Gc)
            continue;
        if (sibling.contains(gc.begin, gc.end)) {
            insertGcInto(sibling.children, gc);
            return;
        }
    }
    // Insert here, keeping time order and checking for crossings.
    auto it = siblings.begin();
    while (it != siblings.end() && it->begin < gc.begin)
        ++it;
    if (it != siblings.begin()) {
        const auto &prev = *(it - 1);
        if (prev.end > gc.begin) {
            throw TraceError(
                "GC interval crosses an interval boundary (begin)");
        }
    }
    if (it != siblings.end() && it->begin < gc.end)
        throw TraceError("GC interval crosses an interval boundary (end)");
    siblings.insert(it, gc);
}

} // namespace

Session
Session::fromTrace(trace::Trace trace, const SessionBuildOptions &options)
{
    LAG_SPAN_ARG("session.build", "events", trace.events.size());
    static obs::Counter &build_count =
        obs::metrics().counter("session.build.count");
    build_count.add();

    trace.validate();

    Session session;
    if (options.useArena)
        session.arena_ = std::make_unique<Arena>();
    // Null arena degrades to the global heap; either way every node
    // vector below is seeded with this allocator so tree storage
    // follows it through container moves.
    const IntervalAllocator alloc(session.arena_.get());

    session.meta_ = std::move(trace.meta);
    session.samples_ = std::move(trace.samples);
    session.strings_ = std::move(trace.strings);

    // Phase spans via optional: the phases share too much local
    // state for nested scopes.
    std::optional<obs::Span> phase_span;
    phase_span.emplace("session.build.prepass");
    const PrePass pre = countEvents(trace);

    phase_span.emplace("session.build.replay");
    std::unordered_map<ThreadId, TreeBuilder> builders;
    for (const auto &thread : trace.threads) {
        const auto it =
            builders.emplace(thread.id, TreeBuilder(alloc)).first;
        const ThreadCounts &tallies = pre.threads.at(thread.id);
        if (tallies.maxDepth >= kMaxIntervalDepth) {
            // Reject up front: the node-tree walks recurse on the C
            // stack and would hit their own depth guard anyway
            // (kMaxIntervalDepth leaves headroom for the GC leaf
            // copies inserted below the deepest frame).
            throw TraceError(
                "trace nests intervals deeper than the supported "
                "maximum (" +
                std::to_string(kMaxIntervalDepth) + ")");
        }
        // Root slots plus room for root-level GC copies; the stack
        // never regrows past the deepest nesting seen.
        it->second.roots.reserve(tallies.roots + pre.collections);
        it->second.stack.reserve(tallies.maxDepth);
    }
    session.threads_.reserve(trace.threads.size());

    std::vector<IntervalNode> collections;
    collections.reserve(pre.collections);
    bool gc_open = false;
    IntervalNode gc_node;

    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        const auto &event = trace.events[i];
        switch (event.type) {
          case EventType::DispatchBegin: {
            IntervalNode node;
            node.type = IntervalType::Dispatch;
            node.begin = event.time;
            node.children = IntervalVec(alloc);
            node.children.reserve(pre.childCount[i]);
            builders.at(event.thread).stack.push_back(std::move(node));
            break;
          }
          case EventType::DispatchEnd:
            closeTop(builders.at(event.thread), event.time,
                     /*expect_dispatch=*/true, event.thread);
            break;
          case EventType::IntervalBegin: {
            IntervalNode node;
            node.type = fromTraceKind(event.kind);
            node.begin = event.time;
            node.classSym = event.classSym;
            node.methodSym = event.methodSym;
            node.children = IntervalVec(alloc);
            node.children.reserve(pre.childCount[i]);
            builders.at(event.thread).stack.push_back(std::move(node));
            break;
          }
          case EventType::IntervalEnd:
            closeTop(builders.at(event.thread), event.time,
                     /*expect_dispatch=*/false, event.thread);
            break;
          case EventType::GcBegin:
            if (gc_open)
                throw TraceError("overlapping GC intervals");
            gc_open = true;
            gc_node = IntervalNode{};
            gc_node.type = IntervalType::Gc;
            gc_node.begin = event.time;
            gc_node.gcKind = event.gcKind;
            break;
          case EventType::GcEnd:
            if (!gc_open)
                throw TraceError("GC end without begin");
            gc_open = false;
            gc_node.end = event.time;
            if (gc_node.end < gc_node.begin)
                throw TraceError("GC ends before it begins");
            collections.push_back(gc_node);
            break;
        }
    }
    if (gc_open)
        throw TraceError("unterminated GC interval");

    for (const auto &thread : trace.threads) {
        TreeBuilder &builder = builders.at(thread.id);
        if (!builder.stack.empty()) {
            throw TraceError("unterminated interval on thread " +
                             std::to_string(thread.id));
        }
        ThreadTree tree;
        tree.id = thread.id;
        tree.name = thread.name;
        tree.isGui = thread.isGui;
        tree.roots = std::move(builder.roots);

        // "Because a GC stops all threads, for a given garbage
        // collection we add a separate copy of the GC interval to
        // the interval trees of each thread" (paper §II.A).
        for (const auto &gc : collections)
            insertGcInto(tree.roots, gc);

        session.threads_.push_back(std::move(tree));
    }

    // Collect episodes from dispatch threads, in time order.
    phase_span.emplace("session.build.episodes");
    std::size_t episodeCount = 0;
    for (const auto &tree : session.threads_) {
        if (!tree.isGui)
            continue;
        for (const auto &root : tree.roots) {
            if (root.type == IntervalType::Dispatch)
                ++episodeCount;
        }
    }
    session.episodes_.reserve(episodeCount);
    for (std::size_t t = 0; t < session.threads_.size(); ++t) {
        const ThreadTree &tree = session.threads_[t];
        if (!tree.isGui)
            continue;
        for (std::size_t r = 0; r < tree.roots.size(); ++r) {
            const IntervalNode &root = tree.roots[r];
            if (root.type != IntervalType::Dispatch)
                continue;
            Episode episode;
            episode.thread = tree.id;
            episode.treeIndex = t;
            episode.rootIndex = r;
            episode.begin = root.begin;
            episode.end = root.end;
            session.episodes_.push_back(episode);
        }
    }
    std::sort(session.episodes_.begin(), session.episodes_.end(),
              [](const Episode &a, const Episode &b) {
                  return a.begin < b.begin;
              });

    // Assign each episode its in-flight sample range.
    const auto &samples = session.samples_;
    for (auto &episode : session.episodes_) {
        const auto lo = std::lower_bound(
            samples.begin(), samples.end(), episode.begin,
            [](const trace::TraceSample &s, TimeNs t) {
                return s.time < t;
            });
        auto hi = lo;
        while (hi != samples.end() && hi->time <= episode.end)
            ++hi;
        episode.firstSample =
            static_cast<std::size_t>(lo - samples.begin());
        episode.lastSample =
            static_cast<std::size_t>(hi - samples.begin());
    }

    return session;
}

Session::Session(const Session &other)
    : meta_(other.meta_), threads_(other.threads_),
      episodes_(other.episodes_), samples_(other.samples_),
      strings_(other.strings_)
{
    // threads_ copied via ArenaAllocator's
    // select_on_container_copy_construction: heap-backed, so no
    // arena is needed (or shared) here.
}

Session &
Session::operator=(const Session &other)
{
    if (this != &other) {
        Session copy(other);
        *this = std::move(copy);
    }
    return *this;
}

const ThreadTree &
Session::threadTree(ThreadId id) const
{
    for (const auto &tree : threads_) {
        if (tree.id == id)
            return tree;
    }
    throw trace::TraceError("unknown thread id " + std::to_string(id));
}

const IntervalNode &
Session::episodeRoot(const Episode &episode) const
{
    lag_assert(episode.treeIndex < threads_.size(), "bad tree index");
    const ThreadTree &tree = threads_[episode.treeIndex];
    lag_assert(episode.rootIndex < tree.roots.size(), "bad root index");
    return tree.roots[episode.rootIndex];
}

ThreadId
Session::guiThread() const
{
    for (const auto &tree : threads_) {
        if (tree.isGui)
            return tree.id;
    }
    throw trace::TraceError("trace has no GUI thread");
}

std::size_t
Session::perceptibleCount(DurationNs threshold) const
{
    std::size_t count = 0;
    for (const auto &episode : episodes_) {
        if (episode.duration() >= threshold)
            ++count;
    }
    return count;
}

} // namespace lag::core
