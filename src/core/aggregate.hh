/**
 * @file
 * Cross-session pattern aggregation.
 *
 * "LagAlyzer groups episodes into equivalence classes, and it
 * integrates multiple traces in its analysis, and thus helps to
 * uncover repeating patterns of bad performance" (paper §VI).
 * Signatures are symbolic (class/method names), so patterns merge
 * across the sessions of one application: a pattern that is slow in
 * every session is a far stronger optimization target than one that
 * was slow once in one session.
 */

#ifndef LAG_CORE_AGGREGATE_HH
#define LAG_CORE_AGGREGATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pattern.hh"
#include "pattern_stats.hh"
#include "session.hh"

namespace lag::core
{

/** One pattern merged across sessions. */
struct MergedPattern
{
    std::string signature;
    std::uint64_t key = 0;

    /** Sessions in which the pattern occurred (indices into the
     * aggregation input). */
    std::vector<std::size_t> sessions;

    /** Episode count per contributing session (parallel to
     * `sessions`). */
    std::vector<std::size_t> episodeCounts;

    std::size_t totalEpisodes = 0;
    std::size_t totalPerceptible = 0;
    DurationNs minLag = 0;
    DurationNs maxLag = 0;
    DurationNs totalLag = 0;
    OccurrenceClass occurrence = OccurrenceClass::Never;

    /** Non-GC tree size/depth (identical across sessions by
     * construction of the signature). */
    std::size_t descendants = 0;
    std::size_t depth = 0;

    DurationNs
    avgLag() const
    {
        return totalEpisodes == 0
                   ? 0
                   : totalLag /
                         static_cast<DurationNs>(totalEpisodes);
    }

    /** True when the pattern showed up in every session — a
     * reproducible behaviour, not a one-session artifact. */
    bool
    recurring(std::size_t session_count) const
    {
        return sessions.size() == session_count;
    }
};

/** Result of merging several sessions' pattern sets. */
struct MergedPatternSet
{
    /** Merged patterns, most episodes first. */
    std::vector<MergedPattern> patterns;

    /** Number of sessions aggregated. */
    std::size_t sessionCount = 0;

    DurationNs perceptibleThreshold = 0;

    /** Patterns present in every session. */
    std::size_t recurringCount() const;

    /** Recurring patterns that are perceptible in every session —
     * the prime optimization targets. */
    std::size_t recurringAlwaysCount() const;
};

/**
 * Merge per-session pattern sets by signature. All sets must have
 * been mined with the same perceptibility threshold. Zero sets
 * merge to an empty result (sessionCount 0) — an application with
 * no sessions is a degenerate study input, not a crash.
 */
MergedPatternSet
mergePatternSets(const std::vector<PatternSet> &sets);

/**
 * Merge per-session pattern *summaries* (pattern_stats.hh) by
 * signature — the incremental-aggregation twin of
 * mergePatternSets(). Given summarizePatterns() of the same sets, in
 * the same order, the result is byte-identical to
 * mergePatternSets(); cached summaries (engine::SessionAnalysis)
 * therefore rebuild a MergedPatternSet without touching any trace.
 * Zero summaries merge to an empty result, like mergePatternSets().
 */
MergedPatternSet
mergeAnalyses(const std::vector<PatternSetSummary> &sets);

/** Convenience: mine each session and merge. */
MergedPatternSet
minePatternsAcrossSessions(const std::vector<Session> &sessions,
                           DurationNs perceptible_threshold);

} // namespace lag::core

#endif // LAG_CORE_AGGREGATE_HH
