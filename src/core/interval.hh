/**
 * @file
 * Interval trees: LagAlyzer's central data structure.
 *
 * The paper's Table I defines six interval types; LagAlyzer
 * represents the activity of each thread as a tree of properly
 * nested intervals of these types (paper §II.A). GC intervals are
 * special: because a collection stops the world, a copy of each GC
 * interval is added to every thread's tree.
 */

#ifndef LAG_CORE_INTERVAL_HH
#define LAG_CORE_INTERVAL_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "util/arena.hh"
#include "util/types.hh"

namespace lag::core
{

struct IntervalNode;

/** Allocator for interval-tree storage; default-constructed = heap. */
using IntervalAllocator = ArenaAllocator<IntervalNode>;

/**
 * Vector of interval nodes.  A default-constructed IntervalVec
 * allocates from the global heap (hand-built trees in tests and
 * benchmarks need nothing special); Session::fromTrace seeds its
 * builders with an arena-backed allocator, which propagates through
 * container moves so the whole tree lands in the session's arena.
 */
using IntervalVec = std::vector<IntervalNode, IntervalAllocator>;

/**
 * Hard bound on interval-tree nesting depth.  The node-tree walks
 * (descendantCount, depth, typeTime, signature emission) recurse on
 * the C stack, so a hostile trace nesting millions of intervals
 * would otherwise overflow it — UB instead of an error.
 * Session::fromTrace rejects deeper traces up front with a
 * TraceError, and the walks themselves throw TraceError past this
 * bound as a second line of defense for hand-built trees.  The flat
 * walks (flat_tree.hh) are iterative and take any depth.
 */
inline constexpr std::size_t kMaxIntervalDepth = 1000;

/** Fail a node-tree walk that nests past kMaxIntervalDepth: throws
 * trace::TraceError, which beats silently running off the C stack. */
[[noreturn]] void throwIntervalTooDeep();

/** The six interval types of Table I. */
enum class IntervalType : std::uint8_t
{
    Dispatch = 0, ///< start to end of a given episode
    Listener = 1, ///< a listener notification call
    Paint = 2,    ///< a graphics rendering operation
    Native = 3,   ///< a JNI native call
    Async = 4,    ///< handling of an event posted in a background thread
    Gc = 5,       ///< a garbage collection
};

/** Human-readable name of an interval type (as in Table I). */
const char *intervalTypeName(IntervalType type);

/** Map a trace interval kind to the core interval type. */
IntervalType fromTraceKind(trace::IntervalKind kind);

/** One node of a thread's interval tree. */
struct IntervalNode
{
    IntervalType type = IntervalType::Dispatch;
    TimeNs begin = 0;
    TimeNs end = 0;

    /** Symbolic information (class, method); 0 for Dispatch/Gc. */
    SymbolId classSym = 0;
    SymbolId methodSym = 0;

    /** Minor/major; meaningful for Gc nodes only. */
    trace::TraceGcKind gcKind = trace::TraceGcKind::Minor;

    IntervalVec children;

    DurationNs duration() const { return end - begin; }

    /** True when [other.begin, other.end] lies within this node. */
    bool
    contains(TimeNs b, TimeNs e) const
    {
        return begin <= b && e <= end;
    }

    /** Number of descendants (excluding this node). */
    std::size_t descendantCount() const;

    /** Depth of the subtree; a leaf has depth 1. */
    std::size_t depth() const;

    /** Total duration of descendants with the given type.
     * Nested same-type descendants are not double counted: once a
     * node of the type is found, its subtree is not descended. */
    DurationNs typeTime(IntervalType type) const;
};

} // namespace lag::core

#endif // LAG_CORE_INTERVAL_HH
