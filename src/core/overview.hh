/**
 * @file
 * Overview statistics: one Table III row per session (§IV.A).
 */

#ifndef LAG_CORE_OVERVIEW_HH
#define LAG_CORE_OVERVIEW_HH

#include "pattern.hh"
#include "session.hh"

namespace lag::core
{

/** One row of the paper's Table III. */
struct OverviewRow
{
    /** "E2E [s]": end-to-end session duration. */
    double e2eSeconds = 0.0;

    /** "In-Eps [%]": time handling requests / end-to-end time. */
    double inEpsPercent = 0.0;

    /** "< 3ms": episodes the profiler filtered out. */
    std::uint64_t shortCount = 0;

    /** ">= 3ms": episodes represented in the trace. */
    std::size_t tracedCount = 0;

    /** ">= 100ms": perceptible episodes. */
    std::size_t perceptibleCount = 0;

    /** "Long/min": perceptible episodes per minute of in-episode
     * time (the stable denominator, per the paper's footnote 2). */
    double longPerMin = 0.0;

    /** "Dist": distinct patterns. */
    std::size_t distinctPatterns = 0;

    /** "#Eps": episodes covered by patterns. */
    std::size_t coveredEpisodes = 0;

    /** "One-Ep [%]": share of singleton patterns. */
    double oneEpPercent = 0.0;

    /** "Descs": mean non-GC descendants of the dispatch interval,
     * averaged over patterns. */
    double meanDescs = 0.0;

    /** "Depth": mean interval-tree depth, averaged over patterns. */
    double meanDepth = 0.0;
};

/** Compute a session's Table III row. @p patterns must have been
 * mined from @p session. */
OverviewRow computeOverview(const Session &session,
                            const PatternSet &patterns,
                            DurationNs perceptible_threshold);

/** Average several rows (e.g. the four sessions of one app, or the
 * per-app rows into the paper's "Mean" row). */
OverviewRow meanOverview(const std::vector<OverviewRow> &rows);

} // namespace lag::core

#endif // LAG_CORE_OVERVIEW_HH
