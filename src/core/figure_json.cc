#include "figure_json.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "pattern.hh"
#include "util/logging.hh"

namespace lag::core
{

namespace
{

/** Small append-only JSON builder: keeps emission sites terse and
 * the comma discipline in one place. */
class JsonOut
{
  public:
    void
    raw(std::string_view text)
    {
        out_.append(text);
    }

    void
    str(std::string_view s)
    {
        out_.push_back('"');
        out_.append(jsonEscape(s));
        out_.push_back('"');
    }

    void
    key(std::string_view name)
    {
        str(name);
        out_.push_back(':');
    }

    void
    num(double v)
    {
        out_.append(jsonNumber(v));
    }

    void
    num(std::uint64_t v)
    {
        out_.append(std::to_string(v));
    }

    void
    num(std::int64_t v)
    {
        out_.append(std::to_string(v));
    }

    void
    comma()
    {
        out_.push_back(',');
    }

    std::string
    take()
    {
        return std::move(out_);
    }

  private:
    std::string out_;
};

void
emitShares(JsonOut &j, const char *label, const TriggerShares &s)
{
    j.key(label);
    j.raw("{");
    j.key("input");
    j.num(s.input);
    j.comma();
    j.key("output");
    j.num(s.output);
    j.comma();
    j.key("async");
    j.num(s.async);
    j.comma();
    j.key("unspecified");
    j.num(s.unspecified);
    j.comma();
    j.key("episodes");
    j.num(static_cast<std::uint64_t>(s.episodeCount));
    j.raw("}");
}

void
emitLocation(JsonOut &j, const char *label, const LocationShares &s)
{
    j.key(label);
    j.raw("{");
    j.key("app");
    j.num(s.appFraction);
    j.comma();
    j.key("library");
    j.num(s.libraryFraction);
    j.comma();
    j.key("gc");
    j.num(s.gcFraction);
    j.comma();
    j.key("native");
    j.num(s.nativeFraction);
    j.comma();
    j.key("samples");
    j.num(static_cast<std::uint64_t>(s.sampleCount));
    j.comma();
    j.key("episodes");
    j.num(static_cast<std::uint64_t>(s.episodeCount));
    j.raw("}");
}

void
emitStates(JsonOut &j, const char *label, const GuiStateShares &s)
{
    j.key(label);
    j.raw("{");
    j.key("blocked");
    j.num(s.blocked);
    j.comma();
    j.key("waiting");
    j.num(s.waiting);
    j.comma();
    j.key("sleeping");
    j.num(s.sleeping);
    j.comma();
    j.key("runnable");
    j.num(s.runnable);
    j.comma();
    j.key("samples");
    j.num(static_cast<std::uint64_t>(s.sampleCount));
    j.raw("}");
}

/** One app element of a figure array: {"app":NAME,<body>}. */
template <typename BodyFn>
std::string
perAppFigure(std::string_view id,
             const std::vector<AppFigureData> &apps,
             const BodyFn &body)
{
    JsonOut j;
    j.raw("{");
    j.key("figure");
    j.str(id);
    j.comma();
    j.key("apps");
    j.raw("[");
    for (std::size_t a = 0; a < apps.size(); ++a) {
        if (a > 0)
            j.comma();
        j.raw("{");
        j.key("app");
        j.str(apps[a].name);
        j.comma();
        body(j, apps[a]);
        j.raw("}");
    }
    j.raw("]}");
    return j.take();
}

} // namespace

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out.append("\\\"");
            break;
        case '\\':
            out.append("\\\\");
            break;
        case '\n':
            out.append("\\n");
            break;
        case '\r':
            out.append("\\r");
            break;
        case '\t':
            out.append("\\t");
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out.append(buf);
            } else {
                out.push_back(c);
            }
            break;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    lag_assert(std::isfinite(v), "NaN/Inf cannot be emitted as JSON");
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    lag_assert(res.ec == std::errc(), "double to_chars failed");
    return std::string(buf, res.ptr);
}

std::string
patternKeyHex(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return std::string(buf);
}

bool
parsePatternKeyHex(std::string_view text, std::uint64_t &key)
{
    if (text.size() >= 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X'))
        text.remove_prefix(2);
    if (text.empty() || text.size() > 16)
        return false;
    const auto res = std::from_chars(
        text.data(), text.data() + text.size(), key, 16);
    return res.ec == std::errc() &&
           res.ptr == text.data() + text.size();
}

std::string
patternsJson(std::string_view app, const MergedPatternSet &set,
             std::string_view sort, std::size_t limit)
{
    const bool known =
        std::find(std::begin(kPatternSortKeys),
                  std::end(kPatternSortKeys),
                  sort) != std::end(kPatternSortKeys);
    if (!known)
        return std::string();

    // Indices, not patterns, move: stable sort keeps the set's
    // most-populous-first order on ties, so the output is
    // deterministic for any input.
    std::vector<std::size_t> order(set.patterns.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto by = [&](auto get) {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return get(set.patterns[a]) >
                                    get(set.patterns[b]);
                         });
    };
    if (sort == "total_lag")
        by([](const MergedPattern &p) { return p.totalLag; });
    else if (sort == "max_lag")
        by([](const MergedPattern &p) { return p.maxLag; });
    else if (sort == "avg_lag")
        by([](const MergedPattern &p) { return p.avgLag(); });

    std::size_t count = order.size();
    if (limit > 0 && limit < count)
        count = limit;

    JsonOut j;
    j.raw("{");
    j.key("app");
    j.str(app);
    j.comma();
    j.key("sessions");
    j.num(static_cast<std::uint64_t>(set.sessionCount));
    j.comma();
    j.key("total_patterns");
    j.num(static_cast<std::uint64_t>(set.patterns.size()));
    j.comma();
    j.key("sort");
    j.str(sort);
    j.comma();
    j.key("patterns");
    j.raw("[");
    for (std::size_t i = 0; i < count; ++i) {
        const MergedPattern &p = set.patterns[order[i]];
        if (i > 0)
            j.comma();
        j.raw("{");
        j.key("key");
        j.str(patternKeyHex(p.key));
        j.comma();
        j.key("signature");
        j.str(p.signature);
        j.comma();
        j.key("sessions");
        j.num(static_cast<std::uint64_t>(p.sessions.size()));
        j.comma();
        j.key("episodes");
        j.num(static_cast<std::uint64_t>(p.totalEpisodes));
        j.comma();
        j.key("perceptible");
        j.num(static_cast<std::uint64_t>(p.totalPerceptible));
        j.comma();
        j.key("min_lag_ns");
        j.num(static_cast<std::int64_t>(p.minLag));
        j.comma();
        j.key("max_lag_ns");
        j.num(static_cast<std::int64_t>(p.maxLag));
        j.comma();
        j.key("total_lag_ns");
        j.num(static_cast<std::int64_t>(p.totalLag));
        j.comma();
        j.key("avg_lag_ns");
        j.num(static_cast<std::int64_t>(p.avgLag()));
        j.comma();
        j.key("occurrence");
        j.str(occurrenceClassName(p.occurrence));
        j.comma();
        j.key("recurring");
        j.raw(p.recurring(set.sessionCount) ? "true" : "false");
        j.comma();
        j.key("descendants");
        j.num(static_cast<std::uint64_t>(p.descendants));
        j.comma();
        j.key("depth");
        j.num(static_cast<std::uint64_t>(p.depth));
        j.raw("}");
    }
    j.raw("]}");
    return j.take();
}

std::string
cdfJson(std::string_view app, const std::vector<double> &grid)
{
    JsonOut j;
    j.raw("{");
    j.key("app");
    j.str(app);
    j.comma();
    j.key("pattern_percent");
    j.raw("[");
    for (std::size_t x = 0; x < grid.size(); ++x) {
        if (x > 0)
            j.comma();
        j.num(static_cast<std::uint64_t>(x));
    }
    j.raw("],");
    j.key("episode_fraction");
    j.raw("[");
    for (std::size_t x = 0; x < grid.size(); ++x) {
        if (x > 0)
            j.comma();
        j.num(grid[x]);
    }
    j.raw("]}");
    return j.take();
}

std::string
episodesJson(std::string_view app, const MergedPattern &pattern,
             std::size_t session_count)
{
    JsonOut j;
    j.raw("{");
    j.key("app");
    j.str(app);
    j.comma();
    j.key("key");
    j.str(patternKeyHex(pattern.key));
    j.comma();
    j.key("signature");
    j.str(pattern.signature);
    j.comma();
    j.key("occurrence");
    j.str(occurrenceClassName(pattern.occurrence));
    j.comma();
    j.key("recurring");
    j.raw(pattern.recurring(session_count) ? "true" : "false");
    j.comma();
    j.key("total_episodes");
    j.num(static_cast<std::uint64_t>(pattern.totalEpisodes));
    j.comma();
    j.key("total_perceptible");
    j.num(static_cast<std::uint64_t>(pattern.totalPerceptible));
    j.comma();
    j.key("min_lag_ns");
    j.num(static_cast<std::int64_t>(pattern.minLag));
    j.comma();
    j.key("max_lag_ns");
    j.num(static_cast<std::int64_t>(pattern.maxLag));
    j.comma();
    j.key("total_lag_ns");
    j.num(static_cast<std::int64_t>(pattern.totalLag));
    j.comma();
    j.key("avg_lag_ns");
    j.num(static_cast<std::int64_t>(pattern.avgLag()));
    j.comma();
    j.key("by_session");
    j.raw("[");
    for (std::size_t i = 0; i < pattern.sessions.size(); ++i) {
        if (i > 0)
            j.comma();
        j.raw("{");
        j.key("session");
        j.num(static_cast<std::uint64_t>(pattern.sessions[i]));
        j.comma();
        j.key("episodes");
        j.num(static_cast<std::uint64_t>(pattern.episodeCounts[i]));
        j.raw("}");
    }
    j.raw("]}");
    return j.take();
}

std::vector<std::string>
figureIds()
{
    return {"fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "table3"};
}

std::string
figureJson(std::string_view id,
           const std::vector<AppFigureData> &apps)
{
    if (id == "fig3") {
        return perAppFigure(id, apps,
                            [](JsonOut &j, const AppFigureData &a) {
                                j.key("episode_fraction");
                                j.raw("[");
                                const auto &grid =
                                    a.cdfEpisodesAtPatternPercent;
                                for (std::size_t x = 0;
                                     x < grid.size(); ++x) {
                                    if (x > 0)
                                        j.comma();
                                    j.num(grid[x]);
                                }
                                j.raw("]");
                            });
    }
    if (id == "fig4") {
        return perAppFigure(
            id, apps, [](JsonOut &j, const AppFigureData &a) {
                j.key("always");
                j.num(a.occurrence.always);
                j.comma();
                j.key("sometimes");
                j.num(a.occurrence.sometimes);
                j.comma();
                j.key("once");
                j.num(a.occurrence.once);
                j.comma();
                j.key("never");
                j.num(a.occurrence.never);
                j.comma();
                j.key("patterns");
                j.num(static_cast<std::uint64_t>(
                    a.occurrence.patternCount));
            });
    }
    if (id == "fig5") {
        return perAppFigure(
            id, apps, [](JsonOut &j, const AppFigureData &a) {
                emitShares(j, "all", a.triggers.all);
                j.comma();
                emitShares(j, "perceptible",
                           a.triggers.perceptible);
            });
    }
    if (id == "fig6") {
        return perAppFigure(
            id, apps, [](JsonOut &j, const AppFigureData &a) {
                emitLocation(j, "all", a.location.all);
                j.comma();
                emitLocation(j, "perceptible",
                             a.location.perceptible);
            });
    }
    if (id == "fig7") {
        return perAppFigure(
            id, apps, [](JsonOut &j, const AppFigureData &a) {
                j.key("mean_runnable_all");
                j.num(a.concurrency.meanRunnableAll);
                j.comma();
                j.key("mean_runnable_perceptible");
                j.num(a.concurrency.meanRunnablePerceptible);
                j.comma();
                j.key("samples_all");
                j.num(static_cast<std::uint64_t>(
                    a.concurrency.samplesAll));
                j.comma();
                j.key("samples_perceptible");
                j.num(static_cast<std::uint64_t>(
                    a.concurrency.samplesPerceptible));
            });
    }
    if (id == "fig8") {
        return perAppFigure(
            id, apps, [](JsonOut &j, const AppFigureData &a) {
                emitStates(j, "all", a.states.all);
                j.comma();
                emitStates(j, "perceptible", a.states.perceptible);
            });
    }
    if (id == "table3") {
        return perAppFigure(
            id, apps, [](JsonOut &j, const AppFigureData &a) {
                j.key("e2e_s");
                j.num(a.overview.e2eSeconds);
                j.comma();
                j.key("in_eps_percent");
                j.num(a.overview.inEpsPercent);
                j.comma();
                j.key("short_count");
                j.num(static_cast<std::uint64_t>(
                    a.overview.shortCount));
                j.comma();
                j.key("traced_count");
                j.num(static_cast<std::uint64_t>(
                    a.overview.tracedCount));
                j.comma();
                j.key("perceptible_count");
                j.num(static_cast<std::uint64_t>(
                    a.overview.perceptibleCount));
                j.comma();
                j.key("long_per_min");
                j.num(a.overview.longPerMin);
                j.comma();
                j.key("distinct_patterns");
                j.num(static_cast<std::uint64_t>(
                    a.overview.distinctPatterns));
                j.comma();
                j.key("covered_episodes");
                j.num(static_cast<std::uint64_t>(
                    a.overview.coveredEpisodes));
                j.comma();
                j.key("one_ep_percent");
                j.num(a.overview.oneEpPercent);
                j.comma();
                j.key("mean_descs");
                j.num(a.overview.meanDescs);
                j.comma();
                j.key("mean_depth");
                j.num(a.overview.meanDepth);
            });
    }
    return std::string();
}

} // namespace lag::core
