#include "overview.hh"

#include "util/logging.hh"

namespace lag::core
{

OverviewRow
computeOverview(const Session &session, const PatternSet &patterns,
                DurationNs perceptible_threshold)
{
    OverviewRow row;
    row.e2eSeconds = nsToSec(session.wallTime());
    const DurationNs in_eps = session.meta().totalInEpisodeTime;
    if (session.wallTime() > 0) {
        row.inEpsPercent = 100.0 * static_cast<double>(in_eps) /
                           static_cast<double>(session.wallTime());
    }
    row.shortCount = session.meta().filteredShortEpisodes;
    row.tracedCount = session.episodes().size();
    row.perceptibleCount =
        session.perceptibleCount(perceptible_threshold);

    const double in_eps_minutes = nsToSec(in_eps) / 60.0;
    if (in_eps_minutes > 0.0) {
        row.longPerMin =
            static_cast<double>(row.perceptibleCount) / in_eps_minutes;
    }

    row.distinctPatterns = patterns.patterns.size();
    row.coveredEpisodes = patterns.coveredEpisodes;
    if (!patterns.patterns.empty()) {
        row.oneEpPercent =
            100.0 * static_cast<double>(patterns.singletonCount()) /
            static_cast<double>(patterns.patterns.size());
        double descs = 0.0;
        double depth = 0.0;
        for (const auto &pattern : patterns.patterns) {
            descs += static_cast<double>(pattern.descendants);
            depth += static_cast<double>(pattern.depth);
        }
        const auto n = static_cast<double>(patterns.patterns.size());
        row.meanDescs = descs / n;
        row.meanDepth = depth / n;
    }
    return row;
}

OverviewRow
meanOverview(const std::vector<OverviewRow> &rows)
{
    lag_assert(!rows.empty(), "mean of zero overview rows");
    OverviewRow mean;
    double short_count = 0.0;
    double traced = 0.0;
    double perceptible = 0.0;
    double distinct = 0.0;
    double covered = 0.0;
    for (const auto &row : rows) {
        mean.e2eSeconds += row.e2eSeconds;
        mean.inEpsPercent += row.inEpsPercent;
        short_count += static_cast<double>(row.shortCount);
        traced += static_cast<double>(row.tracedCount);
        perceptible += static_cast<double>(row.perceptibleCount);
        mean.longPerMin += row.longPerMin;
        distinct += static_cast<double>(row.distinctPatterns);
        covered += static_cast<double>(row.coveredEpisodes);
        mean.oneEpPercent += row.oneEpPercent;
        mean.meanDescs += row.meanDescs;
        mean.meanDepth += row.meanDepth;
    }
    const auto n = static_cast<double>(rows.size());
    mean.e2eSeconds /= n;
    mean.inEpsPercent /= n;
    mean.shortCount = static_cast<std::uint64_t>(short_count / n);
    mean.tracedCount = static_cast<std::size_t>(traced / n);
    mean.perceptibleCount = static_cast<std::size_t>(perceptible / n);
    mean.longPerMin /= n;
    mean.distinctPatterns = static_cast<std::size_t>(distinct / n);
    mean.coveredEpisodes = static_cast<std::size_t>(covered / n);
    mean.oneEpPercent /= n;
    mean.meanDescs /= n;
    mean.meanDepth /= n;
    return mean;
}

} // namespace lag::core
