/**
 * @file
 * Location analysis: application, library, GC, or native (§IV.D).
 *
 * Two complementary measurements per the paper:
 *
 *  - application vs runtime-library shares come from the call-stack
 *    samples of the GUI thread taken during episodes, classified by
 *    the class of the innermost frame;
 *  - GC and native shares come directly from the explicit GC and
 *    Native intervals in the episode trees, as fractions of total
 *    episode time. Collections that occur inside native calls count
 *    as GC, not native (Figure 1's episode shows why blaming the
 *    native call would be wrong).
 */

#ifndef LAG_CORE_LOCATION_HH
#define LAG_CORE_LOCATION_HH

#include "flat_tree.hh"
#include "session.hh"

namespace lag::core
{

/** Where episode time was spent, over one set of episodes. */
struct LocationShares
{
    /** Sample-based split; appFraction + libraryFraction == 1 when
     * any samples exist. */
    double appFraction = 0.0;
    double libraryFraction = 0.0;
    std::size_t sampleCount = 0;

    /** Interval-based split as fractions of total episode time. */
    double gcFraction = 0.0;
    double nativeFraction = 0.0;
    std::size_t episodeCount = 0;
};

/** Figure 6's two graphs: all episodes and perceptible only. */
struct LocationAnalysisResult
{
    LocationShares all;
    LocationShares perceptible;
};

/** Time spent in Native intervals below @p root, excluding any GC
 * time nested inside them. */
DurationNs nativeTimeExcludingGc(const IntervalNode &root);

/** Flat-layout twin of nativeTimeExcludingGc: one skip-scan over
 * the root's preorder slice, no recursion. */
DurationNs flatNativeTimeExcludingGc(const FlatTree &tree,
                                     std::uint32_t root);

/** Integer accumulator for one episode set. */
struct LocationTally
{
    std::size_t appSamples = 0;
    std::size_t librarySamples = 0;
    DurationNs gcTime = 0;
    DurationNs nativeTime = 0;
    DurationNs episodeTime = 0;
    std::size_t episodes = 0;

    void
    merge(const LocationTally &other)
    {
        appSamples += other.appSamples;
        librarySamples += other.librarySamples;
        gcTime += other.gcTime;
        nativeTime += other.nativeTime;
        episodeTime += other.episodeTime;
        episodes += other.episodes;
    }

    /** Turn the tally into fractional shares. */
    LocationShares finish() const;
};

/**
 * Integer partial of the location analysis over an episode range;
 * partials over disjoint ranges merge by addition.
 */
struct LocationCounts
{
    LocationTally all;
    LocationTally perceptible;

    void
    merge(const LocationCounts &other)
    {
        all.merge(other.all);
        perceptible.merge(other.perceptible);
    }
};

/** Tally location data over episodes [begin, end). */
LocationCounts countLocation(const Session &session, std::size_t begin,
                             std::size_t end,
                             DurationNs perceptible_threshold);

/** Flat-tree overload of countLocation; byte-identical counts.  The
 * sample-based app/library split is unchanged (it never walks the
 * trees); the GC and native interval times come from flat scans.
 * @p flat must be flattenSession(session). */
LocationCounts countLocation(const Session &session,
                             const FlatSession &flat, std::size_t begin,
                             std::size_t end,
                             DurationNs perceptible_threshold);

/** Turn merged counts into shares. */
LocationAnalysisResult finishLocation(const LocationCounts &counts);

/** Run the location analysis on a session. */
LocationAnalysisResult analyzeLocation(const Session &session,
                                       DurationNs perceptible_threshold);

} // namespace lag::core

#endif // LAG_CORE_LOCATION_HH
