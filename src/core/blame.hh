/**
 * @file
 * Blame analysis: which code was executing during perceptible lag.
 *
 * The paper's §IV narratives all end in this drill-down: "A look at
 * the call stack samples during these episodes shows that Euclide
 * was particularly slow in reacting to events in combo box
 * controls"; "a large fraction of the call stack samples were taken
 * in code related to drawing handles and outlines of bezier curves".
 * This module turns that manual step into an API: rank classes (or
 * class.method pairs) by how many in-episode GUI-thread samples hit
 * them, and find the episodes/patterns a given symbol appears in.
 */

#ifndef LAG_CORE_BLAME_HH
#define LAG_CORE_BLAME_HH

#include <string>
#include <string_view>
#include <vector>

#include "pattern.hh"
#include "session.hh"

namespace lag::core
{

/** One line of a blame report. */
struct BlameEntry
{
    std::string symbol; ///< class name, or "class.method"
    std::size_t samples = 0;
    double share = 0.0; ///< of all counted samples
    bool isLibrary = false;

    /** Samples in which the GUI thread was not runnable (the lag
     * was a block/wait/sleep at this symbol, not work). */
    std::size_t notRunnableSamples = 0;
};

/** Options for blame reports. */
struct BlameOptions
{
    /** Restrict to episodes at/above this duration; 0 = all. */
    DurationNs perceptibleThreshold = msToNs(100);

    /** Group by class.method instead of class only. */
    bool byMethod = false;

    /** Attribute a sample to its innermost frame only (true, the
     * paper's choice for Figure 6) or to every frame on the stack
     * (false — inclusive attribution, like a flame graph). */
    bool innermostOnly = true;

    /** Maximum entries returned (0 = all). */
    std::size_t limit = 20;
};

/**
 * Rank symbols by in-episode GUI-thread samples. Entries are sorted
 * by sample count, descending.
 */
std::vector<BlameEntry> blameReport(const Session &session,
                                    const BlameOptions &options = {});

/**
 * Indices (into Session::episodes()) of episodes in which any
 * GUI-thread sample frame's class contains @p class_substring.
 */
std::vector<std::size_t>
episodesSampledIn(const Session &session,
                  std::string_view class_substring);

/**
 * Indices (into PatternSet::patterns) of patterns whose signature
 * mentions @p substring (class or method fragment).
 */
std::vector<std::size_t>
patternsMentioning(const PatternSet &patterns,
                   std::string_view substring);

} // namespace lag::core

#endif // LAG_CORE_BLAME_HH
