#include "blame.hh"

#include <algorithm>
#include <unordered_map>

#include "classify.hh"

namespace lag::core
{

std::vector<BlameEntry>
blameReport(const Session &session, const BlameOptions &options)
{
    struct Tally
    {
        std::size_t samples = 0;
        std::size_t notRunnable = 0;
    };
    std::unordered_map<std::string, Tally> tallies;
    std::size_t total = 0;
    const ThreadId gui = session.guiThread();
    const auto &samples = session.samples();

    for (const auto &episode : session.episodes()) {
        if (episode.duration() < options.perceptibleThreshold)
            continue;
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            for (const auto &entry : samples[s].threads) {
                if (entry.thread != gui || entry.frames.empty())
                    continue;
                const bool not_runnable =
                    entry.state != trace::TraceThreadState::Runnable;
                const auto attribute =
                    [&](const trace::SampleFrame &frame) {
                        std::string key =
                            session.symbol(frame.classSym);
                        if (options.byMethod) {
                            key += '.';
                            key += session.symbol(frame.methodSym);
                        }
                        Tally &tally = tallies[std::move(key)];
                        ++tally.samples;
                        if (not_runnable)
                            ++tally.notRunnable;
                    };
                if (options.innermostOnly) {
                    attribute(entry.frames.back());
                } else {
                    for (const auto &frame : entry.frames)
                        attribute(frame);
                }
                ++total;
                break;
            }
        }
    }

    std::vector<BlameEntry> report;
    report.reserve(tallies.size());
    // Safe: the report is fully re-sorted below with a total order
    // (samples desc, then symbol), so hash order cannot leak out.
    for (auto &[symbol, tally] : tallies) { // lag-lint: allow(unordered-iter)
        BlameEntry entry;
        entry.symbol = symbol;
        entry.samples = tally.samples;
        entry.notRunnableSamples = tally.notRunnable;
        entry.share = total == 0
                          ? 0.0
                          : static_cast<double>(tally.samples) /
                                static_cast<double>(total);
        const auto dot = options.byMethod
                             ? entry.symbol.rfind('.')
                             : std::string::npos;
        entry.isLibrary = isRuntimeLibraryClass(
            dot == std::string::npos
                ? std::string_view(entry.symbol)
                : std::string_view(entry.symbol).substr(0, dot));
        report.push_back(std::move(entry));
    }
    // Total order: break sample-count ties by symbol so the report
    // is byte-identical however the tally map hashed.
    std::stable_sort(report.begin(), report.end(),
                     [](const BlameEntry &a, const BlameEntry &b) {
                         if (a.samples != b.samples)
                             return a.samples > b.samples;
                         return a.symbol < b.symbol;
                     });
    if (options.limit > 0 && report.size() > options.limit)
        report.resize(options.limit);
    return report;
}

std::vector<std::size_t>
episodesSampledIn(const Session &session,
                  std::string_view class_substring)
{
    std::vector<std::size_t> hits;
    const ThreadId gui = session.guiThread();
    const auto &samples = session.samples();
    const auto &episodes = session.episodes();
    for (std::size_t e = 0; e < episodes.size(); ++e) {
        bool hit = false;
        for (std::size_t s = episodes[e].firstSample;
             s < episodes[e].lastSample && !hit; ++s) {
            for (const auto &entry : samples[s].threads) {
                if (entry.thread != gui)
                    continue;
                for (const auto &frame : entry.frames) {
                    if (session.symbol(frame.classSym)
                            .find(class_substring) !=
                        std::string::npos) {
                        hit = true;
                        break;
                    }
                }
                break;
            }
        }
        if (hit)
            hits.push_back(e); // lag-lint: allow(reserve-loop)
    }
    return hits;
}

std::vector<std::size_t>
patternsMentioning(const PatternSet &patterns,
                   std::string_view substring)
{
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < patterns.patterns.size(); ++i) {
        if (patterns.patterns[i].signature.find(substring) !=
            std::string::npos) {
            hits.push_back(i); // lag-lint: allow(reserve-loop)
        }
    }
    return hits;
}

} // namespace lag::core
