/**
 * @file
 * The Session: LagAlyzer's in-memory model of one trace.
 *
 * "The core of LagAlyzer consists of an in-memory representation of
 * the latency traces [...]. This core provides the basis for the
 * visualizations and analyses" (paper §II.A). A Session owns the
 * per-thread interval trees (built with nesting validation and with
 * GC intervals copied into every thread's tree), the list of
 * episodes on the dispatch thread(s), the stack samples, and the
 * interned symbols.
 */

#ifndef LAG_CORE_SESSION_HH
#define LAG_CORE_SESSION_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "interval.hh"
#include "trace/trace.hh"
#include "util/arena.hh"
#include "util/types.hh"

namespace lag::core
{

/** One thread's interval forest. */
struct ThreadTree
{
    ThreadId id = 0;
    std::string name;
    bool isGui = false;
    IntervalVec roots; ///< time-ordered
};

/** Knobs for Session::fromTrace. */
struct SessionBuildOptions
{
    /**
     * Build the interval trees in a session-owned bump arena
     * (default).  Off, every node vector comes from the global
     * heap; the resulting session is identical — the switch exists
     * so benchmarks can compare allocation behaviour.
     */
    bool useArena = true;
};

/**
 * One episode: a Dispatch interval on a dispatch thread, plus the
 * range of stack samples that fall inside it.
 */
struct Episode
{
    ThreadId thread = 0;
    std::size_t treeIndex = 0;   ///< index into the thread's tree list
    std::size_t rootIndex = 0;   ///< index into that tree's roots
    TimeNs begin = 0;
    TimeNs end = 0;
    std::size_t firstSample = 0; ///< [firstSample, lastSample)
    std::size_t lastSample = 0;

    DurationNs duration() const { return end - begin; }
};

/** A parsed, validated session ready for analysis. */
class Session
{
  public:
    /**
     * Build a session from a trace. Validates interval nesting and
     * GC containment; throws trace::TraceError on malformed input.
     *
     * Interval trees are stored in a session-owned bump arena (see
     * SessionBuildOptions), with per-node child vectors reserved
     * exactly from a counting pre-pass over the event stream.
     */
    static Session fromTrace(trace::Trace trace,
                             const SessionBuildOptions &options = {});

    /**
     * Copies are deep and heap-backed: the arena (if any) stays
     * with the source, and the copied trees allocate from the
     * global heap, so a copy is always safe to outlive the
     * original.
     */
    Session(const Session &other);
    Session &operator=(const Session &other);
    Session(Session &&) noexcept = default;
    Session &operator=(Session &&) noexcept = default;

    const trace::TraceMeta &meta() const { return meta_; }
    const std::vector<ThreadTree> &threads() const { return threads_; }
    const std::vector<Episode> &episodes() const { return episodes_; }
    const std::vector<trace::TraceSample> &samples() const
    {
        return samples_;
    }
    const trace::StringTable &strings() const { return strings_; }

    /** Resolve a symbol id. */
    const std::string &symbol(SymbolId id) const
    {
        return strings_.lookup(id);
    }

    /** The tree of the thread with @p id; throws if unknown. */
    const ThreadTree &threadTree(ThreadId id) const;

    /** Root interval node of @p episode. */
    const IntervalNode &episodeRoot(const Episode &episode) const;

    /** Id of the (first) GUI thread; throws if there is none. */
    ThreadId guiThread() const;

    /** Session wall time (end - start). */
    DurationNs wallTime() const
    {
        return meta_.endTime - meta_.startTime;
    }

    /** Count of episodes at or above @p threshold. */
    std::size_t perceptibleCount(DurationNs threshold) const;

    /** Arena backing the interval trees; null for heap builds. */
    const Arena *arena() const { return arena_.get(); }

  private:
    Session() = default;

    // The arena must outlive the interval trees that live in it:
    // declared first so it is destroyed after threads_.
    std::unique_ptr<Arena> arena_;
    trace::TraceMeta meta_;
    std::vector<ThreadTree> threads_;
    std::vector<Episode> episodes_;
    std::vector<trace::TraceSample> samples_;
    trace::StringTable strings_;
};

} // namespace lag::core

#endif // LAG_CORE_SESSION_HH
