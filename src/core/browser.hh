/**
 * @file
 * The Pattern Browser model (paper §II.E).
 *
 * "LagAlyzer presents the user with a table of patterns. For each
 * pattern, it shows the number of episodes and the minimum, average,
 * maximum, and total lag [...]. The developer can filter the pattern
 * table by eliding any patterns that do not have any perceptible
 * episodes. By selecting a pattern [...] the developer can reveal a
 * list of all the episodes in that pattern [...] and browse through
 * the sketches of all episodes."
 *
 * This class is the GUI-free model behind that browser: filtering,
 * selection and episode iteration. The terminal front end lives in
 * examples/pattern_browser.cpp; sketch rendering in src/viz.
 */

#ifndef LAG_CORE_BROWSER_HH
#define LAG_CORE_BROWSER_HH

#include <cstddef>
#include <vector>

#include "pattern.hh"
#include "session.hh"

namespace lag::core
{

/** Navigable view over a session's mined patterns. */
class PatternBrowserModel
{
  public:
    /** @p patterns must have been mined from @p session; both are
     * borrowed and must outlive the model. */
    PatternBrowserModel(const Session &session,
                        const PatternSet &patterns);

    /** Show only patterns with at least one perceptible episode. */
    void setPerceptibleOnly(bool enabled);
    bool perceptibleOnly() const { return perceptible_only_; }

    /** Visible patterns as indices into PatternSet::patterns. */
    const std::vector<std::size_t> &visibleRows() const
    {
        return visible_;
    }

    /** Select a visible row; resets episode browsing to the
     * pattern's first episode. */
    void selectRow(std::size_t row);

    /** True when a pattern is selected (and survived filtering). */
    bool hasSelection() const;

    /** The selected pattern. Requires hasSelection(). */
    const Pattern &selectedPattern() const;

    /** Episode currently shown as a sketch. Requires selection. */
    const Episode &currentEpisode() const;

    /** Position of currentEpisode within the pattern (0-based). */
    std::size_t currentEpisodeIndex() const { return episode_pos_; }

    /** Step to the next/previous episode of the selected pattern;
     * clamps at the ends. */
    void nextEpisode();
    void prevEpisode();

    const Session &session() const { return session_; }
    const PatternSet &patterns() const { return patterns_; }

  private:
    void rebuildVisible();

    const Session &session_;
    const PatternSet &patterns_;
    bool perceptible_only_ = false;
    std::vector<std::size_t> visible_;
    bool has_selection_ = false;
    std::size_t selected_pattern_ = 0; ///< index into patterns_
    std::size_t episode_pos_ = 0;
};

} // namespace lag::core

#endif // LAG_CORE_BROWSER_HH
