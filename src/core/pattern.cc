#include "pattern.hh"

#include <algorithm>
#include <unordered_map>

#include "util/hash.hh"
#include "util/logging.hh"

namespace lag::core
{

namespace
{

/** Append the signature of @p node (and descendants) to @p out.
 * Guarded against runaway nesting; the flat emission path
 * (flat_tree.hh) is iterative and needs no guard. */
void
appendSignature(const IntervalNode &node,
                const trace::StringTable &strings, std::string &out,
                std::size_t nesting)
{
    if (nesting >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    switch (node.type) {
      case IntervalType::Dispatch: out += 'D'; break;
      case IntervalType::Listener: out += 'L'; break;
      case IntervalType::Paint:    out += 'P'; break;
      case IntervalType::Native:   out += 'N'; break;
      case IntervalType::Async:    out += 'A'; break;
      case IntervalType::Gc:
        lag_panic("GC nodes are excluded before signature emission");
    }
    if (node.classSym != 0 || node.methodSym != 0) {
        out += '[';
        out += strings.lookup(node.classSym);
        out += '.';
        out += strings.lookup(node.methodSym);
        out += ']';
    }
    bool any_child = false;
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Gc)
            continue;
        if (!any_child) {
            out += '(';
            any_child = true;
        }
        appendSignature(child, strings, out, nesting + 1);
    }
    if (any_child)
        out += ')';
}

/** Non-GC descendant count. */
std::size_t
nonGcDescendants(const IntervalNode &node, std::size_t nesting)
{
    if (nesting >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    std::size_t count = 0;
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Gc)
            continue;
        count += 1 + nonGcDescendants(child, nesting + 1);
    }
    return count;
}

/** Depth of the tree ignoring GC nodes; a leaf counts 1. */
std::size_t
nonGcDepth(const IntervalNode &node, std::size_t nesting)
{
    if (nesting >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    std::size_t deepest = 0;
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Gc)
            continue;
        deepest = std::max(deepest, nonGcDepth(child, nesting + 1));
    }
    return deepest + 1;
}

OccurrenceClass
classify(std::size_t perceptible, std::size_t total)
{
    if (perceptible == 0)
        return OccurrenceClass::Never;
    if (perceptible == total)
        return OccurrenceClass::Always;
    if (perceptible == 1)
        return OccurrenceClass::Once;
    return OccurrenceClass::Sometimes;
}

} // namespace

const char *
occurrenceClassName(OccurrenceClass cls)
{
    switch (cls) {
      case OccurrenceClass::Always:    return "always";
      case OccurrenceClass::Sometimes: return "sometimes";
      case OccurrenceClass::Once:      return "once";
      case OccurrenceClass::Never:     return "never";
    }
    return "?";
}

std::string
patternSignature(const IntervalNode &root,
                 const trace::StringTable &strings)
{
    std::string out;
    appendSignature(root, strings, out, 0);
    return out;
}

std::size_t
PatternSet::singletonCount() const
{
    std::size_t count = 0;
    for (const auto &pattern : patterns) {
        if (pattern.episodes.size() == 1)
            ++count;
    }
    return count;
}

std::size_t
PatternSet::perceptiblePatternCount() const
{
    std::size_t count = 0;
    for (const auto &pattern : patterns) {
        if (pattern.perceptibleCount > 0)
            ++count;
    }
    return count;
}

PatternMiner::PatternMiner(DurationNs perceptible_threshold)
    : threshold_(perceptible_threshold)
{
    lag_assert(threshold_ > 0, "perceptible threshold must be positive");
}

PatternSet
PatternMiner::mine(const Session &session) const
{
    std::vector<PatternShard> shards;
    shards.push_back(
        mineRange(session, 0, session.episodes().size()));
    return merge(std::move(shards));
}

PatternShard
PatternMiner::mineRange(const Session &session, std::size_t begin,
                        std::size_t end) const
{
    const auto &episodes = session.episodes();
    lag_assert(begin <= end && end <= episodes.size(),
               "episode range out of bounds");

    PatternShard shard;
    shard.beginEpisode = begin;
    shard.endEpisode = end;

    std::unordered_map<std::string, std::size_t> index;

    for (std::size_t i = begin; i < end; ++i) {
        const IntervalNode &root = session.episodeRoot(episodes[i]);
        if (root.children.empty()) {
            // "We exclude episodes that have no internal structure"
            // (paper §IV.A).
            ++shard.structurelessEpisodes;
            continue;
        }
        std::string signature =
            patternSignature(root, session.strings());

        const auto [it, inserted] =
            index.emplace(signature, shard.patterns.size());
        if (inserted) {
            Pattern pattern;
            pattern.key = fnv1a(signature);
            pattern.signature = std::move(signature);
            pattern.descendants = nonGcDescendants(root, 0);
            pattern.depth = nonGcDepth(root, 0);
            // Per-pattern membership is unknowable up front.
            shard.patterns.push_back(std::move(pattern)); // lag-lint: allow(reserve-loop)
        }
        Pattern &pattern = shard.patterns[it->second];

        const DurationNs lag = episodes[i].duration();
        const bool perceptible = lag >= threshold_;
        if (pattern.episodes.empty()) {
            pattern.minLag = lag;
            pattern.maxLag = lag;
            pattern.firstPerceptible = perceptible;
        } else {
            pattern.minLag = std::min(pattern.minLag, lag);
            pattern.maxLag = std::max(pattern.maxLag, lag);
        }
        pattern.totalLag += lag;
        if (perceptible)
            ++pattern.perceptibleCount;
        pattern.episodes.push_back(i); // lag-lint: allow(reserve-loop)
        ++shard.coveredEpisodes;
    }
    return shard;
}

PatternSet
PatternMiner::mine(const Session &session,
                   const FlatSession &flat) const
{
    std::vector<PatternShard> shards;
    shards.push_back(
        mineRange(session, flat, 0, session.episodes().size()));
    return merge(std::move(shards));
}

PatternShard
PatternMiner::mineRange(const Session &session,
                        const FlatSession &flat, std::size_t begin,
                        std::size_t end) const
{
    const auto &episodes = session.episodes();
    lag_assert(begin <= end && end <= episodes.size(),
               "episode range out of bounds");

    PatternShard shard;
    shard.beginEpisode = begin;
    shard.endEpisode = end;

    // Signature hash -> indices into shard.patterns.  A bucket holds
    // more than one entry only when distinct signatures collide on
    // the 64-bit FNV key, which the string fallback below resolves.
    std::unordered_multimap<std::uint64_t, std::size_t> index;

    // Flat location of each pattern's first episode, parallel to
    // shard.patterns: repeat episodes compare against it at the
    // symbol-id level instead of re-materializing the signature.
    struct FlatRef
    {
        std::uint32_t tree = 0;
        std::uint32_t node = 0;
    };
    std::vector<FlatRef> firstRef;

    FlatSigStack sigStack;
    std::string scratchSig;

    const auto &trees = flat.trees();
    for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t treeIdx = flat.episodeTree(i);
        const std::uint32_t node = flat.episodeNode(i);
        const FlatTree &tree = trees[treeIdx];
        if (flatDescendantCount(tree, node) == 0) {
            // "We exclude episodes that have no internal structure"
            // (paper §IV.A).
            ++shard.structurelessEpisodes;
            continue;
        }
        const std::uint64_t hash = flatSignatureHash(
            tree, node, session.strings(), sigStack);

        std::size_t match = shard.patterns.size();
        const auto [lo, hi] = index.equal_range(hash);
        for (auto it = lo; it != hi; ++it) {
            const FlatRef &ref = firstRef[it->second];
            if (flatStructureEquals(trees[ref.tree], ref.node, tree,
                                    node)) {
                match = it->second;
                break;
            }
            // Id-level mismatch under an equal hash: distinct symbol
            // ids can still join to the same signature bytes (the
            // "[A.B]" text is the canonical form, not the id tuple),
            // and distinct signatures can collide on 64 bits.  The
            // signature string is the arbiter either way, exactly as
            // in the node-tree path.
            scratchSig.clear();
            flatSignatureString(tree, node, session.strings(),
                                scratchSig, sigStack);
            if (scratchSig == shard.patterns[it->second].signature) {
                match = it->second;
                break;
            }
        }
        if (match == shard.patterns.size()) {
            Pattern pattern;
            pattern.key = hash;
            scratchSig.clear();
            flatSignatureString(tree, node, session.strings(),
                                scratchSig, sigStack);
            pattern.signature = scratchSig;
            pattern.descendants = flatNonGcDescendants(tree, node);
            pattern.depth = flatNonGcDepth(tree, node);
            index.emplace(hash, match);
            // Per-pattern membership is unknowable up front.
            firstRef.push_back({treeIdx, node}); // lag-lint: allow(reserve-loop)
            shard.patterns.push_back(std::move(pattern)); // lag-lint: allow(reserve-loop)
        }
        Pattern &pattern = shard.patterns[match];

        const DurationNs lag = episodes[i].duration();
        const bool perceptible = lag >= threshold_;
        if (pattern.episodes.empty()) {
            pattern.minLag = lag;
            pattern.maxLag = lag;
            pattern.firstPerceptible = perceptible;
        } else {
            pattern.minLag = std::min(pattern.minLag, lag);
            pattern.maxLag = std::max(pattern.maxLag, lag);
        }
        pattern.totalLag += lag;
        if (perceptible)
            ++pattern.perceptibleCount;
        pattern.episodes.push_back(i); // lag-lint: allow(reserve-loop)
        ++shard.coveredEpisodes;
    }
    return shard;
}

PatternSet
PatternMiner::merge(std::vector<PatternShard> shards) const
{
    PatternSet result;
    result.perceptibleThreshold = threshold_;

    std::size_t patternUpperBound = 0;
    for (std::size_t k = 0; k < shards.size(); ++k) {
        if (k > 0) {
            lag_assert(shards[k].beginEpisode ==
                           shards[k - 1].endEpisode,
                       "pattern shards must cover adjacent ranges");
        }
        patternUpperBound += shards[k].patterns.size();
    }
    result.patterns.reserve(patternUpperBound);

    std::unordered_map<std::string, std::size_t> index;
    for (auto &shard : shards) {
        for (auto &incoming : shard.patterns) {
            const auto [it, inserted] = index.emplace(
                incoming.signature, result.patterns.size());
            if (inserted) {
                result.patterns.push_back(std::move(incoming));
                continue;
            }
            // Later shards cover later episodes, so the existing
            // entry keeps first-seen fields (signature, key,
            // descendants, depth, firstPerceptible) and the member
            // list simply concatenates in ascending order.
            Pattern &pattern = result.patterns[it->second];
            pattern.minLag = std::min(pattern.minLag, incoming.minLag);
            pattern.maxLag = std::max(pattern.maxLag, incoming.maxLag);
            pattern.totalLag += incoming.totalLag;
            pattern.perceptibleCount += incoming.perceptibleCount;
            pattern.episodes.insert(pattern.episodes.end(),
                                    incoming.episodes.begin(),
                                    incoming.episodes.end());
        }
        result.coveredEpisodes += shard.coveredEpisodes;
        result.structurelessEpisodes += shard.structurelessEpisodes;
    }

    for (auto &pattern : result.patterns) {
        pattern.occurrence =
            classify(pattern.perceptibleCount, pattern.episodes.size());
    }

    std::stable_sort(result.patterns.begin(), result.patterns.end(),
                     [](const Pattern &a, const Pattern &b) {
                         return a.episodes.size() > b.episodes.size();
                     });
    return result;
}

} // namespace lag::core
