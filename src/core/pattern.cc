#include "pattern.hh"

#include <algorithm>
#include <unordered_map>

#include "util/hash.hh"
#include "util/logging.hh"

namespace lag::core
{

namespace
{

/** Append the signature of @p node (and descendants) to @p out. */
void
appendSignature(const IntervalNode &node,
                const trace::StringTable &strings, std::string &out)
{
    switch (node.type) {
      case IntervalType::Dispatch: out += 'D'; break;
      case IntervalType::Listener: out += 'L'; break;
      case IntervalType::Paint:    out += 'P'; break;
      case IntervalType::Native:   out += 'N'; break;
      case IntervalType::Async:    out += 'A'; break;
      case IntervalType::Gc:
        lag_panic("GC nodes are excluded before signature emission");
    }
    if (node.classSym != 0 || node.methodSym != 0) {
        out += '[';
        out += strings.lookup(node.classSym);
        out += '.';
        out += strings.lookup(node.methodSym);
        out += ']';
    }
    bool any_child = false;
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Gc)
            continue;
        if (!any_child) {
            out += '(';
            any_child = true;
        }
        appendSignature(child, strings, out);
    }
    if (any_child)
        out += ')';
}

/** Non-GC descendant count. */
std::size_t
nonGcDescendants(const IntervalNode &node)
{
    std::size_t count = 0;
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Gc)
            continue;
        count += 1 + nonGcDescendants(child);
    }
    return count;
}

/** Depth of the tree ignoring GC nodes; a leaf counts 1. */
std::size_t
nonGcDepth(const IntervalNode &node)
{
    std::size_t deepest = 0;
    for (const auto &child : node.children) {
        if (child.type == IntervalType::Gc)
            continue;
        deepest = std::max(deepest, nonGcDepth(child));
    }
    return deepest + 1;
}

OccurrenceClass
classify(std::size_t perceptible, std::size_t total)
{
    if (perceptible == 0)
        return OccurrenceClass::Never;
    if (perceptible == total)
        return OccurrenceClass::Always;
    if (perceptible == 1)
        return OccurrenceClass::Once;
    return OccurrenceClass::Sometimes;
}

} // namespace

const char *
occurrenceClassName(OccurrenceClass cls)
{
    switch (cls) {
      case OccurrenceClass::Always:    return "always";
      case OccurrenceClass::Sometimes: return "sometimes";
      case OccurrenceClass::Once:      return "once";
      case OccurrenceClass::Never:     return "never";
    }
    return "?";
}

std::string
patternSignature(const IntervalNode &root,
                 const trace::StringTable &strings)
{
    std::string out;
    appendSignature(root, strings, out);
    return out;
}

std::size_t
PatternSet::singletonCount() const
{
    std::size_t count = 0;
    for (const auto &pattern : patterns) {
        if (pattern.episodes.size() == 1)
            ++count;
    }
    return count;
}

std::size_t
PatternSet::perceptiblePatternCount() const
{
    std::size_t count = 0;
    for (const auto &pattern : patterns) {
        if (pattern.perceptibleCount > 0)
            ++count;
    }
    return count;
}

PatternMiner::PatternMiner(DurationNs perceptible_threshold)
    : threshold_(perceptible_threshold)
{
    lag_assert(threshold_ > 0, "perceptible threshold must be positive");
}

PatternSet
PatternMiner::mine(const Session &session) const
{
    PatternSet result;
    result.perceptibleThreshold = threshold_;

    std::unordered_map<std::string, std::size_t> index;
    const auto &episodes = session.episodes();

    for (std::size_t i = 0; i < episodes.size(); ++i) {
        const IntervalNode &root = session.episodeRoot(episodes[i]);
        if (root.children.empty()) {
            // "We exclude episodes that have no internal structure"
            // (paper §IV.A).
            ++result.structurelessEpisodes;
            continue;
        }
        std::string signature =
            patternSignature(root, session.strings());

        const auto [it, inserted] =
            index.emplace(signature, result.patterns.size());
        if (inserted) {
            Pattern pattern;
            pattern.key = fnv1a(signature);
            pattern.signature = std::move(signature);
            pattern.descendants = nonGcDescendants(root);
            pattern.depth = nonGcDepth(root);
            result.patterns.push_back(std::move(pattern));
        }
        Pattern &pattern = result.patterns[it->second];

        const DurationNs lag = episodes[i].duration();
        const bool perceptible = lag >= threshold_;
        if (pattern.episodes.empty()) {
            pattern.minLag = lag;
            pattern.maxLag = lag;
            pattern.firstPerceptible = perceptible;
        } else {
            pattern.minLag = std::min(pattern.minLag, lag);
            pattern.maxLag = std::max(pattern.maxLag, lag);
        }
        pattern.totalLag += lag;
        if (perceptible)
            ++pattern.perceptibleCount;
        pattern.episodes.push_back(i);
        ++result.coveredEpisodes;
    }

    for (auto &pattern : result.patterns) {
        pattern.occurrence =
            classify(pattern.perceptibleCount, pattern.episodes.size());
    }

    std::stable_sort(result.patterns.begin(), result.patterns.end(),
                     [](const Pattern &a, const Pattern &b) {
                         return a.episodes.size() > b.episodes.size();
                     });
    return result;
}

} // namespace lag::core
