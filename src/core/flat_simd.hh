/**
 * @file
 * SIMD kernel over the flat type array: first-marker search.
 *
 * Episode classification (triggers.hh) reduces, on the flat layout,
 * to "find the first byte in [from, to) of the preorder type array
 * that is Listener, Paint or Async".  That is a pure byte scan over
 * a contiguous slice — the one analysis inner loop worth an
 * explicit vector path.
 *
 * Three functions, one contract:
 *
 *  - findFirstMarkerScalar: the reference loop, always compiled,
 *    autovectorizable, and the differential baseline;
 *  - findFirstMarkerSimd: SSE2 or NEON 16-byte blocks (compiled
 *    whenever the ISA is available, regardless of LAG_SIMD, so the
 *    differential test always exercises it);
 *  - findFirstMarker: what the analyses call — dispatches to the
 *    vector path only when the build opted in via -DLAG_SIMD (the
 *    LAG_SIMD CMake option), scalar otherwise.
 *
 * Both paths return the same index for the same input by
 * construction (tests/core_flat_tree_test.cc proves it on random
 * arrays), so the byte-identical analysis contract cannot depend on
 * the dispatch decision.
 */

#ifndef LAG_CORE_FLAT_SIMD_HH
#define LAG_CORE_FLAT_SIMD_HH

#include <bit>
#include <cstdint>

#include "interval.hh"

#if defined(__SSE2__) || defined(__x86_64__)
#define LAG_HAS_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define LAG_HAS_NEON 1
#include <arm_neon.h>
#endif

namespace lag::core
{

/** The three trigger-marker interval types as raw bytes. @{ */
inline constexpr std::uint8_t kMarkerListener =
    static_cast<std::uint8_t>(IntervalType::Listener);
inline constexpr std::uint8_t kMarkerPaint =
    static_cast<std::uint8_t>(IntervalType::Paint);
inline constexpr std::uint8_t kMarkerAsync =
    static_cast<std::uint8_t>(IntervalType::Async);
/** @} */

/**
 * Index of the first byte in [from, to) of @p types equal to
 * Listener, Paint or Async; @p to when there is none.  Reference
 * scalar loop — simple enough for the compiler to autovectorize.
 */
inline std::uint32_t
findFirstMarkerScalar(const std::uint8_t *types, std::uint32_t from,
                      std::uint32_t to)
{
    for (std::uint32_t j = from; j < to; ++j) {
        const std::uint8_t t = types[j];
        if (t == kMarkerListener || t == kMarkerPaint ||
            t == kMarkerAsync)
            return j;
    }
    return to;
}

#if defined(LAG_HAS_SSE2)

/** SSE2 16-byte-block variant; same contract as the scalar loop. */
inline std::uint32_t
findFirstMarkerSimd(const std::uint8_t *types, std::uint32_t from,
                    std::uint32_t to)
{
    std::uint32_t j = from;
    const __m128i listener =
        _mm_set1_epi8(static_cast<char>(kMarkerListener));
    const __m128i paint =
        _mm_set1_epi8(static_cast<char>(kMarkerPaint));
    const __m128i async =
        _mm_set1_epi8(static_cast<char>(kMarkerAsync));
    for (; j + 16 <= to; j += 16) {
        const __m128i block = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(types + j));
        const __m128i hit = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi8(block, listener),
                         _mm_cmpeq_epi8(block, paint)),
            _mm_cmpeq_epi8(block, async));
        const auto mask =
            static_cast<unsigned>(_mm_movemask_epi8(hit));
        if (mask != 0)
            return j + static_cast<std::uint32_t>(
                           std::countr_zero(mask));
    }
    return findFirstMarkerScalar(types, j, to);
}

#elif defined(LAG_HAS_NEON)

/** NEON 16-byte-block variant; same contract as the scalar loop. */
inline std::uint32_t
findFirstMarkerSimd(const std::uint8_t *types, std::uint32_t from,
                    std::uint32_t to)
{
    std::uint32_t j = from;
    const uint8x16_t listener = vdupq_n_u8(kMarkerListener);
    const uint8x16_t paint = vdupq_n_u8(kMarkerPaint);
    const uint8x16_t async = vdupq_n_u8(kMarkerAsync);
    for (; j + 16 <= to; j += 16) {
        const uint8x16_t block = vld1q_u8(types + j);
        const uint8x16_t hit =
            vorrq_u8(vorrq_u8(vceqq_u8(block, listener),
                              vceqq_u8(block, paint)),
                     vceqq_u8(block, async));
        if (vmaxvq_u8(hit) != 0) {
            // A hit somewhere in this block; locate it scalar.
            return findFirstMarkerScalar(types, j, j + 16);
        }
    }
    return findFirstMarkerScalar(types, j, to);
}

#endif

/**
 * The dispatch the analyses call.  Explicit SIMD only when the
 * build enabled it (-DLAG_SIMD) and the ISA exists; the scalar
 * fallback is otherwise identical by contract.
 */
inline std::uint32_t
findFirstMarker(const std::uint8_t *types, std::uint32_t from,
                std::uint32_t to)
{
#if defined(LAG_SIMD) && \
    (defined(LAG_HAS_SSE2) || defined(LAG_HAS_NEON))
    return findFirstMarkerSimd(types, from, to);
#else
    return findFirstMarkerScalar(types, from, to);
#endif
}

} // namespace lag::core

#endif // LAG_CORE_FLAT_SIMD_HH
