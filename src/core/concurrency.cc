#include "concurrency.hh"

namespace lag::core
{

ConcurrencyResult
analyzeConcurrency(const Session &session,
                   DurationNs perceptible_threshold)
{
    std::uint64_t runnable_all = 0;
    std::uint64_t runnable_perc = 0;
    std::size_t samples_all = 0;
    std::size_t samples_perc = 0;
    const auto &samples = session.samples();

    for (const auto &episode : session.episodes()) {
        const bool perceptible =
            episode.duration() >= perceptible_threshold;
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            std::uint64_t runnable = 0;
            for (const auto &entry : samples[s].threads) {
                if (entry.state == trace::TraceThreadState::Runnable)
                    ++runnable;
            }
            runnable_all += runnable;
            ++samples_all;
            if (perceptible) {
                runnable_perc += runnable;
                ++samples_perc;
            }
        }
    }

    ConcurrencyResult result;
    result.samplesAll = samples_all;
    result.samplesPerceptible = samples_perc;
    if (samples_all > 0) {
        result.meanRunnableAll = static_cast<double>(runnable_all) /
                                 static_cast<double>(samples_all);
    }
    if (samples_perc > 0) {
        result.meanRunnablePerceptible =
            static_cast<double>(runnable_perc) /
            static_cast<double>(samples_perc);
    }
    return result;
}

ThreadStateResult
analyzeGuiStates(const Session &session, DurationNs perceptible_threshold)
{
    // Counters indexed by TraceThreadState.
    std::size_t all[4] = {0, 0, 0, 0};
    std::size_t perc[4] = {0, 0, 0, 0};
    const ThreadId gui = session.guiThread();
    const auto &samples = session.samples();

    for (const auto &episode : session.episodes()) {
        const bool perceptible =
            episode.duration() >= perceptible_threshold;
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            for (const auto &entry : samples[s].threads) {
                if (entry.thread != gui)
                    continue;
                const auto idx =
                    static_cast<std::size_t>(entry.state);
                ++all[idx];
                if (perceptible)
                    ++perc[idx];
                break;
            }
        }
    }

    const auto to_shares = [](const std::size_t counts[4]) {
        GuiStateShares shares;
        shares.sampleCount =
            counts[0] + counts[1] + counts[2] + counts[3];
        if (shares.sampleCount == 0)
            return shares;
        const auto total = static_cast<double>(shares.sampleCount);
        using TS = trace::TraceThreadState;
        shares.runnable =
            static_cast<double>(
                counts[static_cast<std::size_t>(TS::Runnable)]) /
            total;
        shares.blocked =
            static_cast<double>(
                counts[static_cast<std::size_t>(TS::Blocked)]) /
            total;
        shares.waiting =
            static_cast<double>(
                counts[static_cast<std::size_t>(TS::Waiting)]) /
            total;
        shares.sleeping =
            static_cast<double>(
                counts[static_cast<std::size_t>(TS::Sleeping)]) /
            total;
        return shares;
    };

    ThreadStateResult result;
    result.all = to_shares(all);
    result.perceptible = to_shares(perc);
    return result;
}

} // namespace lag::core
