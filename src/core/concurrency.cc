#include "concurrency.hh"

namespace lag::core
{

ConcurrencyCounts
countConcurrency(const Session &session, std::size_t begin,
                 std::size_t end, DurationNs perceptible_threshold)
{
    ConcurrencyCounts counts;
    const auto &samples = session.samples();
    const auto &episodes = session.episodes();

    for (std::size_t i = begin; i < end; ++i) {
        const Episode &episode = episodes[i];
        const bool perceptible =
            episode.duration() >= perceptible_threshold;
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            std::uint64_t runnable = 0;
            for (const auto &entry : samples[s].threads) {
                if (entry.state == trace::TraceThreadState::Runnable)
                    ++runnable;
            }
            counts.runnableAll += runnable;
            ++counts.samplesAll;
            if (perceptible) {
                counts.runnablePerceptible += runnable;
                ++counts.samplesPerceptible;
            }
        }
    }
    return counts;
}

ConcurrencyResult
finishConcurrency(const ConcurrencyCounts &counts)
{
    ConcurrencyResult result;
    result.samplesAll = counts.samplesAll;
    result.samplesPerceptible = counts.samplesPerceptible;
    if (counts.samplesAll > 0) {
        result.meanRunnableAll =
            static_cast<double>(counts.runnableAll) /
            static_cast<double>(counts.samplesAll);
    }
    if (counts.samplesPerceptible > 0) {
        result.meanRunnablePerceptible =
            static_cast<double>(counts.runnablePerceptible) /
            static_cast<double>(counts.samplesPerceptible);
    }
    return result;
}

ConcurrencyResult
analyzeConcurrency(const Session &session,
                   DurationNs perceptible_threshold)
{
    return finishConcurrency(
        countConcurrency(session, 0, session.episodes().size(),
                         perceptible_threshold));
}

GuiStateCounts
countGuiStates(const Session &session, std::size_t begin,
               std::size_t end, DurationNs perceptible_threshold)
{
    GuiStateCounts counts;
    const ThreadId gui = session.guiThread();
    const auto &samples = session.samples();
    const auto &episodes = session.episodes();

    for (std::size_t i = begin; i < end; ++i) {
        const Episode &episode = episodes[i];
        const bool perceptible =
            episode.duration() >= perceptible_threshold;
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            for (const auto &entry : samples[s].threads) {
                if (entry.thread != gui)
                    continue;
                const auto idx =
                    static_cast<std::size_t>(entry.state);
                ++counts.all[idx];
                if (perceptible)
                    ++counts.perceptible[idx];
                break;
            }
        }
    }
    return counts;
}

ThreadStateResult
finishGuiStates(const GuiStateCounts &counts)
{
    const auto to_shares = [](const std::array<std::size_t, 4> &bucket) {
        GuiStateShares shares;
        shares.sampleCount =
            bucket[0] + bucket[1] + bucket[2] + bucket[3];
        if (shares.sampleCount == 0)
            return shares;
        const auto total = static_cast<double>(shares.sampleCount);
        using TS = trace::TraceThreadState;
        shares.runnable =
            static_cast<double>(
                bucket[static_cast<std::size_t>(TS::Runnable)]) /
            total;
        shares.blocked =
            static_cast<double>(
                bucket[static_cast<std::size_t>(TS::Blocked)]) /
            total;
        shares.waiting =
            static_cast<double>(
                bucket[static_cast<std::size_t>(TS::Waiting)]) /
            total;
        shares.sleeping =
            static_cast<double>(
                bucket[static_cast<std::size_t>(TS::Sleeping)]) /
            total;
        return shares;
    };

    ThreadStateResult result;
    result.all = to_shares(counts.all);
    result.perceptible = to_shares(counts.perceptible);
    return result;
}

ThreadStateResult
analyzeGuiStates(const Session &session, DurationNs perceptible_threshold)
{
    return finishGuiStates(countGuiStates(session, 0,
                                          session.episodes().size(),
                                          perceptible_threshold));
}

} // namespace lag::core
