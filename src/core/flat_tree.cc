#include "flat_tree.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace lag::core
{

namespace
{

/** @name Signature byte sinks.
 * One emission routine, two sinks: the hasher folds the exact byte
 * stream appendSignature would produce (so the hash equals
 * fnv1a(signature) with no intermediate string), and the string
 * sink materializes that stream for first-seen patterns.
 * @{ */

struct HashSink
{
    Fnv1aHasher hasher;

    void put(char c) { hasher.addBytes(&c, 1); }

    void
    put(std::string_view s)
    {
        hasher.addBytes(s.data(), s.size());
    }
};

struct StringSink
{
    std::string &out;

    void put(char c) { out += c; }

    void
    put(std::string_view s)
    {
        out.append(s.data(), s.size());
    }
};

/** @} */

/** Emit one node's own bytes: type char plus [class.method]. */
template <typename Sink>
void
emitNodePayload(const FlatTree &tree, std::uint32_t i,
                const trace::StringTable &strings, Sink &sink)
{
    switch (tree.typeOf(i)) {
      case IntervalType::Dispatch: sink.put('D'); break;
      case IntervalType::Listener: sink.put('L'); break;
      case IntervalType::Paint:    sink.put('P'); break;
      case IntervalType::Native:   sink.put('N'); break;
      case IntervalType::Async:    sink.put('A'); break;
      case IntervalType::Gc:
        lag_panic("GC nodes are excluded before signature emission");
    }
    if (tree.classSym[i] != 0 || tree.methodSym[i] != 0) {
        sink.put('[');
        sink.put(strings.lookup(tree.classSym[i]));
        sink.put('.');
        sink.put(strings.lookup(tree.methodSym[i]));
        sink.put(']');
    }
}

/**
 * Emit the full signature of the subtree at @p root into @p sink —
 * the exact byte stream of pattern.cc's appendSignature, walked
 * with an explicit frame stack instead of recursion.
 */
template <typename Sink>
void
emitSignature(const FlatTree &tree, std::uint32_t root,
              const trace::StringTable &strings, Sink &sink,
              FlatSigStack &stack)
{
    emitNodePayload(tree, root, strings, sink);
    stack.clear();
    stack.reserve(16);
    stack.push_back({root + 1, tree.subtreeEnd[root], false});
    while (!stack.empty()) {
        FlatSigFrame &frame = stack.back();
        std::uint32_t j = frame.cursor;
        const std::uint32_t limit = frame.end;
        while (j < limit && tree.typeOf(j) == IntervalType::Gc)
            j = tree.subtreeEnd[j];
        if (j >= limit) {
            if (frame.opened)
                sink.put(')');
            stack.pop_back();
            continue;
        }
        if (!frame.opened) {
            sink.put('(');
            frame.opened = true;
        }
        frame.cursor = tree.subtreeEnd[j];
        emitNodePayload(tree, j, strings, sink);
        // Invalidates `frame`; its cursor is already advanced.
        stack.push_back({j + 1, tree.subtreeEnd[j], false});
    }
}

/** Projected (non-GC) subtree size, valid under gcLeavesOnly. */
std::uint32_t
nonGcSubtreeSize(const FlatTree &tree, std::uint32_t i)
{
    return tree.subtreeSize(i) -
           (tree.gcCountBefore[tree.subtreeEnd[i]] -
            tree.gcCountBefore[i]);
}

} // namespace

FlatTree
flattenForest(const IntervalVec &roots, Arena *arena)
{
    FlatTree tree(arena);

    // Sizing pre-pass (order does not matter, only the count), so
    // every parallel array is reserved exactly and arena storage is
    // never abandoned to regrowth.
    std::size_t n = 0;
    {
        std::vector<const IntervalNode *> dfs;
        dfs.reserve(64);
        for (const IntervalNode &root : roots)
            dfs.push_back(&root);
        while (!dfs.empty()) {
            const IntervalNode *node = dfs.back();
            dfs.pop_back();
            ++n;
            for (const IntervalNode &child : node->children)
                dfs.push_back(&child);
        }
    }

    tree.begin.reserve(n);
    tree.end.reserve(n);
    tree.subtreeEnd.reserve(n);
    tree.classSym.reserve(n);
    tree.methodSym.reserve(n);
    tree.type.reserve(n);
    tree.gcKind.reserve(n);
    tree.roots.reserve(roots.size());
    tree.gcCountBefore.reserve(n + 1);
    tree.gcTimeBefore.reserve(n + 1);
    tree.gcCountBefore.push_back(0);
    tree.gcTimeBefore.push_back(0);

    const auto emit = [&tree](const IntervalNode &node) {
        const auto idx =
            static_cast<std::uint32_t>(tree.begin.size());
        tree.begin.push_back(node.begin);
        tree.end.push_back(node.end);
        tree.subtreeEnd.push_back(0); // patched when subtree closes
        tree.classSym.push_back(node.classSym);
        tree.methodSym.push_back(node.methodSym);
        tree.type.push_back(static_cast<std::uint8_t>(node.type));
        tree.gcKind.push_back(
            static_cast<std::uint8_t>(node.gcKind));
        const bool is_gc = node.type == IntervalType::Gc;
        tree.gcCountBefore.push_back(tree.gcCountBefore.back() +
                                     (is_gc ? 1U : 0U));
        tree.gcTimeBefore.push_back(tree.gcTimeBefore.back() +
                                    (is_gc ? node.duration() : 0));
        if (is_gc && !node.children.empty())
            tree.gcLeavesOnly = false;
        return idx;
    };

    struct Frame
    {
        const IntervalNode *node;
        std::uint32_t flatIndex;
        std::size_t nextChild;
    };
    std::vector<Frame> stack;
    stack.reserve(64);

    for (const IntervalNode &root : roots) {
        tree.roots.push_back(
            static_cast<std::uint32_t>(tree.begin.size()));
        stack.push_back(Frame{&root, emit(root), 0});
        while (!stack.empty()) {
            Frame &frame = stack.back();
            if (frame.nextChild < frame.node->children.size()) {
                const IntervalNode &child =
                    frame.node->children[frame.nextChild++];
                stack.push_back(Frame{&child, emit(child), 0});
            } else {
                tree.subtreeEnd[frame.flatIndex] =
                    static_cast<std::uint32_t>(tree.begin.size());
                stack.pop_back();
            }
        }
    }
    return tree;
}

FlatSession
flattenSession(const Session &session, bool use_arena)
{
    FlatSession out;
    if (use_arena)
        out.arena_ = std::make_unique<Arena>();

    out.trees_.reserve(session.threads().size());
    for (const ThreadTree &thread : session.threads())
        out.trees_.push_back(
            flattenForest(thread.roots, out.arena_.get()));

    const auto &episodes = session.episodes();
    out.episodeTree_.reserve(episodes.size());
    out.episodeNode_.reserve(episodes.size());
    for (const Episode &episode : episodes) {
        out.episodeTree_.push_back(
            static_cast<std::uint32_t>(episode.treeIndex));
        out.episodeNode_.push_back(
            out.trees_[episode.treeIndex].roots[episode.rootIndex]);
    }
    return out;
}

std::size_t
flatDepth(const FlatTree &tree, std::uint32_t i)
{
    // Ancestor ends-stack scan: pop ancestors whose subtree closed,
    // push self; the stack height is the depth at each node.  The
    // stack is thread-local so the per-episode hot path never
    // allocates (it only grows to the deepest tree each thread sees).
    static thread_local std::vector<std::uint32_t> ends;
    ends.clear();
    std::size_t deepest = 0;
    const std::uint32_t limit = tree.subtreeEnd[i];
    for (std::uint32_t j = i; j < limit; ++j) {
        while (!ends.empty() && ends.back() <= j)
            ends.pop_back();
        // Capacity persists across calls (thread-local scratch).
        ends.push_back(tree.subtreeEnd[j]); // lag-lint: allow(reserve-loop)
        deepest = std::max(deepest, ends.size());
    }
    return deepest;
}

DurationNs
flatTypeTime(const FlatTree &tree, std::uint32_t i,
             IntervalType wanted)
{
    if (wanted == IntervalType::Gc && tree.gcLeavesOnly)
        return tree.gcTimeIn(i);
    DurationNs total = 0;
    std::uint32_t j = i + 1;
    const std::uint32_t limit = tree.subtreeEnd[i];
    while (j < limit) {
        if (tree.typeOf(j) == wanted) {
            // Matching subtrees are not descended (same-type
            // nesting is never double counted).
            total += tree.duration(j);
            j = tree.subtreeEnd[j];
        } else {
            ++j;
        }
    }
    return total;
}

std::size_t
flatNonGcDescendants(const FlatTree &tree, std::uint32_t i)
{
    if (tree.gcLeavesOnly)
        return tree.subtreeSize(i) - 1 - tree.gcCountIn(i);
    std::size_t count = 0;
    std::uint32_t j = i + 1;
    const std::uint32_t limit = tree.subtreeEnd[i];
    while (j < limit) {
        if (tree.typeOf(j) == IntervalType::Gc) {
            j = tree.subtreeEnd[j];
        } else {
            ++count;
            ++j;
        }
    }
    return count;
}

std::size_t
flatNonGcDepth(const FlatTree &tree, std::uint32_t i)
{
    // Reused across calls for the same reason as in flatDepth.
    static thread_local std::vector<std::uint32_t> ends;
    ends.clear();
    std::size_t deepest = 0;
    std::uint32_t j = i;
    const std::uint32_t limit = tree.subtreeEnd[i];
    while (j < limit) {
        if (j != i && tree.typeOf(j) == IntervalType::Gc) {
            j = tree.subtreeEnd[j];
            continue;
        }
        while (!ends.empty() && ends.back() <= j)
            ends.pop_back();
        // Capacity persists across calls (thread-local scratch).
        ends.push_back(tree.subtreeEnd[j]); // lag-lint: allow(reserve-loop)
        deepest = std::max(deepest, ends.size());
        ++j;
    }
    return deepest;
}

std::uint64_t
flatSignatureHash(const FlatTree &tree, std::uint32_t i,
                  const trace::StringTable &strings,
                  FlatSigStack &scratch)
{
    HashSink sink;
    emitSignature(tree, i, strings, sink, scratch);
    return sink.hasher.digest();
}

void
flatSignatureString(const FlatTree &tree, std::uint32_t i,
                    const trace::StringTable &strings,
                    std::string &out, FlatSigStack &scratch)
{
    StringSink sink{out};
    emitSignature(tree, i, strings, sink, scratch);
}

std::uint64_t
flatSignatureHash(const FlatTree &tree, std::uint32_t i,
                  const trace::StringTable &strings)
{
    FlatSigStack scratch;
    return flatSignatureHash(tree, i, strings, scratch);
}

std::string
flatSignatureString(const FlatTree &tree, std::uint32_t i,
                    const trace::StringTable &strings)
{
    std::string out;
    FlatSigStack scratch;
    flatSignatureString(tree, i, strings, out, scratch);
    return out;
}

bool
flatStructureEquals(const FlatTree &a, std::uint32_t ia,
                    const FlatTree &b, std::uint32_t ib)
{
    std::uint32_t ja = ia;
    std::uint32_t jb = ib;
    const std::uint32_t ea = a.subtreeEnd[ia];
    const std::uint32_t eb = b.subtreeEnd[ib];

    if (a.gcLeavesOnly && b.gcLeavesOnly) {
        // Hot path, O(1) memory: a preorder payload sequence plus
        // per-node projected subtree sizes determines the non-GC
        // tree uniquely.
        while (true) {
            while (ja < ea && a.typeOf(ja) == IntervalType::Gc)
                ja = a.subtreeEnd[ja];
            while (jb < eb && b.typeOf(jb) == IntervalType::Gc)
                jb = b.subtreeEnd[jb];
            const bool doneA = ja >= ea;
            const bool doneB = jb >= eb;
            if (doneA || doneB)
                return doneA == doneB;
            if (a.type[ja] != b.type[jb] ||
                a.classSym[ja] != b.classSym[jb] ||
                a.methodSym[ja] != b.methodSym[jb])
                return false;
            if (nonGcSubtreeSize(a, ja) != nonGcSubtreeSize(b, jb))
                return false;
            ++ja;
            ++jb;
        }
    }

    // General path (GC nodes with children — hand-built trees):
    // compare payload plus projected depth, tracked with ancestor
    // ends-stacks; preorder + depth also determines the tree.
    std::vector<std::uint32_t> sa;
    std::vector<std::uint32_t> sb;
    sa.reserve(16);
    sb.reserve(16);
    while (true) {
        while (ja < ea && a.typeOf(ja) == IntervalType::Gc)
            ja = a.subtreeEnd[ja];
        while (jb < eb && b.typeOf(jb) == IntervalType::Gc)
            jb = b.subtreeEnd[jb];
        const bool doneA = ja >= ea;
        const bool doneB = jb >= eb;
        if (doneA || doneB)
            return doneA == doneB;
        while (!sa.empty() && sa.back() <= ja)
            sa.pop_back();
        while (!sb.empty() && sb.back() <= jb)
            sb.pop_back();
        if (sa.size() != sb.size())
            return false;
        if (a.type[ja] != b.type[jb] ||
            a.classSym[ja] != b.classSym[jb] ||
            a.methodSym[ja] != b.methodSym[jb])
            return false;
        sa.push_back(a.subtreeEnd[ja]);
        sb.push_back(b.subtreeEnd[jb]);
        ++ja;
        ++jb;
    }
}

} // namespace lag::core
