/**
 * @file
 * Episode patterns: equivalence classes over interval-tree structure.
 *
 * Two episodes belong to the same pattern when their interval trees
 * have the same structure — interval types plus symbolic information
 * (class and method names) — ignoring all timing and excluding GC
 * nodes (paper §II.D). Ignoring GC lets a developer see whether a
 * class of episodes always or rarely suffers collections; ignoring
 * timing groups fast and slow instances of the same behaviour, which
 * is what makes the always/sometimes/once/never characterization of
 * §IV.B possible.
 *
 * Episodes whose dispatch interval has no children ("no internal
 * structure") are excluded from pattern coverage, matching the
 * paper's #Eps accounting in Table III.
 */

#ifndef LAG_CORE_PATTERN_HH
#define LAG_CORE_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "flat_tree.hh"
#include "session.hh"
#include "util/types.hh"

namespace lag::core
{

/** How a pattern's episodes relate to the perceptibility threshold
 * (paper §IV.B). Singleton patterns whose only episode is
 * perceptible classify as Always. */
enum class OccurrenceClass : std::uint8_t
{
    Always,    ///< every episode is perceptible
    Sometimes, ///< more than one, but not all
    Once,      ///< exactly one of several
    Never,     ///< none
};

/** Human-readable name of an occurrence class. */
const char *occurrenceClassName(OccurrenceClass cls);

/** One mined pattern with its statistics. */
struct Pattern
{
    /** Canonical structural signature (GC-free, timing-free). */
    std::string signature;

    /** Stable 64-bit key of the signature. */
    std::uint64_t key = 0;

    /** Member episodes as indices into Session::episodes(). */
    std::vector<std::size_t> episodes;

    /** Lag statistics over member episodes (Pattern Browser cols). */
    DurationNs minLag = 0;
    DurationNs maxLag = 0;
    DurationNs totalLag = 0;

    /** Member episodes at or above the perceptibility threshold. */
    std::size_t perceptibleCount = 0;

    /** True when the first (earliest) member is perceptible; one-
     * shot initialization effects show up as Once + firstPerceptible
     * (paper §II.D). */
    bool firstPerceptible = false;

    /** Non-GC descendants of the dispatch interval (Table III
     * "Descs"). */
    std::size_t descendants = 0;

    /** Depth of the (non-GC) interval tree (Table III "Depth"). */
    std::size_t depth = 0;

    OccurrenceClass occurrence = OccurrenceClass::Never;

    DurationNs
    avgLag() const
    {
        return episodes.empty()
                   ? 0
                   : totalLag / static_cast<DurationNs>(episodes.size());
    }
};

/** Result of mining one session. */
struct PatternSet
{
    /** Patterns, most populous first (ties: first-seen order). */
    std::vector<Pattern> patterns;

    /** Episodes covered by some pattern (Table III "#Eps"). */
    std::size_t coveredEpisodes = 0;

    /** Episodes excluded for having no internal structure. */
    std::size_t structurelessEpisodes = 0;

    /** The perceptibility threshold used for classification. */
    DurationNs perceptibleThreshold = 0;

    /** Number of singleton patterns (Table III "One-Ep"). */
    std::size_t singletonCount() const;

    /** Patterns with at least one perceptible episode. */
    std::size_t perceptiblePatternCount() const;
};

/**
 * Partial mining result over a contiguous episode range
 * [beginEpisode, endEpisode).  Patterns appear in first-seen order
 * with statistics covering only the range; PatternMiner::merge
 * reduces adjacent shards into a PatternSet that is byte-identical
 * to a serial mine over the union — the basis of within-session
 * parallel mining.
 */
struct PatternShard
{
    std::size_t beginEpisode = 0;
    std::size_t endEpisode = 0;

    /** Patterns in first-seen (episode) order within the range. */
    std::vector<Pattern> patterns;

    std::size_t coveredEpisodes = 0;
    std::size_t structurelessEpisodes = 0;
};

/**
 * Compute the canonical structural signature of an interval tree.
 * GC nodes are skipped entirely; timing is not part of the result.
 * Exposed for tests and for cross-session pattern matching.
 */
std::string patternSignature(const IntervalNode &root,
                              const trace::StringTable &strings);

/** Mines patterns from a session. */
class PatternMiner
{
  public:
    /** @param perceptible_threshold lag bound for classification
     *        (paper default: 100 ms). */
    explicit PatternMiner(DurationNs perceptible_threshold = msToNs(100));

    /** Group the session's episodes into patterns. */
    PatternSet mine(const Session &session) const;

    /** Mine only episodes [begin, end) into an ordered partial. */
    PatternShard mineRange(const Session &session, std::size_t begin,
                           std::size_t end) const;

    /**
     * Flat-tree mining: byte-identical to the node-tree overloads
     * (same patterns, order, statistics and signature strings), but
     * hashing each episode's signature in one pass over its flat
     * slice — no intermediate string, no recursion — and comparing
     * repeat episodes against their pattern at the symbol-id level.
     * A signature string is materialized only for first-seen
     * patterns.  @p flat must be flattenSession(session).
     */
    PatternSet mine(const Session &session,
                    const FlatSession &flat) const;

    /** Flat-tree overload of mineRange; same contract as mine. */
    PatternShard mineRange(const Session &session,
                           const FlatSession &flat, std::size_t begin,
                           std::size_t end) const;

    /**
     * Reduce shards over adjacent, ascending episode ranges into a
     * full PatternSet.  The result is independent of how the
     * episode axis was cut: mine() is merge({mineRange(all)}) by
     * definition, and any other contiguous partition merges to the
     * same bytes.
     */
    PatternSet merge(std::vector<PatternShard> shards) const;

  private:
    DurationNs threshold_;
};

} // namespace lag::core

#endif // LAG_CORE_PATTERN_HH
