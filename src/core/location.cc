#include "location.hh"

#include "classify.hh"

namespace lag::core
{

LocationShares
LocationTally::finish() const
{
    LocationShares shares;
    shares.sampleCount = appSamples + librarySamples;
    if (shares.sampleCount > 0) {
        const auto total = static_cast<double>(shares.sampleCount);
        shares.appFraction = static_cast<double>(appSamples) / total;
        shares.libraryFraction =
            static_cast<double>(librarySamples) / total;
    }
    shares.episodeCount = episodes;
    if (episodeTime > 0) {
        const auto total = static_cast<double>(episodeTime);
        shares.gcFraction = static_cast<double>(gcTime) / total;
        shares.nativeFraction =
            static_cast<double>(nativeTime) / total;
    }
    return shares;
}

DurationNs
nativeTimeExcludingGc(const IntervalNode &root)
{
    DurationNs total = 0;
    for (const auto &child : root.children) {
        if (child.type == IntervalType::Native) {
            // The whole native interval counts once; subtract any
            // collections that ran inside it.
            total += child.duration() - child.typeTime(IntervalType::Gc);
        } else if (child.type != IntervalType::Gc) {
            total += nativeTimeExcludingGc(child);
        }
    }
    return total;
}

LocationCounts
countLocation(const Session &session, std::size_t begin,
              std::size_t end, DurationNs perceptible_threshold)
{
    LocationCounts counts;
    const ThreadId gui = session.guiThread();
    const auto &samples = session.samples();
    const auto &episodes = session.episodes();

    for (std::size_t i = begin; i < end; ++i) {
        const Episode &episode = episodes[i];
        const IntervalNode &root = session.episodeRoot(episode);
        const bool perceptible =
            episode.duration() >= perceptible_threshold;

        const DurationNs gc_time = root.typeTime(IntervalType::Gc);
        const DurationNs native_time = nativeTimeExcludingGc(root);

        std::size_t app = 0;
        std::size_t lib = 0;
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            for (const auto &entry : samples[s].threads) {
                if (entry.thread != gui || entry.frames.empty())
                    continue;
                const auto &cls = session.symbol(
                    entry.frames.back().classSym);
                if (isRuntimeLibraryClass(cls))
                    ++lib;
                else
                    ++app;
                break;
            }
        }

        const auto apply = [&](LocationTally &tally) {
            tally.appSamples += app;
            tally.librarySamples += lib;
            tally.gcTime += gc_time;
            tally.nativeTime += native_time;
            tally.episodeTime += episode.duration();
            ++tally.episodes;
        };
        apply(counts.all);
        if (perceptible)
            apply(counts.perceptible);
    }
    return counts;
}

LocationAnalysisResult
finishLocation(const LocationCounts &counts)
{
    LocationAnalysisResult result;
    result.all = counts.all.finish();
    result.perceptible = counts.perceptible.finish();
    return result;
}

LocationAnalysisResult
analyzeLocation(const Session &session, DurationNs perceptible_threshold)
{
    return finishLocation(countLocation(session, 0,
                                        session.episodes().size(),
                                        perceptible_threshold));
}

} // namespace lag::core
