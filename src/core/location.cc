#include "location.hh"

#include "classify.hh"

namespace lag::core
{

LocationShares
LocationTally::finish() const
{
    LocationShares shares;
    shares.sampleCount = appSamples + librarySamples;
    if (shares.sampleCount > 0) {
        const auto total = static_cast<double>(shares.sampleCount);
        shares.appFraction = static_cast<double>(appSamples) / total;
        shares.libraryFraction =
            static_cast<double>(librarySamples) / total;
    }
    shares.episodeCount = episodes;
    if (episodeTime > 0) {
        const auto total = static_cast<double>(episodeTime);
        shares.gcFraction = static_cast<double>(gcTime) / total;
        shares.nativeFraction =
            static_cast<double>(nativeTime) / total;
    }
    return shares;
}

namespace
{

/** Guarded recursion body of nativeTimeExcludingGc. */
DurationNs
nativeTimeExcludingGcGuarded(const IntervalNode &root,
                             std::size_t nesting)
{
    if (nesting >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    DurationNs total = 0;
    for (const auto &child : root.children) {
        if (child.type == IntervalType::Native) {
            // The whole native interval counts once; subtract any
            // collections that ran inside it.
            total += child.duration() - child.typeTime(IntervalType::Gc);
        } else if (child.type != IntervalType::Gc) {
            total += nativeTimeExcludingGcGuarded(child, nesting + 1);
        }
    }
    return total;
}

/** Sample-based app/library split for one episode: classify the
 * innermost GUI-thread frame of each sample (paper §IV.D). */
void
countGuiSamples(const Session &session, const Episode &episode,
                std::size_t &app, std::size_t &lib)
{
    const ThreadId gui = session.guiThread();
    const auto &samples = session.samples();
    for (std::size_t s = episode.firstSample; s < episode.lastSample;
         ++s) {
        for (const auto &entry : samples[s].threads) {
            if (entry.thread != gui || entry.frames.empty())
                continue;
            const auto &cls =
                session.symbol(entry.frames.back().classSym);
            if (isRuntimeLibraryClass(cls))
                ++lib;
            else
                ++app;
            break;
        }
    }
}

/** Fold one episode's measurements into both tallies. */
void
applyEpisode(LocationCounts &counts, const Episode &episode,
             bool perceptible, std::size_t app, std::size_t lib,
             DurationNs gc_time, DurationNs native_time)
{
    const auto apply = [&](LocationTally &tally) {
        tally.appSamples += app;
        tally.librarySamples += lib;
        tally.gcTime += gc_time;
        tally.nativeTime += native_time;
        tally.episodeTime += episode.duration();
        ++tally.episodes;
    };
    apply(counts.all);
    if (perceptible)
        apply(counts.perceptible);
}

} // namespace

DurationNs
nativeTimeExcludingGc(const IntervalNode &root)
{
    return nativeTimeExcludingGcGuarded(root, 0);
}

DurationNs
flatNativeTimeExcludingGc(const FlatTree &tree, std::uint32_t root)
{
    DurationNs total = 0;
    const std::uint32_t sliceEnd = tree.subtreeEnd[root];
    std::uint32_t j = root + 1;
    while (j < sliceEnd) {
        const IntervalType t = tree.typeOf(j);
        if (t == IntervalType::Native) {
            // The whole native interval counts once; subtract any
            // collections that ran inside it, then skip its subtree.
            total += tree.duration(j) -
                     flatTypeTime(tree, j, IntervalType::Gc);
            j = tree.subtreeEnd[j];
        } else if (t == IntervalType::Gc) {
            j = tree.subtreeEnd[j];
        } else {
            ++j;
        }
    }
    return total;
}

LocationCounts
countLocation(const Session &session, std::size_t begin,
              std::size_t end, DurationNs perceptible_threshold)
{
    LocationCounts counts;
    const auto &episodes = session.episodes();

    for (std::size_t i = begin; i < end; ++i) {
        const Episode &episode = episodes[i];
        const IntervalNode &root = session.episodeRoot(episode);
        const bool perceptible =
            episode.duration() >= perceptible_threshold;

        const DurationNs gc_time = root.typeTime(IntervalType::Gc);
        const DurationNs native_time = nativeTimeExcludingGc(root);

        std::size_t app = 0;
        std::size_t lib = 0;
        countGuiSamples(session, episode, app, lib);
        applyEpisode(counts, episode, perceptible, app, lib, gc_time,
                     native_time);
    }
    return counts;
}

LocationCounts
countLocation(const Session &session, const FlatSession &flat,
              std::size_t begin, std::size_t end,
              DurationNs perceptible_threshold)
{
    LocationCounts counts;
    const auto &episodes = session.episodes();
    const auto &trees = flat.trees();

    for (std::size_t i = begin; i < end; ++i) {
        const Episode &episode = episodes[i];
        const FlatTree &tree = trees[flat.episodeTree(i)];
        const std::uint32_t node = flat.episodeNode(i);
        const bool perceptible =
            episode.duration() >= perceptible_threshold;

        const DurationNs gc_time =
            flatTypeTime(tree, node, IntervalType::Gc);
        const DurationNs native_time =
            flatNativeTimeExcludingGc(tree, node);

        std::size_t app = 0;
        std::size_t lib = 0;
        countGuiSamples(session, episode, app, lib);
        applyEpisode(counts, episode, perceptible, app, lib, gc_time,
                     native_time);
    }
    return counts;
}

LocationAnalysisResult
finishLocation(const LocationCounts &counts)
{
    LocationAnalysisResult result;
    result.all = counts.all.finish();
    result.perceptible = counts.perceptible.finish();
    return result;
}

LocationAnalysisResult
analyzeLocation(const Session &session, DurationNs perceptible_threshold)
{
    return finishLocation(countLocation(session, 0,
                                        session.episodes().size(),
                                        perceptible_threshold));
}

} // namespace lag::core
