/**
 * @file
 * Pattern-level statistics for Figures 3 and 4.
 */

#ifndef LAG_CORE_PATTERN_STATS_HH
#define LAG_CORE_PATTERN_STATS_HH

#include <utility>
#include <vector>

#include "pattern.hh"

namespace lag::core
{

/**
 * Figure 3: cumulative distribution of episodes into patterns.
 * Patterns are taken most-populous-first; point k is
 * (fraction of patterns considered, fraction of episodes covered),
 * both in [0, 1]. The first point is (0, 0); the last is (1, 1)
 * whenever the set is non-empty.
 */
std::vector<std::pair<double, double>>
patternCdf(const PatternSet &patterns);

/** Figure 4: shares of patterns per occurrence class; the four
 * fractions sum to 1 when patterns exist. */
struct OccurrenceShares
{
    double always = 0.0;
    double sometimes = 0.0;
    double once = 0.0;
    double never = 0.0;
    std::size_t patternCount = 0;
};

/** Classify all patterns of a set. */
OccurrenceShares occurrenceShares(const PatternSet &patterns);

} // namespace lag::core

#endif // LAG_CORE_PATTERN_STATS_HH
