/**
 * @file
 * Pattern-level statistics for Figures 3 and 4, plus the compact
 * per-pattern summaries the incremental cross-session aggregation
 * path persists in the analysis-result cache.
 */

#ifndef LAG_CORE_PATTERN_STATS_HH
#define LAG_CORE_PATTERN_STATS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pattern.hh"

namespace lag::core
{

/**
 * Everything cross-session merging (aggregate.hh) consumes from one
 * mined pattern — the pattern minus its episode index list. Small
 * enough to cache per session, sufficient to rebuild a
 * MergedPatternSet without re-mining.
 */
struct PatternSummary
{
    std::string signature;
    std::uint64_t key = 0;
    std::size_t episodeCount = 0;
    std::size_t perceptibleCount = 0;
    DurationNs minLag = 0;
    DurationNs maxLag = 0;
    DurationNs totalLag = 0;
    std::size_t descendants = 0;
    std::size_t depth = 0;
};

/** One session's pattern set, summarized for aggregation. Summaries
 * keep the set's order (most populous first), which the merge
 * depends on for byte-identical output. */
struct PatternSetSummary
{
    std::vector<PatternSummary> patterns;
    DurationNs perceptibleThreshold = 0;
};

/** Project a mined pattern set onto its aggregation summary. */
PatternSetSummary summarizePatterns(const PatternSet &patterns);

/**
 * Figure 3: cumulative distribution of episodes into patterns.
 * Patterns are taken most-populous-first; point k is
 * (fraction of patterns considered, fraction of episodes covered),
 * both in [0, 1]. The first point is (0, 0); the last is (1, 1)
 * whenever the set is non-empty.
 */
std::vector<std::pair<double, double>>
patternCdf(const PatternSet &patterns);

/**
 * Linear resample of a patternCdf() curve onto the 0..100
 * pattern-percent grid (101 points) — the form Figure 3 plots,
 * session averages accumulate, and `/v1/cdf` serves. A degenerate
 * curve (fewer than two points) covers everything from 1%.
 */
std::vector<double>
resampleCdf(const std::vector<std::pair<double, double>> &points);

/** Figure 4: shares of patterns per occurrence class; the four
 * fractions sum to 1 when patterns exist. */
struct OccurrenceShares
{
    double always = 0.0;
    double sometimes = 0.0;
    double once = 0.0;
    double never = 0.0;
    std::size_t patternCount = 0;
};

/** Classify all patterns of a set. */
OccurrenceShares occurrenceShares(const PatternSet &patterns);

} // namespace lag::core

#endif // LAG_CORE_PATTERN_STATS_HH
