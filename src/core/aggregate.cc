#include "aggregate.hh"

#include <algorithm>
#include <unordered_map>

#include "util/logging.hh"

namespace lag::core
{

std::size_t
MergedPatternSet::recurringCount() const
{
    std::size_t count = 0;
    for (const auto &pattern : patterns) {
        if (pattern.recurring(sessionCount))
            ++count;
    }
    return count;
}

std::size_t
MergedPatternSet::recurringAlwaysCount() const
{
    std::size_t count = 0;
    for (const auto &pattern : patterns) {
        if (pattern.recurring(sessionCount) &&
            pattern.occurrence == OccurrenceClass::Always) {
            ++count;
        }
    }
    return count;
}

MergedPatternSet
mergeAnalyses(const std::vector<PatternSetSummary> &sets)
{
    MergedPatternSet result;
    if (sets.empty())
        return result;
    result.sessionCount = sets.size();
    result.perceptibleThreshold = sets.front().perceptibleThreshold;
    for (const auto &set : sets) {
        lag_assert(set.perceptibleThreshold ==
                       result.perceptibleThreshold,
                   "pattern sets mined with different thresholds");
    }

    std::size_t totalPatterns = 0;
    for (const auto &set : sets)
        totalPatterns += set.patterns.size();

    std::unordered_map<std::string, std::size_t> index;
    index.reserve(totalPatterns);
    result.patterns.reserve(totalPatterns);
    for (std::size_t s = 0; s < sets.size(); ++s) {
        for (const PatternSummary &pattern : sets[s].patterns) {
            const auto [it, inserted] = index.emplace(
                pattern.signature, result.patterns.size());
            if (inserted) {
                MergedPattern merged;
                merged.signature = pattern.signature;
                merged.key = pattern.key;
                merged.descendants = pattern.descendants;
                merged.depth = pattern.depth;
                merged.minLag = pattern.minLag;
                merged.maxLag = pattern.maxLag;
                // Each pattern can occur in at most one set per
                // session, so sets.size() bounds both lists.
                merged.sessions.reserve(sets.size());
                merged.episodeCounts.reserve(sets.size());
                result.patterns.push_back(std::move(merged));
            }
            MergedPattern &merged = result.patterns[it->second];
            merged.sessions.push_back(s);
            merged.episodeCounts.push_back(pattern.episodeCount);
            merged.totalEpisodes += pattern.episodeCount;
            merged.totalPerceptible += pattern.perceptibleCount;
            merged.totalLag += pattern.totalLag;
            merged.minLag = std::min(merged.minLag, pattern.minLag);
            merged.maxLag = std::max(merged.maxLag, pattern.maxLag);
        }
    }

    for (auto &merged : result.patterns) {
        if (merged.totalPerceptible == 0)
            merged.occurrence = OccurrenceClass::Never;
        else if (merged.totalPerceptible == merged.totalEpisodes)
            merged.occurrence = OccurrenceClass::Always;
        else if (merged.totalPerceptible == 1)
            merged.occurrence = OccurrenceClass::Once;
        else
            merged.occurrence = OccurrenceClass::Sometimes;
    }

    std::stable_sort(result.patterns.begin(), result.patterns.end(),
                     [](const MergedPattern &a,
                        const MergedPattern &b) {
                         return a.totalEpisodes > b.totalEpisodes;
                     });
    return result;
}

MergedPatternSet
mergePatternSets(const std::vector<PatternSet> &sets)
{
    // One merge algorithm for both inputs: project each set onto its
    // summary and run the summary merge. summarizePatterns preserves
    // the in-set order and every field the merge reads, so this is
    // byte-identical to merging the full sets directly — the
    // equivalence the incremental cache path relies on.
    std::vector<PatternSetSummary> summaries;
    summaries.reserve(sets.size());
    for (const PatternSet &set : sets)
        summaries.push_back(summarizePatterns(set));
    return mergeAnalyses(summaries);
}

MergedPatternSet
minePatternsAcrossSessions(const std::vector<Session> &sessions,
                           DurationNs perceptible_threshold)
{
    const PatternMiner miner(perceptible_threshold);
    std::vector<PatternSet> sets;
    sets.reserve(sessions.size());
    for (const Session &session : sessions)
        sets.push_back(miner.mine(session));
    return mergePatternSets(sets);
}

} // namespace lag::core
