#include "interval.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lag::core
{

const char *
intervalTypeName(IntervalType type)
{
    switch (type) {
      case IntervalType::Dispatch: return "Dispatch";
      case IntervalType::Listener: return "Listener";
      case IntervalType::Paint:    return "Paint";
      case IntervalType::Native:   return "Native";
      case IntervalType::Async:    return "Async";
      case IntervalType::Gc:       return "GC";
    }
    return "?";
}

IntervalType
fromTraceKind(trace::IntervalKind kind)
{
    switch (kind) {
      case trace::IntervalKind::Listener: return IntervalType::Listener;
      case trace::IntervalKind::Paint:    return IntervalType::Paint;
      case trace::IntervalKind::Native:   return IntervalType::Native;
      case trace::IntervalKind::Async:    return IntervalType::Async;
    }
    lag_panic("unknown trace interval kind");
}

std::size_t
IntervalNode::descendantCount() const
{
    std::size_t count = children.size();
    for (const auto &child : children)
        count += child.descendantCount();
    return count;
}

std::size_t
IntervalNode::depth() const
{
    std::size_t deepest = 0;
    for (const auto &child : children)
        deepest = std::max(deepest, child.depth());
    return deepest + 1;
}

DurationNs
IntervalNode::typeTime(IntervalType wanted) const
{
    DurationNs total = 0;
    for (const auto &child : children) {
        if (child.type == wanted)
            total += child.duration();
        else
            total += child.typeTime(wanted);
    }
    return total;
}

} // namespace lag::core
