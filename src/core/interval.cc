#include "interval.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace lag::core
{

const char *
intervalTypeName(IntervalType type)
{
    switch (type) {
      case IntervalType::Dispatch: return "Dispatch";
      case IntervalType::Listener: return "Listener";
      case IntervalType::Paint:    return "Paint";
      case IntervalType::Native:   return "Native";
      case IntervalType::Async:    return "Async";
      case IntervalType::Gc:       return "GC";
    }
    return "?";
}

IntervalType
fromTraceKind(trace::IntervalKind kind)
{
    switch (kind) {
      case trace::IntervalKind::Listener: return IntervalType::Listener;
      case trace::IntervalKind::Paint:    return IntervalType::Paint;
      case trace::IntervalKind::Native:   return IntervalType::Native;
      case trace::IntervalKind::Async:    return IntervalType::Async;
    }
    lag_panic("unknown trace interval kind");
}

void
throwIntervalTooDeep()
{
    throw trace::TraceError(
        "interval tree exceeds maximum nesting depth (" +
        std::to_string(kMaxIntervalDepth) + ")");
}

namespace
{

std::size_t
descendantCountGuarded(const IntervalNode &node, std::size_t depth)
{
    if (depth >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    std::size_t count = node.children.size();
    for (const auto &child : node.children)
        count += descendantCountGuarded(child, depth + 1);
    return count;
}

std::size_t
depthGuarded(const IntervalNode &node, std::size_t depth)
{
    if (depth >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    std::size_t deepest = 0;
    for (const auto &child : node.children)
        deepest = std::max(deepest, depthGuarded(child, depth + 1));
    return deepest + 1;
}

DurationNs
typeTimeGuarded(const IntervalNode &node, IntervalType wanted,
                std::size_t depth)
{
    if (depth >= kMaxIntervalDepth)
        throwIntervalTooDeep();
    DurationNs total = 0;
    for (const auto &child : node.children) {
        if (child.type == wanted)
            total += child.duration();
        else
            total += typeTimeGuarded(child, wanted, depth + 1);
    }
    return total;
}

} // namespace

std::size_t
IntervalNode::descendantCount() const
{
    return descendantCountGuarded(*this, 0);
}

std::size_t
IntervalNode::depth() const
{
    return depthGuarded(*this, 0);
}

DurationNs
IntervalNode::typeTime(IntervalType wanted) const
{
    return typeTimeGuarded(*this, wanted, 0);
}

} // namespace lag::core
