#include "pattern_stats.hh"

namespace lag::core
{

PatternSetSummary
summarizePatterns(const PatternSet &patterns)
{
    PatternSetSummary summary;
    summary.perceptibleThreshold = patterns.perceptibleThreshold;
    summary.patterns.reserve(patterns.patterns.size());
    for (const Pattern &pattern : patterns.patterns) {
        PatternSummary s;
        s.signature = pattern.signature;
        s.key = pattern.key;
        s.episodeCount = pattern.episodes.size();
        s.perceptibleCount = pattern.perceptibleCount;
        s.minLag = pattern.minLag;
        s.maxLag = pattern.maxLag;
        s.totalLag = pattern.totalLag;
        s.descendants = pattern.descendants;
        s.depth = pattern.depth;
        summary.patterns.push_back(std::move(s));
    }
    return summary;
}

std::vector<std::pair<double, double>>
patternCdf(const PatternSet &patterns)
{
    std::vector<std::pair<double, double>> points;
    points.emplace_back(0.0, 0.0);
    if (patterns.patterns.empty() || patterns.coveredEpisodes == 0)
        return points;

    // PatternSet::patterns is already sorted most-populous-first.
    const auto total_patterns =
        static_cast<double>(patterns.patterns.size());
    const auto total_episodes =
        static_cast<double>(patterns.coveredEpisodes);
    points.reserve(patterns.patterns.size() + 1);
    std::size_t covered = 0;
    for (std::size_t i = 0; i < patterns.patterns.size(); ++i) {
        covered += patterns.patterns[i].episodes.size();
        points.emplace_back(
            static_cast<double>(i + 1) / total_patterns,
            static_cast<double>(covered) / total_episodes);
    }
    return points;
}

std::vector<double>
resampleCdf(const std::vector<std::pair<double, double>> &points)
{
    std::vector<double> grid(101, 0.0);
    if (points.size() < 2) {
        // Degenerate set: everything covered immediately.
        for (int x = 1; x <= 100; ++x)
            grid[static_cast<std::size_t>(x)] = 1.0;
        return grid;
    }
    std::size_t seg = 0;
    for (int x = 0; x <= 100; ++x) {
        const double fx = static_cast<double>(x) / 100.0;
        while (seg + 1 < points.size() - 1 &&
               points[seg + 1].first < fx) {
            ++seg;
        }
        const auto &[x0, y0] = points[seg];
        const auto &[x1, y1] = points[seg + 1];
        double y;
        if (fx <= x0) {
            y = y0;
        } else if (fx >= x1) {
            y = y1;
        } else {
            y = y0 + (y1 - y0) * (fx - x0) / (x1 - x0);
        }
        grid[static_cast<std::size_t>(x)] = y;
    }
    return grid;
}

OccurrenceShares
occurrenceShares(const PatternSet &patterns)
{
    std::size_t counts[4] = {0, 0, 0, 0};
    for (const auto &pattern : patterns.patterns)
        ++counts[static_cast<std::size_t>(pattern.occurrence)];

    OccurrenceShares shares;
    shares.patternCount = patterns.patterns.size();
    if (shares.patternCount == 0)
        return shares;
    const auto total = static_cast<double>(shares.patternCount);
    using OC = OccurrenceClass;
    shares.always =
        static_cast<double>(counts[static_cast<std::size_t>(OC::Always)]) /
        total;
    shares.sometimes =
        static_cast<double>(
            counts[static_cast<std::size_t>(OC::Sometimes)]) /
        total;
    shares.once =
        static_cast<double>(counts[static_cast<std::size_t>(OC::Once)]) /
        total;
    shares.never =
        static_cast<double>(counts[static_cast<std::size_t>(OC::Never)]) /
        total;
    return shares;
}

} // namespace lag::core
