/**
 * @file
 * Strict-JSON emitters for the paper's figure and table data.
 *
 * One function per query shape, consumed by two callers that must
 * agree byte for byte: the batch side (tests deriving reference
 * output straight from engine::aggregateFromCache results) and the
 * serve side (`lagd` answering the /v1 endpoints). Keeping the emitters here
 * — below both — is what makes the serve acceptance criterion
 * ("every response byte-identical to the equivalent batch-derived
 * output") a structural property instead of a maintained promise.
 *
 * Output is strict RFC 8259 JSON (obs::checkJson-clean): doubles go
 * through std::to_chars shortest round-trip form (never NaN/Inf —
 * asserted), strings are escaped, and 64-bit pattern keys are
 * emitted as hex *strings* so JavaScript clients never round them
 * through a double.
 */

#ifndef LAG_CORE_FIGURE_JSON_HH
#define LAG_CORE_FIGURE_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "aggregate.hh"
#include "concurrency.hh"
#include "location.hh"
#include "overview.hh"
#include "pattern_stats.hh"
#include "triggers.hh"

namespace lag::core
{

/** One app's session-averaged analysis results — the inputs every
 * figure draws from (the serve layer's hot per-app state, and what
 * bench::analyzeStudy computes per app). */
struct AppFigureData
{
    std::string name;
    OverviewRow overview;
    TriggerAnalysisResult triggers;
    LocationAnalysisResult location;
    ConcurrencyResult concurrency;
    ThreadStateResult states;
    OccurrenceShares occurrence;
    /** Session-averaged pattern CDF on the percent grid (0..100). */
    std::vector<double> cdfEpisodesAtPatternPercent;
};

/** Escape @p s for inclusion inside a JSON string literal (without
 * the surrounding quotes). */
std::string jsonEscape(std::string_view s);

/** Shortest round-trip decimal form of @p v; lag_asserts that @p v
 * is finite (NaN/Inf are not JSON). */
std::string jsonNumber(double v);

/** Pattern keys as fixed-width hex strings ("0x%016x" without the
 * prefix), the `pattern=` query-parameter form. */
std::string patternKeyHex(std::uint64_t key);

/** Parse patternKeyHex() output (or any hex string, with or
 * without 0x); returns false on malformed input. */
bool parsePatternKeyHex(std::string_view text, std::uint64_t &key);

/** Sort orders patternsJson() accepts. */
inline constexpr std::string_view kPatternSortKeys[] = {
    "episodes", "total_lag", "max_lag", "avg_lag"};

/**
 * `/v1/patterns`: the top @p limit patterns of @p set ordered by
 * @p sort ("episodes" keeps the set's most-populous-first order;
 * "total_lag", "max_lag" and "avg_lag" sort descending, stably, so
 * ties keep set order). @p limit 0 means all. Unknown @p sort
 * returns an empty string — the caller's 400.
 */
std::string patternsJson(std::string_view app,
                         const MergedPatternSet &set,
                         std::string_view sort, std::size_t limit);

/** `/v1/cdf`: the session-averaged percent-grid CDF of one app. */
std::string cdfJson(std::string_view app,
                    const std::vector<double> &grid);

/**
 * `/v1/episodes`: drill-down into one merged pattern — which
 * sessions it occurred in, episode counts per session, and the lag
 * envelope.
 */
std::string episodesJson(std::string_view app,
                         const MergedPattern &pattern,
                         std::size_t session_count);

/** Figure/table ids figureJson() serves. */
std::vector<std::string> figureIds();

/**
 * `/v1/figures/<id>`: the data behind one paper figure or table
 * across all apps — "fig3" (pattern CDFs), "fig4" (occurrence),
 * "fig5" (triggers), "fig6" (location), "fig7" (concurrency),
 * "fig8" (thread states), "table3" (overview rows). Unknown id
 * returns an empty string — the caller's 404.
 */
std::string figureJson(std::string_view id,
                       const std::vector<AppFigureData> &apps);

} // namespace lag::core

#endif // LAG_CORE_FIGURE_JSON_HH
