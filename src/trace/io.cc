#include "io.hh"

#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "bytes.hh"
#include "util/hash.hh"
#include "util/strings.hh"

static_assert(std::endian::native == std::endian::little,
              "the trace format assumes a little-endian host");

namespace lag::trace
{

namespace
{

constexpr char kMagic[8] = {'L', 'A', 'G', 'T', 'R', 'C', '\0', '\0'};

void
writeMeta(ByteWriter &w, const TraceMeta &meta)
{
    w.str(meta.appName);
    w.u32(meta.sessionIndex);
    w.u64(meta.seed);
    w.i64(meta.startTime);
    w.i64(meta.endTime);
    w.i64(meta.samplePeriod);
    w.i64(meta.filterThreshold);
    w.u64(meta.filteredShortEpisodes);
    w.i64(meta.totalInEpisodeTime);
}

TraceMeta
readMeta(ByteReader &r)
{
    TraceMeta meta;
    meta.appName = r.str();
    meta.sessionIndex = r.u32();
    meta.seed = r.u64();
    meta.startTime = r.i64();
    meta.endTime = r.i64();
    meta.samplePeriod = r.i64();
    meta.filterThreshold = r.i64();
    meta.filteredShortEpisodes = r.u64();
    meta.totalInEpisodeTime = r.i64();
    return meta;
}

void
writeEvent(ByteWriter &w, const TraceEvent &event)
{
    w.u8(static_cast<std::uint8_t>(event.type));
    w.u32(event.thread);
    w.i64(event.time);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u32(event.classSym);
    w.u32(event.methodSym);
    w.u8(static_cast<std::uint8_t>(event.gcKind));
}

TraceEvent
readEvent(ByteReader &r)
{
    TraceEvent event;
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(EventType::GcEnd))
        throw TraceError("unknown event type " + std::to_string(type));
    event.type = static_cast<EventType>(type);
    event.thread = r.u32();
    event.time = r.i64();
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(IntervalKind::Async))
        throw TraceError("unknown interval kind " + std::to_string(kind));
    event.kind = static_cast<IntervalKind>(kind);
    event.classSym = r.u32();
    event.methodSym = r.u32();
    const std::uint8_t gc = r.u8();
    if (gc > static_cast<std::uint8_t>(TraceGcKind::Major))
        throw TraceError("unknown GC kind " + std::to_string(gc));
    event.gcKind = static_cast<TraceGcKind>(gc);
    return event;
}

void
writeSample(ByteWriter &w, const TraceSample &sample)
{
    w.i64(sample.time);
    w.u32(static_cast<std::uint32_t>(sample.threads.size()));
    for (const auto &entry : sample.threads) {
        w.u32(entry.thread);
        w.u8(static_cast<std::uint8_t>(entry.state));
        w.u32(static_cast<std::uint32_t>(entry.frames.size()));
        for (const auto &frame : entry.frames) {
            w.u32(frame.classSym);
            w.u32(frame.methodSym);
        }
    }
}

TraceSample
readSample(ByteReader &r)
{
    TraceSample sample;
    sample.time = r.i64();
    const std::uint32_t threads = r.u32();
    sample.threads.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i) {
        SampleThread entry;
        entry.thread = r.u32();
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(TraceThreadState::Sleeping))
            throw TraceError("unknown thread state " +
                             std::to_string(state));
        entry.state = static_cast<TraceThreadState>(state);
        const std::uint32_t frames = r.u32();
        entry.frames.reserve(frames);
        for (std::uint32_t f = 0; f < frames; ++f) {
            SampleFrame frame;
            frame.classSym = r.u32();
            frame.methodSym = r.u32();
            entry.frames.push_back(frame);
        }
        sample.threads.push_back(std::move(entry));
    }
    return sample;
}

} // namespace

std::string
serializeTrace(const Trace &trace)
{
    ByteWriter payload;
    writeMeta(payload, trace.meta);

    payload.u32(static_cast<std::uint32_t>(trace.threads.size()));
    for (const auto &thread : trace.threads) {
        payload.u32(thread.id);
        payload.str(thread.name);
        payload.u8(thread.isGui ? 1 : 0);
    }

    payload.u32(static_cast<std::uint32_t>(trace.strings.size()));
    for (const auto &s : trace.strings.all())
        payload.str(s);

    payload.u64(trace.events.size());
    for (const auto &event : trace.events)
        writeEvent(payload, event);

    payload.u64(trace.samples.size());
    for (const auto &sample : trace.samples)
        writeSample(payload, sample);

    const std::string body = payload.take();

    Fnv1aHasher hasher;
    hasher.addBytes(body.data(), body.size());

    ByteWriter out;
    for (char c : kMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(kFormatVersion);
    out.u64(hasher.digest());
    std::string result = out.take();
    result += body;
    return result;
}

Trace
deserializeTrace(std::string_view data)
{
    ByteReader header(data);
    for (char expected : kMagic) {
        if (header.u8() != static_cast<std::uint8_t>(expected))
            throw TraceError("bad magic: not a LagAlyzer trace file");
    }
    const std::uint32_t version = header.u32();
    if (version != kFormatVersion) {
        throw TraceError("unsupported trace format version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kFormatVersion) + ")");
    }
    const std::uint64_t checksum = header.u64();

    const std::string_view body = data.substr(header.position());
    Fnv1aHasher hasher;
    hasher.addBytes(body.data(), body.size());
    if (hasher.digest() != checksum)
        throw TraceError("trace payload checksum mismatch");

    ByteReader r(body);
    Trace trace;
    trace.meta = readMeta(r);

    const std::uint32_t threads = r.u32();
    trace.threads.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i) {
        TraceThread thread;
        thread.id = r.u32();
        thread.name = r.str();
        thread.isGui = r.u8() != 0;
        trace.threads.push_back(std::move(thread));
    }

    const std::uint32_t strings = r.u32();
    std::vector<std::string> list;
    list.reserve(strings);
    for (std::uint32_t i = 0; i < strings; ++i)
        list.push_back(r.str());
    trace.strings = StringTable::fromList(std::move(list));

    const std::uint64_t events = r.u64();
    trace.events.reserve(events);
    for (std::uint64_t i = 0; i < events; ++i)
        trace.events.push_back(readEvent(r));

    const std::uint64_t samples = r.u64();
    trace.samples.reserve(samples);
    for (std::uint64_t i = 0; i < samples; ++i)
        trace.samples.push_back(readSample(r));

    if (r.remaining() != 0) {
        throw TraceError("trailing garbage: " +
                         std::to_string(r.remaining()) +
                         " bytes after trace payload");
    }
    trace.validate();
    return trace;
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    const std::string data = serializeTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw TraceError("cannot open '" + path + "' for writing");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out)
        throw TraceError("write to '" + path + "' failed");
}

void
writeTraceFileAtomic(const Trace &trace, const std::string &path)
{
    const std::string temp = path + ".tmp";
    writeTraceFile(trace, temp);
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        throw TraceError("cannot rename '" + temp + "' to '" + path +
                         "': " + ec.message());
    }
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in && !in.eof())
        throw TraceError("read from '" + path + "' failed");
    return deserializeTrace(buffer.str());
}

std::string
toJsonl(const Trace &trace)
{
    std::ostringstream out;
    out << "{\"record\":\"meta\",\"app\":\""
        << xmlEscape(trace.meta.appName) << "\",\"session\":"
        << trace.meta.sessionIndex << ",\"seed\":" << trace.meta.seed
        << ",\"start\":" << trace.meta.startTime << ",\"end\":"
        << trace.meta.endTime << ",\"filtered\":"
        << trace.meta.filteredShortEpisodes << "}\n";
    for (const auto &thread : trace.threads) {
        out << "{\"record\":\"thread\",\"id\":" << thread.id
            << ",\"name\":\"" << xmlEscape(thread.name)
            << "\",\"gui\":" << (thread.isGui ? "true" : "false")
            << "}\n";
    }
    for (const auto &event : trace.events) {
        out << "{\"record\":\"event\",\"type\":\""
            << eventTypeName(event.type) << "\",\"t\":" << event.time;
        if (event.type == EventType::IntervalBegin ||
            event.type == EventType::IntervalEnd) {
            out << ",\"kind\":\"" << intervalKindName(event.kind) << '"';
        }
        if (event.type == EventType::IntervalBegin) {
            out << ",\"class\":\""
                << xmlEscape(trace.strings.lookup(event.classSym))
                << "\",\"method\":\""
                << xmlEscape(trace.strings.lookup(event.methodSym))
                << '"';
        }
        if (event.type == EventType::GcBegin) {
            out << ",\"gc\":\""
                << (event.gcKind == TraceGcKind::Major ? "major"
                                                       : "minor")
                << '"';
        }
        if (event.type != EventType::GcBegin &&
            event.type != EventType::GcEnd) {
            out << ",\"thread\":" << event.thread;
        }
        out << "}\n";
    }
    for (const auto &sample : trace.samples) {
        out << "{\"record\":\"sample\",\"t\":" << sample.time
            << ",\"threads\":[";
        for (std::size_t i = 0; i < sample.threads.size(); ++i) {
            const auto &entry = sample.threads[i];
            if (i > 0)
                out << ',';
            out << "{\"id\":" << entry.thread << ",\"state\":\""
                << traceThreadStateName(entry.state)
                << "\",\"depth\":" << entry.frames.size() << '}';
        }
        out << "]}\n";
    }
    return out.str();
}

} // namespace lag::trace
