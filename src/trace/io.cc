#include "io.hh"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "bytes.hh"
#include "mapped_file.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/hash.hh"
#include "util/strings.hh"
#include "util/thread_name.hh"

static_assert(std::endian::native == std::endian::little,
              "the trace format assumes a little-endian host");

namespace lag::trace
{

namespace
{

constexpr char kMagic[8] = {'L', 'A', 'G', 'T', 'R', 'C', '\0', '\0'};

/**
 * Sectioned count header at the head of the payload: record counts
 * up front so the decoder pre-sizes every vector exactly, plus
 * aggregate sample totals so implausible (corrupt) counts are
 * rejected before any large allocation.
 */
struct SectionHeader
{
    std::uint32_t threadCount = 0;
    std::uint32_t stringCount = 0;
    std::uint64_t eventCount = 0;
    std::uint64_t sampleCount = 0;
    std::uint64_t sampleThreadTotal = 0;
    std::uint64_t frameTotal = 0;
};

void
writeSectionHeader(ByteWriter &w, const SectionHeader &header)
{
    w.u32(header.threadCount);
    w.u32(header.stringCount);
    w.u64(header.eventCount);
    w.u64(header.sampleCount);
    w.u64(header.sampleThreadTotal);
    w.u64(header.frameTotal);
}

SectionHeader
readSectionHeader(ByteReader &r)
{
    SectionHeader header;
    header.threadCount = r.u32();
    header.stringCount = r.u32();
    header.eventCount = r.u64();
    header.sampleCount = r.u64();
    header.sampleThreadTotal = r.u64();
    header.frameTotal = r.u64();
    return header;
}

/**
 * Reject a section count that could not possibly fit in the bytes
 * that remain, before reserving storage for it.  @p minBytes is the
 * smallest legal wire size of one record.
 */
void
checkSectionCount(const char *section, std::uint64_t count,
                  std::size_t minBytes, std::size_t remaining)
{
    if (count > 0 && count > remaining / minBytes) {
        throw TraceError(
            "implausible " + std::string(section) + " count " +
            std::to_string(count) + ": only " +
            std::to_string(remaining) + " payload bytes remain");
    }
}

/** Context prefix for a malformed record: which one, and where. */
std::string
recordContext(const char *kind, std::uint64_t index,
              std::size_t payloadOffset)
{
    return std::string(kind) + " " + std::to_string(index) +
           " at payload offset " + std::to_string(payloadOffset) +
           ": ";
}

void
writeMeta(ByteWriter &w, const TraceMeta &meta)
{
    w.str(meta.appName);
    w.u32(meta.sessionIndex);
    w.u64(meta.seed);
    w.i64(meta.startTime);
    w.i64(meta.endTime);
    w.i64(meta.samplePeriod);
    w.i64(meta.filterThreshold);
    w.u64(meta.filteredShortEpisodes);
    w.i64(meta.totalInEpisodeTime);
}

TraceMeta
readMeta(ByteReader &r)
{
    TraceMeta meta;
    meta.appName = r.str();
    meta.sessionIndex = r.u32();
    meta.seed = r.u64();
    meta.startTime = r.i64();
    meta.endTime = r.i64();
    meta.samplePeriod = r.i64();
    meta.filterThreshold = r.i64();
    meta.filteredShortEpisodes = r.u64();
    meta.totalInEpisodeTime = r.i64();
    return meta;
}

void
writeEvent(ByteWriter &w, const TraceEvent &event)
{
    w.u8(static_cast<std::uint8_t>(event.type));
    w.u32(event.thread);
    w.i64(event.time);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u32(event.classSym);
    w.u32(event.methodSym);
    w.u8(static_cast<std::uint8_t>(event.gcKind));
}

/**
 * Decode one fixed-size event record straight from the buffer: a
 * single bounds check covers all seven fields, so the hot decode
 * loop does one range test per event instead of seven.
 */
TraceEvent
readEvent(ByteReader &r)
{
    const char *p = r.bytes(kEventWireBytes);
    TraceEvent event;
    const auto type = static_cast<std::uint8_t>(p[0]);
    if (type > static_cast<std::uint8_t>(EventType::GcEnd))
        throw TraceError("unknown event type " + std::to_string(type));
    event.type = static_cast<EventType>(type);
    std::memcpy(&event.thread, p + 1, sizeof(event.thread));
    std::memcpy(&event.time, p + 5, sizeof(event.time));
    const auto kind = static_cast<std::uint8_t>(p[13]);
    if (kind > static_cast<std::uint8_t>(IntervalKind::Async))
        throw TraceError("unknown interval kind " + std::to_string(kind));
    event.kind = static_cast<IntervalKind>(kind);
    std::memcpy(&event.classSym, p + 14, sizeof(event.classSym));
    std::memcpy(&event.methodSym, p + 18, sizeof(event.methodSym));
    const auto gc = static_cast<std::uint8_t>(p[22]);
    if (gc > static_cast<std::uint8_t>(TraceGcKind::Major))
        throw TraceError("unknown GC kind " + std::to_string(gc));
    event.gcKind = static_cast<TraceGcKind>(gc);
    return event;
}

void
writeSample(ByteWriter &w, const TraceSample &sample)
{
    w.i64(sample.time);
    w.u32(static_cast<std::uint32_t>(sample.threads.size()));
    for (const auto &entry : sample.threads) {
        w.u32(entry.thread);
        w.u8(static_cast<std::uint8_t>(entry.state));
        w.u32(static_cast<std::uint32_t>(entry.frames.size()));
        for (const auto &frame : entry.frames) {
            w.u32(frame.classSym);
            w.u32(frame.methodSym);
        }
    }
}

TraceSample
readSample(ByteReader &r)
{
    TraceSample sample;
    sample.time = r.i64();
    const std::uint32_t threads = r.u32();
    // Each entry needs at least thread id + state + frame count.
    checkSectionCount("sample thread", threads, 9, r.remaining());
    sample.threads.reserve(threads);
    for (std::uint32_t i = 0; i < threads; ++i) {
        SampleThread entry;
        entry.thread = r.u32();
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(TraceThreadState::Sleeping))
            throw TraceError("unknown thread state " +
                             std::to_string(state));
        entry.state = static_cast<TraceThreadState>(state);
        const std::uint32_t frames = r.u32();
        checkSectionCount("sample frame", frames, 8, r.remaining());
        entry.frames.resize(frames);
        if (frames > 0) {
            // Frames are a flat run of {u32 class, u32 method}
            // pairs: one bounds check, one copy.
            static_assert(sizeof(SampleFrame) ==
                              2 * sizeof(std::uint32_t),
                          "SampleFrame must match its wire layout");
            const char *raw =
                r.bytes(static_cast<std::size_t>(frames) * 8);
            std::memcpy(entry.frames.data(), raw,
                        static_cast<std::size_t>(frames) * 8);
        }
        sample.threads.push_back(std::move(entry));
    }
    return sample;
}

} // namespace

std::string
serializeTrace(const Trace &trace)
{
    SectionHeader header;
    header.threadCount =
        static_cast<std::uint32_t>(trace.threads.size());
    header.stringCount =
        static_cast<std::uint32_t>(trace.strings.size());
    header.eventCount = trace.events.size();
    header.sampleCount = trace.samples.size();
    for (const auto &sample : trace.samples) {
        header.sampleThreadTotal += sample.threads.size();
        for (const auto &entry : sample.threads)
            header.frameTotal += entry.frames.size();
    }

    ByteWriter payload;
    writeSectionHeader(payload, header);
    writeMeta(payload, trace.meta);

    for (const auto &thread : trace.threads) {
        payload.u32(thread.id);
        payload.str(thread.name);
        payload.u8(thread.isGui ? 1 : 0);
    }

    for (const auto &s : trace.strings.all())
        payload.str(s);

    for (const auto &event : trace.events)
        writeEvent(payload, event);

    for (const auto &sample : trace.samples)
        writeSample(payload, sample);

    const std::string body = payload.take();

    Fnv1aHasher hasher;
    hasher.addBytes(body.data(), body.size());

    ByteWriter out;
    for (char c : kMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(kFormatVersion);
    out.u64(hasher.digest());
    std::string result = out.take();
    result += body;
    return result;
}

Trace
deserializeTrace(std::string_view data)
{
    LAG_SPAN_ARG("trace.decode", "bytes", data.size());
    const std::int64_t decode_start = processElapsedNs();

    ByteReader header(data);
    for (char expected : kMagic) {
        if (header.u8() != static_cast<std::uint8_t>(expected))
            throw TraceError("bad magic: not a LagAlyzer trace file");
    }
    const std::uint32_t version = header.u32();
    if (version != kFormatVersion) {
        throw TraceError("unsupported trace format version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kFormatVersion) + ")");
    }
    const std::uint64_t checksum = header.u64();

    const std::string_view body = data.substr(header.position());
    Fnv1aHasher hasher;
    hasher.addBytes(body.data(), body.size());
    if (hasher.digest() != checksum)
        throw TraceError("trace payload checksum mismatch");

    ByteReader r(body);
    Trace trace;
    const SectionHeader counts = readSectionHeader(r);
    // Minimum wire sizes: thread = id + name length + gui flag,
    // string = length prefix, sample = time + thread count.
    checkSectionCount("thread", counts.threadCount, 9, r.remaining());
    checkSectionCount("string", counts.stringCount, 4, r.remaining());
    checkSectionCount("event", counts.eventCount, kEventWireBytes,
                      r.remaining());
    checkSectionCount("sample", counts.sampleCount, 12,
                      r.remaining());

    trace.meta = readMeta(r);

    {
        LAG_SPAN_ARG("trace.decode.threads", "count",
                     counts.threadCount);
        trace.threads.reserve(counts.threadCount);
        for (std::uint32_t i = 0; i < counts.threadCount; ++i) {
            TraceThread thread;
            thread.id = r.u32();
            thread.name = r.str();
            thread.isGui = r.u8() != 0;
            trace.threads.push_back(std::move(thread));
        }
    }

    {
        LAG_SPAN_ARG("trace.decode.strings", "count",
                     counts.stringCount);
        std::vector<std::string> list;
        list.reserve(counts.stringCount);
        for (std::uint32_t i = 0; i < counts.stringCount; ++i)
            list.push_back(r.str());
        trace.strings = StringTable::fromList(std::move(list));
    }

    {
        LAG_SPAN_ARG("trace.decode.events", "count",
                     counts.eventCount);
        trace.events.reserve(counts.eventCount);
        for (std::uint64_t i = 0; i < counts.eventCount; ++i) {
            const std::size_t at = r.position();
            try {
                trace.events.push_back(readEvent(r));
            } catch (const TraceError &e) {
                throw TraceError(recordContext("event", i, at) +
                                 e.what());
            }
        }
    }

    std::uint64_t sampleThreadTotal = 0;
    std::uint64_t frameTotal = 0;
    {
        LAG_SPAN_ARG("trace.decode.samples", "count",
                     counts.sampleCount);
        trace.samples.reserve(counts.sampleCount);
        for (std::uint64_t i = 0; i < counts.sampleCount; ++i) {
            const std::size_t at = r.position();
            try {
                trace.samples.push_back(readSample(r));
            } catch (const TraceError &e) {
                throw TraceError(recordContext("sample", i, at) +
                                 e.what());
            }
            const TraceSample &sample = trace.samples.back();
            sampleThreadTotal += sample.threads.size();
            for (const auto &entry : sample.threads)
                frameTotal += entry.frames.size();
        }
    }
    if (sampleThreadTotal != counts.sampleThreadTotal ||
        frameTotal != counts.frameTotal) {
        throw TraceError(
            "sample totals disagree with the section header");
    }

    if (r.remaining() != 0) {
        throw TraceError("trailing garbage: " +
                         std::to_string(r.remaining()) +
                         " bytes after trace payload");
    }
    trace.validate();

    // Decode metrics: byte/decode totals plus a latency histogram
    // per whole trace (not per record — the grain must stay coarse
    // enough that metrics never show up in a decode profile).
    static obs::Counter &decode_bytes =
        obs::metrics().counter("trace.decode.bytes");
    static obs::Counter &decode_count =
        obs::metrics().counter("trace.decode.count");
    static obs::Histogram &decode_ms = obs::metrics().histogram(
        "trace.decode.ms", {1, 5, 10, 50, 100, 500, 1000});
    decode_bytes.add(data.size());
    decode_count.add();
    decode_ms.record((processElapsedNs() - decode_start) /
                     1'000'000);
    return trace;
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    const std::string data = serializeTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw TraceError("cannot open '" + path + "' for writing");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out)
        throw TraceError("write to '" + path + "' failed");
}

void
writeTraceFileAtomic(const Trace &trace, const std::string &path)
{
    const std::string temp = path + ".tmp";
    writeTraceFile(trace, temp);
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        throw TraceError("cannot rename '" + temp + "' to '" + path +
                         "': " + ec.message());
    }
}

Trace
readTraceFile(const std::string &path, TraceReadMode mode)
{
    if (mode == TraceReadMode::Auto) {
        mode = MappedFile::supported() ? TraceReadMode::Mapped
                                       : TraceReadMode::Stream;
    }
    if (mode == TraceReadMode::Mapped) {
        const MappedFile file(path);
        return deserializeTrace(file.view());
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in && !in.eof())
        throw TraceError("read from '" + path + "' failed");
    return deserializeTrace(buffer.str());
}

std::string
toJsonl(const Trace &trace)
{
    std::ostringstream out;
    out << "{\"record\":\"meta\",\"app\":\""
        << xmlEscape(trace.meta.appName) << "\",\"session\":"
        << trace.meta.sessionIndex << ",\"seed\":" << trace.meta.seed
        << ",\"start\":" << trace.meta.startTime << ",\"end\":"
        << trace.meta.endTime << ",\"filtered\":"
        << trace.meta.filteredShortEpisodes << "}\n";
    for (const auto &thread : trace.threads) {
        out << "{\"record\":\"thread\",\"id\":" << thread.id
            << ",\"name\":\"" << xmlEscape(thread.name)
            << "\",\"gui\":" << (thread.isGui ? "true" : "false")
            << "}\n";
    }
    for (const auto &event : trace.events) {
        out << "{\"record\":\"event\",\"type\":\""
            << eventTypeName(event.type) << "\",\"t\":" << event.time;
        if (event.type == EventType::IntervalBegin ||
            event.type == EventType::IntervalEnd) {
            out << ",\"kind\":\"" << intervalKindName(event.kind) << '"';
        }
        if (event.type == EventType::IntervalBegin) {
            out << ",\"class\":\""
                << xmlEscape(trace.strings.lookup(event.classSym))
                << "\",\"method\":\""
                << xmlEscape(trace.strings.lookup(event.methodSym))
                << '"';
        }
        if (event.type == EventType::GcBegin) {
            out << ",\"gc\":\""
                << (event.gcKind == TraceGcKind::Major ? "major"
                                                       : "minor")
                << '"';
        }
        if (event.type != EventType::GcBegin &&
            event.type != EventType::GcEnd) {
            out << ",\"thread\":" << event.thread;
        }
        out << "}\n";
    }
    for (const auto &sample : trace.samples) {
        out << "{\"record\":\"sample\",\"t\":" << sample.time
            << ",\"threads\":[";
        for (std::size_t i = 0; i < sample.threads.size(); ++i) {
            const auto &entry = sample.threads[i];
            if (i > 0)
                out << ',';
            out << "{\"id\":" << entry.thread << ",\"state\":\""
                << traceThreadStateName(entry.state)
                << "\",\"depth\":" << entry.frames.size() << '}';
        }
        out << "]}\n";
    }
    return out.str();
}

} // namespace lag::trace
