#include "io.hh"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "bytes.hh"
#include "mapped_file.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/hash.hh"
#include "util/strings.hh"
#include "util/thread_name.hh"
#include "wire.hh"

static_assert(std::endian::native == std::endian::little,
              "the trace format assumes a little-endian host");

namespace lag::trace
{

// The record-level codec lives in wire.hh so the incremental tail
// reader (tailer.cc) decodes with the exact same functions — the
// batch/streamed byte-identity contract depends on it.
using wire::checkSectionCount;
using wire::kMagic;
using wire::readEvent;
using wire::readMeta;
using wire::readSample;
using wire::readSectionHeader;
using wire::recordContext;
using wire::SectionHeader;
using wire::writeEvent;
using wire::writeMeta;
using wire::writeSample;
using wire::writeSectionHeader;

std::string
serializeTrace(const Trace &trace)
{
    SectionHeader header;
    header.threadCount =
        static_cast<std::uint32_t>(trace.threads.size());
    header.stringCount =
        static_cast<std::uint32_t>(trace.strings.size());
    header.eventCount = trace.events.size();
    header.sampleCount = trace.samples.size();
    for (const auto &sample : trace.samples) {
        header.sampleThreadTotal += sample.threads.size();
        for (const auto &entry : sample.threads)
            header.frameTotal += entry.frames.size();
    }

    ByteWriter payload;
    writeSectionHeader(payload, header);
    writeMeta(payload, trace.meta);

    for (const auto &thread : trace.threads) {
        payload.u32(thread.id);
        payload.str(thread.name);
        payload.u8(thread.isGui ? 1 : 0);
    }

    for (const auto &s : trace.strings.all())
        payload.str(s);

    for (const auto &event : trace.events)
        writeEvent(payload, event);

    for (const auto &sample : trace.samples)
        writeSample(payload, sample);

    const std::string body = payload.take();

    Fnv1aHasher hasher;
    hasher.addBytes(body.data(), body.size());

    ByteWriter out;
    for (char c : kMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(kFormatVersion);
    out.u64(hasher.digest());
    std::string result = out.take();
    result += body;
    return result;
}

Trace
deserializeTrace(std::string_view data)
{
    LAG_SPAN_ARG("trace.decode", "bytes", data.size());
    const std::int64_t decode_start = processElapsedNs();

    ByteReader header(data);
    for (char expected : kMagic) {
        if (header.u8() != static_cast<std::uint8_t>(expected))
            throw TraceError("bad magic: not a LagAlyzer trace file");
    }
    const std::uint32_t version = header.u32();
    if (version != kFormatVersion) {
        throw TraceError("unsupported trace format version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kFormatVersion) + ")");
    }
    const std::uint64_t checksum = header.u64();

    const std::string_view body = data.substr(header.position());
    Fnv1aHasher hasher;
    hasher.addBytes(body.data(), body.size());
    if (hasher.digest() != checksum)
        throw TraceError("trace payload checksum mismatch");

    ByteReader r(body);
    Trace trace;
    const SectionHeader counts = readSectionHeader(r);
    // Minimum wire sizes: thread = id + name length + gui flag,
    // string = length prefix, sample = time + thread count.
    checkSectionCount("thread", counts.threadCount, 9, r.remaining());
    checkSectionCount("string", counts.stringCount, 4, r.remaining());
    checkSectionCount("event", counts.eventCount, kEventWireBytes,
                      r.remaining());
    checkSectionCount("sample", counts.sampleCount, 12,
                      r.remaining());

    trace.meta = readMeta(r);

    {
        LAG_SPAN_ARG("trace.decode.threads", "count",
                     counts.threadCount);
        trace.threads.reserve(counts.threadCount);
        for (std::uint32_t i = 0; i < counts.threadCount; ++i) {
            TraceThread thread;
            thread.id = r.u32();
            thread.name = r.str();
            thread.isGui = r.u8() != 0;
            trace.threads.push_back(std::move(thread));
        }
    }

    {
        LAG_SPAN_ARG("trace.decode.strings", "count",
                     counts.stringCount);
        std::vector<std::string> list;
        list.reserve(counts.stringCount);
        for (std::uint32_t i = 0; i < counts.stringCount; ++i)
            list.push_back(r.str());
        trace.strings = StringTable::fromList(std::move(list));
    }

    {
        LAG_SPAN_ARG("trace.decode.events", "count",
                     counts.eventCount);
        trace.events.reserve(counts.eventCount);
        for (std::uint64_t i = 0; i < counts.eventCount; ++i) {
            const std::size_t at = r.position();
            try {
                trace.events.push_back(readEvent(r));
            } catch (const TraceError &e) {
                // Keep the kind: the tailer relies on Truncated
                // surviving the context-wrapping rethrow.
                throw TraceError(recordContext("event", i, at) +
                                     e.what(),
                                 e.kind());
            }
        }
    }

    std::uint64_t sampleThreadTotal = 0;
    std::uint64_t frameTotal = 0;
    {
        LAG_SPAN_ARG("trace.decode.samples", "count",
                     counts.sampleCount);
        trace.samples.reserve(counts.sampleCount);
        for (std::uint64_t i = 0; i < counts.sampleCount; ++i) {
            const std::size_t at = r.position();
            try {
                trace.samples.push_back(readSample(
                    r, {counts.sampleThreadTotal, counts.frameTotal,
                        /*completeBuffer=*/true}));
            } catch (const TraceError &e) {
                throw TraceError(recordContext("sample", i, at) +
                                     e.what(),
                                 e.kind());
            }
            const TraceSample &sample = trace.samples.back();
            sampleThreadTotal += sample.threads.size();
            for (const auto &entry : sample.threads)
                frameTotal += entry.frames.size();
        }
    }
    if (sampleThreadTotal != counts.sampleThreadTotal ||
        frameTotal != counts.frameTotal) {
        throw TraceError(
            "sample totals disagree with the section header");
    }

    if (r.remaining() != 0) {
        throw TraceError("trailing garbage: " +
                         std::to_string(r.remaining()) +
                         " bytes after trace payload");
    }
    trace.validate();

    // Decode metrics: byte/decode totals plus a latency histogram
    // per whole trace (not per record — the grain must stay coarse
    // enough that metrics never show up in a decode profile).
    static obs::Counter &decode_bytes =
        obs::metrics().counter("trace.decode.bytes");
    static obs::Counter &decode_count =
        obs::metrics().counter("trace.decode.count");
    static obs::Histogram &decode_ms = obs::metrics().histogram(
        "trace.decode.ms", {1, 5, 10, 50, 100, 500, 1000});
    decode_bytes.add(data.size());
    decode_count.add();
    decode_ms.record((processElapsedNs() - decode_start) /
                     1'000'000);
    return trace;
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    const std::string data = serializeTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw TraceError("cannot open '" + path + "' for writing");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out)
        throw TraceError("write to '" + path + "' failed");
}

void
writeTraceFileAtomic(const Trace &trace, const std::string &path)
{
    const std::string temp = path + ".tmp";
    writeTraceFile(trace, temp);
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        throw TraceError("cannot rename '" + temp + "' to '" + path +
                         "': " + ec.message());
    }
}

Trace
readTraceFile(const std::string &path, TraceReadMode mode)
{
    if (mode == TraceReadMode::Auto) {
        mode = MappedFile::supported() ? TraceReadMode::Mapped
                                       : TraceReadMode::Stream;
    }
    if (mode == TraceReadMode::Mapped) {
        const MappedFile file(path);
        return deserializeTrace(file.view());
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in && !in.eof())
        throw TraceError("read from '" + path + "' failed");
    return deserializeTrace(buffer.str());
}

std::string
toJsonl(const Trace &trace)
{
    std::ostringstream out;
    out << "{\"record\":\"meta\",\"app\":\""
        << xmlEscape(trace.meta.appName) << "\",\"session\":"
        << trace.meta.sessionIndex << ",\"seed\":" << trace.meta.seed
        << ",\"start\":" << trace.meta.startTime << ",\"end\":"
        << trace.meta.endTime << ",\"filtered\":"
        << trace.meta.filteredShortEpisodes << "}\n";
    for (const auto &thread : trace.threads) {
        out << "{\"record\":\"thread\",\"id\":" << thread.id
            << ",\"name\":\"" << xmlEscape(thread.name)
            << "\",\"gui\":" << (thread.isGui ? "true" : "false")
            << "}\n";
    }
    for (const auto &event : trace.events) {
        out << "{\"record\":\"event\",\"type\":\""
            << eventTypeName(event.type) << "\",\"t\":" << event.time;
        if (event.type == EventType::IntervalBegin ||
            event.type == EventType::IntervalEnd) {
            out << ",\"kind\":\"" << intervalKindName(event.kind) << '"';
        }
        if (event.type == EventType::IntervalBegin) {
            out << ",\"class\":\""
                << xmlEscape(trace.strings.lookup(event.classSym))
                << "\",\"method\":\""
                << xmlEscape(trace.strings.lookup(event.methodSym))
                << '"';
        }
        if (event.type == EventType::GcBegin) {
            out << ",\"gc\":\""
                << (event.gcKind == TraceGcKind::Major ? "major"
                                                       : "minor")
                << '"';
        }
        if (event.type != EventType::GcBegin &&
            event.type != EventType::GcEnd) {
            out << ",\"thread\":" << event.thread;
        }
        out << "}\n";
    }
    for (const auto &sample : trace.samples) {
        out << "{\"record\":\"sample\",\"t\":" << sample.time
            << ",\"threads\":[";
        for (std::size_t i = 0; i < sample.threads.size(); ++i) {
            const auto &entry = sample.threads[i];
            if (i > 0)
                out << ',';
            out << "{\"id\":" << entry.thread << ",\"state\":\""
                << traceThreadStateName(entry.state)
                << "\",\"depth\":" << entry.frames.size() << '}';
        }
        out << "]}\n";
    }
    return out.str();
}

} // namespace lag::trace
