#include "tailer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace lag::trace
{

namespace
{

/**
 * Head bytes remembered to detect in-place rewrites. 64 bytes spans
 * the file header plus the section counts, so two different traces
 * of the same length are told apart by their counts alone.
 */
constexpr std::size_t kFingerprintBytes = 64;

/**
 * Cap for speculative reserves. Declared counts come from a file
 * that may be mid-write (or hostile), so pre-sizing trusts them
 * only up to this many records; std::vector growth covers honest
 * larger traces at amortized cost.
 */
constexpr std::uint64_t kReserveCap = 64 * 1024;

std::uint64_t
cappedReserve(std::uint64_t declared)
{
    return std::min(declared, kReserveCap);
}

} // namespace

const char *
tailStatusName(TailStatus status)
{
    switch (status) {
    case TailStatus::Waiting:
        return "waiting";
    case TailStatus::Advanced:
        return "advanced";
    case TailStatus::Complete:
        return "complete";
    case TailStatus::Restarted:
        return "restarted";
    }
    return "unknown";
}

TraceTailer::TraceTailer(std::string path) : path_(std::move(path)) {}

void
TraceTailer::reset()
{
    stage_ = Stage::FileHeader;
    consumed_ = 0;
    totalRead_ = 0;
    buffer_.clear();
    fingerprint_.clear();
    hasher_ = Fnv1aHasher();
    declaredChecksum_ = 0;
    counts_ = wire::SectionHeader();
    meta_ = TraceMeta();
    threads_.clear();
    stringList_.clear();
    stringTable_ = StringTable();
    events_.clear();
    samples_.clear();
    threadsDecoded_ = 0;
    stringsDecoded_ = 0;
    eventsDecoded_ = 0;
    samplesDecoded_ = 0;
    sampleThreadTotal_ = 0;
    frameTotal_ = 0;
    openIntervals_ = 0;
    closedEvents_ = 0;
    closedEndTime_ = 0;
    lastSampleTime_ = 0;
}

TailStatus
TraceTailer::poll()
{
    std::error_code ec;
    const std::uint64_t size =
        std::filesystem::file_size(path_, ec);
    if (ec) {
        // Missing file: either the writer has not created it yet or
        // it is mid-rename. Both resolve by waiting; the fingerprint
        // check below catches a replacement once it appears.
        return complete() ? TailStatus::Complete
                          : TailStatus::Waiting;
    }
    knownSize_ = size;

    bool restarted = false;
    if (size < totalRead_) {
        // The file lost bytes we already read: truncated or
        // replaced by a shorter file.
        reset();
        ++restarts_;
        restarted = true;
    }

    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return complete() ? TailStatus::Complete
                          : TailStatus::Waiting;

    // Rewrite detection: the head bytes we consumed must still be
    // the head bytes on disk. (A same-length rewrite with an
    // identical head is indistinguishable and goes undetected;
    // the checksum still rejects a spliced tail at completion.)
    if (!restarted && !fingerprint_.empty()) {
        std::string head(fingerprint_.size(), '\0');
        in.read(head.data(),
                static_cast<std::streamsize>(head.size()));
        head.resize(static_cast<std::size_t>(in.gcount()));
        if (head != fingerprint_) {
            reset();
            ++restarts_;
            restarted = true;
        }
        in.clear();
    }

    if (complete()) {
        if (!restarted && size > totalRead_) {
            throw TraceError("trailing garbage: trace file grew by " +
                             std::to_string(size - totalRead_) +
                             " bytes after completion");
        }
        if (!restarted)
            return TailStatus::Complete;
    }

    bool readAny = false;
    if (size > totalRead_) {
        const std::uint64_t want = size - totalRead_;
        std::string chunk(static_cast<std::size_t>(want), '\0');
        in.seekg(static_cast<std::streamoff>(totalRead_));
        in.read(chunk.data(),
                static_cast<std::streamsize>(chunk.size()));
        chunk.resize(static_cast<std::size_t>(in.gcount()));
        if (!chunk.empty()) {
            if (fingerprint_.size() < kFingerprintBytes) {
                fingerprint_.append(
                    chunk, 0,
                    kFingerprintBytes - fingerprint_.size());
            }
            totalRead_ += chunk.size();
            buffer_ += chunk;
            readAny = true;
        }
    }

    const bool advanced = readAny ? drive() : false;
    if (restarted)
        return TailStatus::Restarted;
    if (complete())
        return TailStatus::Complete;
    return advanced ? TailStatus::Advanced : TailStatus::Waiting;
}

bool
TraceTailer::drive()
{
    bool any = false;
    while (stage_ != Stage::Complete) {
        ByteReader r{std::string_view(buffer_)};
        const Stage before = stage_;
        try {
            if (!step(r))
                break;
        } catch (const TraceError &e) {
            if (e.kind() == TraceErrorKind::Truncated)
                break; // partial record at the tail; retry later
            throw;
        }
        const std::size_t used = r.position();
        if (before != Stage::FileHeader && used > 0)
            hasher_.addBytes(buffer_.data(), used);
        buffer_.erase(0, used);
        consumed_ += used;
        any = true;
    }
    return any;
}

bool
TraceTailer::step(ByteReader &r)
{
    switch (stage_) {
    case Stage::FileHeader: {
        for (char expected : wire::kMagic) {
            if (r.u8() != static_cast<std::uint8_t>(expected))
                throw TraceError(
                    "bad magic: not a LagAlyzer trace file");
        }
        const std::uint32_t version = r.u32();
        if (version != kFormatVersion) {
            throw TraceError("unsupported trace format version " +
                             std::to_string(version) +
                             " (expected " +
                             std::to_string(kFormatVersion) + ")");
        }
        declaredChecksum_ = r.u64();
        stage_ = Stage::SectionHeader;
        return true;
    }
    case Stage::SectionHeader:
        counts_ = wire::readSectionHeader(r);
        stage_ = Stage::Meta;
        return true;
    case Stage::Meta:
        meta_ = wire::readMeta(r);
        threads_.reserve(
            static_cast<std::size_t>(cappedReserve(counts_.threadCount)));
        stage_ = Stage::Threads;
        return true;
    case Stage::Threads: {
        if (threadsDecoded_ == counts_.threadCount) {
            stringList_.reserve(static_cast<std::size_t>(
                cappedReserve(counts_.stringCount)));
            stage_ = Stage::Strings;
            return step(r);
        }
        TraceThread thread;
        thread.id = r.u32();
        thread.name = r.str();
        thread.isGui = r.u8() != 0;
        threads_.push_back(std::move(thread));
        ++threadsDecoded_;
        return true;
    }
    case Stage::Strings:
        if (stringsDecoded_ == counts_.stringCount) {
            stringTable_ =
                StringTable::fromList(std::move(stringList_));
            stringList_.clear();
            events_.reserve(static_cast<std::size_t>(
                cappedReserve(counts_.eventCount)));
            stage_ = Stage::Events;
            return step(r);
        }
        stringList_.push_back(r.str());
        ++stringsDecoded_;
        return true;
    case Stage::Events: {
        if (eventsDecoded_ == counts_.eventCount) {
            samples_.reserve(static_cast<std::size_t>(
                cappedReserve(counts_.sampleCount)));
            stage_ = Stage::Samples;
            return step(r);
        }
        try {
            events_.push_back(wire::readEvent(r));
        } catch (const TraceError &e) {
            if (e.kind() == TraceErrorKind::Truncated)
                throw;
            throw TraceError(
                wire::recordContext("event", eventsDecoded_,
                                    static_cast<std::size_t>(
                                        consumed_ -
                                        wire::kFileHeaderBytes)) +
                    e.what(),
                e.kind());
        }
        ++eventsDecoded_;
        noteEvent(events_.back());
        return true;
    }
    case Stage::Samples: {
        if (samplesDecoded_ == counts_.sampleCount) {
            finalize();
            stage_ = Stage::Complete;
            return true;
        }
        TraceSample sample;
        try {
            sample = wire::readSample(
                r, {counts_.sampleThreadTotal, counts_.frameTotal,
                    /*completeBuffer=*/false});
        } catch (const TraceError &e) {
            if (e.kind() == TraceErrorKind::Truncated)
                throw;
            throw TraceError(
                wire::recordContext("sample", samplesDecoded_,
                                    static_cast<std::size_t>(
                                        consumed_ -
                                        wire::kFileHeaderBytes)) +
                    e.what(),
                e.kind());
        }
        sampleThreadTotal_ += sample.threads.size();
        for (const auto &entry : sample.threads)
            frameTotal_ += entry.frames.size();
        lastSampleTime_ = sample.time;
        samples_.push_back(std::move(sample));
        ++samplesDecoded_;
        return true;
    }
    case Stage::Complete:
        return false;
    }
    return false;
}

void
TraceTailer::noteEvent(const TraceEvent &event)
{
    switch (event.type) {
    case EventType::DispatchBegin:
    case EventType::IntervalBegin:
    case EventType::GcBegin:
        ++openIntervals_;
        break;
    case EventType::DispatchEnd:
    case EventType::IntervalEnd:
    case EventType::GcEnd:
        --openIntervals_;
        break;
    }
    if (openIntervals_ == 0) {
        closedEvents_ = eventsDecoded_;
        closedEndTime_ = event.time;
    }
}

void
TraceTailer::finalize()
{
    if (sampleThreadTotal_ != counts_.sampleThreadTotal ||
        frameTotal_ != counts_.frameTotal) {
        throw TraceError(
            "sample totals disagree with the section header");
    }
    if (!buffer_.empty()) {
        // All declared records are decoded but bytes follow; a
        // valid writer never produces this, so it cannot heal.
        throw TraceError("trailing garbage: " +
                         std::to_string(buffer_.size()) +
                         " bytes after trace payload");
    }
    if (hasher_.digest() != declaredChecksum_)
        throw TraceError("trace payload checksum mismatch");
    makeTrace(/*wholePrefix=*/true).validate();
}

Trace
TraceTailer::makeTrace(bool wholePrefix) const
{
    Trace t;
    t.meta = meta_;
    t.threads = threads_;
    t.strings = stringTable_;
    if (wholePrefix) {
        t.events = events_;
    } else {
        t.events.assign(events_.begin(),
                        events_.begin() +
                            static_cast<std::ptrdiff_t>(
                                closedEvents_));
    }
    t.samples = samples_;
    return t;
}

Trace
TraceTailer::snapshot() const
{
    if (!analyzable()) {
        throw TraceError(
            "tailer snapshot requested before threads and strings "
            "are decoded",
            TraceErrorKind::Truncated);
    }
    // Once the event section is complete (Samples/Complete stage)
    // the whole stream is included; mid-events only the closed
    // prefix is safe for Session::fromTrace.
    Trace t = makeTrace(stage_ >= Stage::Samples);
    if (!complete()) {
        // The declared endTime is the writer's final value; while
        // records are still arriving, report only the time span the
        // decoded prefix actually covers.
        t.meta.endTime = std::max(
            {t.meta.startTime, closedEndTime_, lastSampleTime_});
    }
    return t;
}

std::uint64_t
TraceTailer::recordsDecoded() const
{
    return threadsDecoded_ + stringsDecoded_ + eventsDecoded_ +
           samplesDecoded_;
}

} // namespace lag::trace
