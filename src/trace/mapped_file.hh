/**
 * @file
 * Read-only memory-mapped file with an owned-buffer fallback.
 *
 * The zero-copy decode path maps a trace file and hands the mapping
 * to deserializeTrace as a borrowed string_view: the checksum pass
 * and the record decode read straight out of the page cache, and the
 * only bytes ever copied are the ones that must outlive the mapping
 * (string-table text and decoded record structs).  On platforms
 * without mmap — or for empty files, which cannot be mapped — the
 * class degrades to reading the file into an owned buffer, so
 * callers never need to branch on platform.
 */

#ifndef LAG_TRACE_MAPPED_FILE_HH
#define LAG_TRACE_MAPPED_FILE_HH

#include <string>
#include <string_view>

namespace lag::trace
{

/**
 * Immutable view of a whole file, mmap-backed where possible.
 * The view() is valid exactly as long as the MappedFile lives;
 * decoded structures must copy anything they keep.
 */
class MappedFile
{
  public:
    /** Map (or read) @p path. Throws TraceError on any failure. */
    explicit MappedFile(const std::string &path);
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** The file's bytes; borrowed, valid while *this lives. */
    std::string_view
    view() const
    {
        if (map_ != nullptr)
            return {static_cast<const char *>(map_), mapSize_};
        return owned_;
    }

    /** True when the bytes come from an mmap, not an owned copy. */
    bool
    usedMmap() const
    {
        return map_ != nullptr;
    }

    /** True when this platform has an mmap implementation at all. */
    static bool supported();

  private:
    void release() noexcept;

    void *map_ = nullptr;
    std::size_t mapSize_ = 0;
    std::string owned_;
};

} // namespace lag::trace

#endif // LAG_TRACE_MAPPED_FILE_HH
