/**
 * @file
 * Little-endian byte encoding for the binary trace format.
 *
 * ByteWriter appends into a growable buffer; ByteReader consumes a
 * buffer with strict bounds checking, raising TraceError on any
 * overrun so truncated or corrupted files fail loudly rather than
 * yielding garbage analyses.
 */

#ifndef LAG_TRACE_BYTES_HH
#define LAG_TRACE_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "trace.hh"

namespace lag::trace
{

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buffer_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        appendRaw(&v, sizeof(v));
    }

    void
    u64(std::uint64_t v)
    {
        appendRaw(&v, sizeof(v));
    }

    void
    i64(std::int64_t v)
    {
        appendRaw(&v, sizeof(v));
    }

    /** Length-prefixed UTF-8 string. */
    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buffer_.append(s.data(), s.size());
    }

    const std::string &buffer() const { return buffer_; }
    std::string take() { return std::move(buffer_); }

  private:
    void
    appendRaw(const void *data, std::size_t size)
    {
        // Little-endian hosts only (asserted in writer.cc); a
        // byte-swapping fallback is not needed on any target this
        // project supports.
        buffer_.append(static_cast<const char *>(data), size);
    }

    std::string buffer_;
};

/** Bounds-checked little-endian decoder. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(data_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v;
        readRaw(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v;
        readRaw(&v, sizeof(v));
        return v;
    }

    std::int64_t
    i64()
    {
        std::int64_t v;
        readRaw(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s(data_.substr(pos_, len));
        pos_ += len;
        return s;
    }

    /**
     * Borrow @p n raw bytes and advance past them.  The pointer
     * aliases the underlying buffer (mmap or owned); callers must
     * finish with it before the buffer goes away.
     */
    const char *
    bytes(std::size_t n)
    {
        need(n);
        const char *ptr = data_.data() + pos_;
        pos_ += n;
        return ptr;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data_.size() - pos_; }

    /** Current read offset. */
    std::size_t position() const { return pos_; }

  private:
    void
    need(std::size_t n)
    {
        if (remaining() < n) {
            // Truncated, not Corrupt: from the reader's viewpoint
            // the bytes simply end early, which is exactly what a
            // half-flushed record in a still-growing file looks
            // like. Callers that know the file is final treat both
            // kinds as fatal; the tailer retries Truncated.
            throw TraceError(
                "trace file truncated: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(remaining()),
                TraceErrorKind::Truncated);
        }
    }

    void
    readRaw(void *out, std::size_t size)
    {
        need(size);
        std::memcpy(out, data_.data() + pos_, size);
        pos_ += size;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

} // namespace lag::trace

#endif // LAG_TRACE_BYTES_HH
