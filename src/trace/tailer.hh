/**
 * @file
 * Incremental reader for a trace file that is still being written.
 *
 * TraceTailer follows one trace file on disk, decoding records as
 * their bytes land. Each poll() re-stats the file, reads whatever
 * has been appended since the last poll, and advances a sectioned
 * decode state machine (header → counts → meta → threads → strings
 * → events → samples) one whole record at a time. A half-flushed
 * record at the tail is left in the carry buffer and retried on the
 * next poll — the Truncated/Corrupt split on TraceError (trace.hh)
 * is what tells retryable incompleteness apart from damage.
 *
 * Snapshot semantics: snapshot() returns a Trace that core's
 * Session::fromTrace accepts at any point mid-stream. Because the
 * session builder rejects unterminated intervals, the snapshot
 * trims the event stream to its longest *closed prefix* — the
 * longest run after which every begin (dispatch, interval, GC) has
 * its matching end — and clamps meta.endTime to the last closed
 * boundary while the trace is incomplete. Once the final byte
 * lands, the snapshot is byte-for-byte the same Trace the batch
 * reader produces: the sections are complete, the event stream is
 * balanced, and the declared metadata is used untouched. That is
 * the ingest pipeline's batch-equivalence contract.
 *
 * Rewrite/truncation detection: the tailer remembers a fingerprint
 * of the first bytes it consumed. If the file shrinks below the
 * consumed cursor, or the fingerprint no longer matches, the file
 * was truncated or atomically replaced; the tailer resets to byte
 * zero and reports Restarted so callers drop derived state.
 *
 * The payload checksum is folded incrementally over consumed bytes,
 * so completion verifies the same FNV-1a digest as the batch reader
 * without ever holding the whole file in memory.
 */

#ifndef LAG_TRACE_TAILER_HH
#define LAG_TRACE_TAILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace.hh"
#include "util/hash.hh"
#include "wire.hh"

namespace lag::trace
{

/** What one TraceTailer::poll() observed. */
enum class TailStatus : std::uint8_t
{
    /** No new complete record: the file is missing, has not grown,
     * or only a partial record has been flushed so far. */
    Waiting = 0,

    /** At least one new record was decoded this poll. */
    Advanced = 1,

    /** The whole trace is decoded and checksum-verified; snapshots
     * are now byte-identical to the batch reader's Trace. */
    Complete = 2,

    /** The file shrank or its head changed: it was truncated or
     * rewritten. The tailer reset and re-read from byte zero (the
     * poll also consumed whatever the new file already holds).
     * Callers must discard state derived from earlier snapshots. */
    Restarted = 3,
};

/** Human-readable name of a TailStatus. */
const char *tailStatusName(TailStatus status);

/** Follows one growing trace file; see the file comment. */
class TraceTailer
{
  public:
    explicit TraceTailer(std::string path);

    /**
     * Read newly appended bytes and decode as many whole records as
     * they complete. Throws TraceError (kind Corrupt) when the file
     * can never become valid: bad magic, unknown enum values,
     * implausible counts, checksum mismatch, trailing garbage.
     */
    TailStatus poll();

    /** Path this tailer follows. */
    const std::string &path() const { return path_; }

    /** True once the entire trace has been decoded and verified. */
    bool complete() const { return stage_ == Stage::Complete; }

    /**
     * True once threads and the string table are fully decoded —
     * from then on snapshot() yields an analyzable Trace (possibly
     * with an empty closed event prefix).
     */
    bool analyzable() const { return stage_ >= Stage::Events; }

    /**
     * Assemble the current closed-prefix view (see file comment).
     * Requires analyzable(); throws TraceError otherwise.
     */
    Trace snapshot() const;

    /** True once the meta record is decoded (meta() is valid). */
    bool hasMeta() const { return stage_ >= Stage::Threads; }

    /** Session metadata as written at the head of the file. Valid
     * once hasMeta(); cheap (no snapshot assembly). */
    const TraceMeta &meta() const { return meta_; }

    /** Total file bytes consumed by the decoder so far. */
    std::uint64_t cursor() const { return consumed_; }

    /** File size observed by the last poll(). */
    std::uint64_t knownSize() const { return knownSize_; }

    /** Bytes the file holds that the decoder has not consumed. */
    std::uint64_t
    backlogBytes() const
    {
        return knownSize_ > consumed_ ? knownSize_ - consumed_ : 0;
    }

    /** Records decoded: threads + strings + events + samples. */
    std::uint64_t recordsDecoded() const;

    /** Events currently in the closed (analyzable) prefix. */
    std::uint64_t closedEvents() const { return closedEvents_; }

    /** Times the tailer detected truncation/rewrite and reset. */
    std::uint64_t restarts() const { return restarts_; }

  private:
    enum class Stage : std::uint8_t
    {
        FileHeader = 0,
        SectionHeader = 1,
        Meta = 2,
        Threads = 3,
        Strings = 4,
        Events = 5,
        Samples = 6,
        Complete = 7,
    };

    void reset();
    bool readAppended();
    bool drive();
    bool step(ByteReader &r);
    void noteEvent(const TraceEvent &event);
    void finalize();
    Trace makeTrace(bool wholePrefix) const;

    std::string path_;

    Stage stage_ = Stage::FileHeader;
    std::uint64_t consumed_ = 0;  ///< file bytes decoded
    std::uint64_t totalRead_ = 0; ///< file bytes read (>= consumed_)
    std::uint64_t knownSize_ = 0;
    std::string buffer_; ///< read-but-unconsumed carry (partial tail)
    std::string fingerprint_;

    Fnv1aHasher hasher_; ///< FNV-1a over consumed payload bytes
    std::uint64_t declaredChecksum_ = 0;
    wire::SectionHeader counts_;

    TraceMeta meta_;
    std::vector<TraceThread> threads_;
    std::vector<std::string> stringList_;
    StringTable stringTable_; ///< built when the string section ends
    std::vector<TraceEvent> events_;
    std::vector<TraceSample> samples_;

    std::uint64_t threadsDecoded_ = 0;
    std::uint64_t stringsDecoded_ = 0;
    std::uint64_t eventsDecoded_ = 0;
    std::uint64_t samplesDecoded_ = 0;
    std::uint64_t sampleThreadTotal_ = 0;
    std::uint64_t frameTotal_ = 0;

    std::int64_t openIntervals_ = 0; ///< begins minus ends so far
    std::uint64_t closedEvents_ = 0; ///< closed-prefix length
    TimeNs closedEndTime_ = 0;       ///< time at the closed boundary
    TimeNs lastSampleTime_ = 0;

    std::uint64_t restarts_ = 0;
};

} // namespace lag::trace

#endif // LAG_TRACE_TAILER_HH
