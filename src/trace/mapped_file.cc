#include "mapped_file.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "trace.hh"

#if defined(__unix__) || defined(__APPLE__)
#define LAG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define LAG_HAVE_MMAP 0
#endif

namespace lag::trace
{

#if !LAG_HAVE_MMAP
namespace
{

/** Stream fallback for platforms without mmap. */
std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw TraceError("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in && !in.eof())
        throw TraceError("read from '" + path + "' failed");
    return std::move(buffer).str();
}

} // namespace
#endif

MappedFile::MappedFile(const std::string &path)
{
#if LAG_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw TraceError("cannot open '" + path +
                         "' for reading: " + std::strerror(errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        throw TraceError("cannot stat '" + path +
                         "': " + std::strerror(err));
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // mmap of length 0 is invalid; an empty view is correct.
        ::close(fd);
        return;
    }
    void *map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int err = errno;
    ::close(fd);
    if (map == MAP_FAILED) {
        throw TraceError("cannot mmap '" + path +
                         "': " + std::strerror(err));
    }
    map_ = map;
    mapSize_ = size;
#else
    owned_ = readWholeFile(path);
#endif
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile &&other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      mapSize_(std::exchange(other.mapSize_, 0)),
      owned_(std::move(other.owned_))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        release();
        map_ = std::exchange(other.map_, nullptr);
        mapSize_ = std::exchange(other.mapSize_, 0);
        owned_ = std::move(other.owned_);
    }
    return *this;
}

void
MappedFile::release() noexcept
{
#if LAG_HAVE_MMAP
    if (map_ != nullptr)
        ::munmap(map_, mapSize_);
#endif
    map_ = nullptr;
    mapSize_ = 0;
}

bool
MappedFile::supported()
{
    return LAG_HAVE_MMAP != 0;
}

} // namespace lag::trace
