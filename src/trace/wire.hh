/**
 * @file
 * Record-level codec shared by the batch reader (io.cc) and the
 * incremental tail reader (tailer.cc).
 *
 * Everything here works on one record at a time over a ByteReader,
 * so the same functions decode a complete in-memory payload and a
 * partial, still-growing one. Error discipline: running out of
 * buffered bytes raises TraceError with kind Truncated (the
 * ByteReader does this); every structural violation — unknown enum
 * value, a count exceeding the section header's declared totals —
 * raises kind Corrupt. The tailer retries Truncated and aborts
 * Corrupt; the batch reader treats both as fatal.
 *
 * Internal header: io.cc and tailer.cc only.
 */

#ifndef LAG_TRACE_WIRE_HH
#define LAG_TRACE_WIRE_HH

#include <cstring>
#include <string>

#include "bytes.hh"
#include "io.hh"
#include "trace.hh"

namespace lag::trace::wire
{

inline constexpr char kMagic[8] = {'L', 'A', 'G', 'T',
                                   'R', 'C', '\0', '\0'};

/** Fixed wire size of the file header: magic + version + checksum. */
inline constexpr std::size_t kFileHeaderBytes = 8 + 4 + 8;

/** Fixed wire size of the payload's sectioned count header. */
inline constexpr std::size_t kSectionHeaderBytes = 4 + 4 + 8 + 8 + 8 + 8;

/**
 * Sectioned count header at the head of the payload: record counts
 * up front so the decoder pre-sizes every vector exactly, plus
 * aggregate sample totals so implausible (corrupt) counts are
 * rejected before any large allocation.
 */
struct SectionHeader
{
    std::uint32_t threadCount = 0;
    std::uint32_t stringCount = 0;
    std::uint64_t eventCount = 0;
    std::uint64_t sampleCount = 0;
    std::uint64_t sampleThreadTotal = 0;
    std::uint64_t frameTotal = 0;
};

inline void
writeSectionHeader(ByteWriter &w, const SectionHeader &header)
{
    w.u32(header.threadCount);
    w.u32(header.stringCount);
    w.u64(header.eventCount);
    w.u64(header.sampleCount);
    w.u64(header.sampleThreadTotal);
    w.u64(header.frameTotal);
}

inline SectionHeader
readSectionHeader(ByteReader &r)
{
    SectionHeader header;
    header.threadCount = r.u32();
    header.stringCount = r.u32();
    header.eventCount = r.u64();
    header.sampleCount = r.u64();
    header.sampleThreadTotal = r.u64();
    header.frameTotal = r.u64();
    return header;
}

/**
 * Reject a section count that could not possibly fit in the bytes
 * that remain, before reserving storage for it.  @p minBytes is the
 * smallest legal wire size of one record. Only meaningful over a
 * complete payload — with a partial buffer the missing bytes may
 * simply not have been written yet.
 */
inline void
checkSectionCount(const char *section, std::uint64_t count,
                  std::size_t minBytes, std::size_t remaining)
{
    if (count > 0 && count > remaining / minBytes) {
        throw TraceError(
            "implausible " + std::string(section) + " count " +
            std::to_string(count) + ": only " +
            std::to_string(remaining) + " payload bytes remain");
    }
}

/** Context prefix for a malformed record: which one, and where. */
inline std::string
recordContext(const char *kind, std::uint64_t index,
              std::size_t payloadOffset)
{
    return std::string(kind) + " " + std::to_string(index) +
           " at payload offset " + std::to_string(payloadOffset) +
           ": ";
}

inline void
writeMeta(ByteWriter &w, const TraceMeta &meta)
{
    w.str(meta.appName);
    w.u32(meta.sessionIndex);
    w.u64(meta.seed);
    w.i64(meta.startTime);
    w.i64(meta.endTime);
    w.i64(meta.samplePeriod);
    w.i64(meta.filterThreshold);
    w.u64(meta.filteredShortEpisodes);
    w.i64(meta.totalInEpisodeTime);
}

inline TraceMeta
readMeta(ByteReader &r)
{
    TraceMeta meta;
    meta.appName = r.str();
    meta.sessionIndex = r.u32();
    meta.seed = r.u64();
    meta.startTime = r.i64();
    meta.endTime = r.i64();
    meta.samplePeriod = r.i64();
    meta.filterThreshold = r.i64();
    meta.filteredShortEpisodes = r.u64();
    meta.totalInEpisodeTime = r.i64();
    return meta;
}

inline void
writeEvent(ByteWriter &w, const TraceEvent &event)
{
    w.u8(static_cast<std::uint8_t>(event.type));
    w.u32(event.thread);
    w.i64(event.time);
    w.u8(static_cast<std::uint8_t>(event.kind));
    w.u32(event.classSym);
    w.u32(event.methodSym);
    w.u8(static_cast<std::uint8_t>(event.gcKind));
}

/**
 * Decode one fixed-size event record straight from the buffer: a
 * single bounds check covers all seven fields, so the hot decode
 * loop does one range test per event instead of seven.
 */
inline TraceEvent
readEvent(ByteReader &r)
{
    const char *p = r.bytes(kEventWireBytes);
    TraceEvent event;
    const auto type = static_cast<std::uint8_t>(p[0]);
    if (type > static_cast<std::uint8_t>(EventType::GcEnd))
        throw TraceError("unknown event type " + std::to_string(type));
    event.type = static_cast<EventType>(type);
    std::memcpy(&event.thread, p + 1, sizeof(event.thread));
    std::memcpy(&event.time, p + 5, sizeof(event.time));
    const auto kind = static_cast<std::uint8_t>(p[13]);
    if (kind > static_cast<std::uint8_t>(IntervalKind::Async))
        throw TraceError("unknown interval kind " + std::to_string(kind));
    event.kind = static_cast<IntervalKind>(kind);
    std::memcpy(&event.classSym, p + 14, sizeof(event.classSym));
    std::memcpy(&event.methodSym, p + 18, sizeof(event.methodSym));
    const auto gc = static_cast<std::uint8_t>(p[22]);
    if (gc > static_cast<std::uint8_t>(TraceGcKind::Major))
        throw TraceError("unknown GC kind " + std::to_string(gc));
    event.gcKind = static_cast<TraceGcKind>(gc);
    return event;
}

inline void
writeSample(ByteWriter &w, const TraceSample &sample)
{
    w.i64(sample.time);
    w.u32(static_cast<std::uint32_t>(sample.threads.size()));
    for (const auto &entry : sample.threads) {
        w.u32(entry.thread);
        w.u8(static_cast<std::uint8_t>(entry.state));
        w.u32(static_cast<std::uint32_t>(entry.frames.size()));
        for (const auto &frame : entry.frames) {
            w.u32(frame.classSym);
            w.u32(frame.methodSym);
        }
    }
}

/** How readSample bounds a sample's internal counts. */
struct SampleBounds
{
    /** Declared section-header totals: any single sample exceeding
     * them is definitely corrupt, complete buffer or not. */
    std::uint64_t maxThreads = 0;
    std::uint64_t maxFrames = 0;

    /** True when the reader spans the whole payload, enabling the
     * remaining-bytes plausibility checks. False for a tail read,
     * where missing bytes mean "not written yet", not "corrupt". */
    bool completeBuffer = true;
};

inline TraceSample
readSample(ByteReader &r, const SampleBounds &bounds)
{
    TraceSample sample;
    sample.time = r.i64();
    const std::uint32_t threads = r.u32();
    if (threads > bounds.maxThreads) {
        throw TraceError("implausible sample thread count " +
                         std::to_string(threads) +
                         " exceeds the declared total " +
                         std::to_string(bounds.maxThreads));
    }
    // Each entry needs at least thread id + state + frame count.
    if (bounds.completeBuffer)
        checkSectionCount("sample thread", threads, 9, r.remaining());
    // Capping the reserve by the buffered bytes keeps a partial
    // read from pre-allocating on a count whose bytes never arrive;
    // over a complete buffer the cap equals `threads` exactly
    // (checkSectionCount above guarantees threads <= remaining/9).
    sample.threads.reserve(std::min<std::uint64_t>(
        threads, r.remaining() / 9 + 1));
    for (std::uint32_t i = 0; i < threads; ++i) {
        SampleThread entry;
        entry.thread = r.u32();
        const std::uint8_t state = r.u8();
        if (state > static_cast<std::uint8_t>(TraceThreadState::Sleeping))
            throw TraceError("unknown thread state " +
                             std::to_string(state));
        entry.state = static_cast<TraceThreadState>(state);
        const std::uint32_t frames = r.u32();
        if (frames > bounds.maxFrames) {
            throw TraceError("implausible sample frame count " +
                             std::to_string(frames) +
                             " exceeds the declared total " +
                             std::to_string(bounds.maxFrames));
        }
        if (bounds.completeBuffer)
            checkSectionCount("sample frame", frames, 8,
                              r.remaining());
        if (frames > 0) {
            // Frames are a flat run of {u32 class, u32 method}
            // pairs: one bounds check, one copy. Borrow the bytes
            // BEFORE sizing the vector, so a partial tail read
            // raises Truncated instead of allocating for a record
            // whose bytes have not landed yet.
            static_assert(sizeof(SampleFrame) ==
                              2 * sizeof(std::uint32_t),
                          "SampleFrame must match its wire layout");
            const char *raw =
                r.bytes(static_cast<std::size_t>(frames) * 8);
            entry.frames.resize(frames);
            std::memcpy(entry.frames.data(), raw,
                        static_cast<std::size_t>(frames) * 8);
        }
        sample.threads.push_back(std::move(entry));
    }
    return sample;
}

} // namespace lag::trace::wire

#endif // LAG_TRACE_WIRE_HH
