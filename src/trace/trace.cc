#include "trace.hh"

#include <unordered_set>

namespace lag::trace
{

StringTable::StringTable()
{
    strings_.emplace_back();
    index_.emplace("", 0);
}

SymbolId
StringTable::intern(std::string_view s)
{
    const auto it = index_.find(std::string(s));
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<SymbolId>(strings_.size());
    strings_.emplace_back(s);
    index_.emplace(strings_.back(), id);
    return id;
}

const std::string &
StringTable::lookup(SymbolId id) const
{
    if (id >= strings_.size()) {
        throw TraceError("symbol id " + std::to_string(id) +
                         " out of range (table size " +
                         std::to_string(strings_.size()) + ")");
    }
    return strings_[id];
}

StringTable
StringTable::fromList(std::vector<std::string> strings)
{
    if (strings.empty() || !strings.front().empty())
        throw TraceError("string table must start with the empty string");
    StringTable table;
    table.strings_ = std::move(strings);
    table.index_.clear();
    for (SymbolId id = 0; id < table.strings_.size(); ++id)
        table.index_.emplace(table.strings_[id], id);
    return table;
}

const char *
intervalKindName(IntervalKind kind)
{
    switch (kind) {
      case IntervalKind::Listener: return "listener";
      case IntervalKind::Paint:    return "paint";
      case IntervalKind::Native:   return "native";
      case IntervalKind::Async:    return "async";
    }
    return "?";
}

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::DispatchBegin: return "dispatch-begin";
      case EventType::DispatchEnd:   return "dispatch-end";
      case EventType::IntervalBegin: return "interval-begin";
      case EventType::IntervalEnd:   return "interval-end";
      case EventType::GcBegin:       return "gc-begin";
      case EventType::GcEnd:         return "gc-end";
    }
    return "?";
}

const char *
traceThreadStateName(TraceThreadState state)
{
    switch (state) {
      case TraceThreadState::Runnable: return "runnable";
      case TraceThreadState::Blocked:  return "blocked";
      case TraceThreadState::Waiting:  return "waiting";
      case TraceThreadState::Sleeping: return "sleeping";
    }
    return "?";
}

void
Trace::validate() const
{
    if (meta.endTime < meta.startTime)
        throw TraceError("session end precedes start");

    std::unordered_set<ThreadId> known;
    for (const auto &thread : threads) {
        if (!known.insert(thread.id).second) {
            throw TraceError("duplicate thread id " +
                             std::to_string(thread.id));
        }
    }

    const auto check_symbol = [this](SymbolId id) {
        if (id >= strings.size())
            throw TraceError("symbol id " + std::to_string(id) +
                             " out of range");
    };

    TimeNs last = meta.startTime;
    for (const auto &event : events) {
        if (event.time < last)
            throw TraceError("event stream not time-ordered");
        last = event.time;
        const bool is_gc = event.type == EventType::GcBegin ||
                           event.type == EventType::GcEnd;
        if (!is_gc && known.find(event.thread) == known.end()) {
            throw TraceError("event references unknown thread " +
                             std::to_string(event.thread));
        }
        if (event.type == EventType::IntervalBegin) {
            check_symbol(event.classSym);
            check_symbol(event.methodSym);
        }
    }

    last = meta.startTime;
    for (const auto &sample : samples) {
        if (sample.time < last)
            throw TraceError("sample stream not time-ordered");
        last = sample.time;
        for (const auto &entry : sample.threads) {
            if (known.find(entry.thread) == known.end()) {
                throw TraceError("sample references unknown thread " +
                                 std::to_string(entry.thread));
            }
            if (static_cast<std::uint8_t>(entry.state) > 3)
                throw TraceError("sample state out of range");
            for (const auto &frame : entry.frames) {
                check_symbol(frame.classSym);
                check_symbol(frame.methodSym);
            }
        }
    }
}

} // namespace lag::trace
