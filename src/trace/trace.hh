/**
 * @file
 * In-memory representation of a LiLa-style latency trace.
 *
 * A trace records one interactive session with one application: the
 * thread roster, a time-ordered stream of boundary events (episode
 * dispatch begin/end, interval begin/end, GC begin/end), a
 * time-ordered stream of call-stack samples, and session metadata
 * including the count of episodes the profiler filtered out for
 * being shorter than its threshold (paper §IV.A, column "< 3ms").
 *
 * All symbols (class and method names) are interned in a per-trace
 * string table; records carry SymbolIds.
 */

#ifndef LAG_TRACE_TRACE_HH
#define LAG_TRACE_TRACE_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace lag::trace
{

/**
 * How a TraceError should be interpreted by a reader that may be
 * looking at a file another process is still appending to.
 *
 * The distinction exists for the tail-reading path (tailer.hh): a
 * half-flushed final record raises exactly the same "need more
 * bytes" shape as genuine truncation damage, and only the producer
 * knows which it is. Truncated therefore means "retry once more
 * bytes exist"; Corrupt means "no amount of further appending can
 * repair this file" (bad magic, unknown enum value, checksum or
 * structural mismatch) and the reader must abort.
 */
enum class TraceErrorKind : std::uint8_t
{
    Corrupt = 0,   ///< definitely malformed; retrying cannot help
    Truncated = 1, ///< ran out of bytes; possibly still being written
};

/** Error raised by trace validation and file parsing. */
class TraceError : public std::runtime_error
{
  public:
    explicit TraceError(const std::string &msg,
                        TraceErrorKind kind = TraceErrorKind::Corrupt)
        : std::runtime_error(msg), kind_(kind)
    {}

    /** Retry-vs-abort classification (see TraceErrorKind). */
    TraceErrorKind kind() const { return kind_; }

  private:
    TraceErrorKind kind_ = TraceErrorKind::Corrupt;
};

/** Interned strings; SymbolId 0 is always the empty string. */
class StringTable
{
  public:
    StringTable();

    /** Intern @p s, returning its stable id. */
    SymbolId intern(std::string_view s);

    /** Resolve an id. Throws TraceError for out-of-range ids. */
    const std::string &lookup(SymbolId id) const;

    /** Number of interned strings (including the empty string). */
    std::size_t size() const { return strings_.size(); }

    /** All strings in id order (serialization support). */
    const std::vector<std::string> &all() const { return strings_; }

    /** Rebuild from a deserialized list. */
    static StringTable fromList(std::vector<std::string> strings);

  private:
    std::vector<std::string> strings_;
    std::unordered_map<std::string, SymbolId> index_;
};

/** Trace-level interval kinds (Table I, minus Dispatch and GC which
 * have dedicated record types). */
enum class IntervalKind : std::uint8_t
{
    Listener = 0,
    Paint = 1,
    Native = 2,
    Async = 3,
};

/** Human-readable name of an interval kind. */
const char *intervalKindName(IntervalKind kind);

/** GC kind as recorded in traces. */
enum class TraceGcKind : std::uint8_t
{
    Minor = 0,
    Major = 1,
};

/** Types of boundary records in the event stream. */
enum class EventType : std::uint8_t
{
    DispatchBegin = 0,
    DispatchEnd = 1,
    IntervalBegin = 2,
    IntervalEnd = 3,
    GcBegin = 4,
    GcEnd = 5,
};

/** Human-readable name of an event type. */
const char *eventTypeName(EventType type);

/** One thread known to the trace. */
struct TraceThread
{
    ThreadId id = 0;
    std::string name;
    bool isGui = false;
};

/** One boundary record. Fields beyond (type, thread, time) are only
 * meaningful for the types that use them. */
struct TraceEvent
{
    EventType type = EventType::DispatchBegin;
    ThreadId thread = 0;
    TimeNs time = 0;
    IntervalKind kind = IntervalKind::Listener; ///< Interval* only
    SymbolId classSym = 0;                      ///< IntervalBegin only
    SymbolId methodSym = 0;                     ///< IntervalBegin only
    TraceGcKind gcKind = TraceGcKind::Minor;    ///< GcBegin only
};

/** Sampled thread state (mirrors jvm::SampleState numerically). */
enum class TraceThreadState : std::uint8_t
{
    Runnable = 0,
    Blocked = 1,
    Waiting = 2,
    Sleeping = 3,
};

/** Human-readable name of a sampled thread state. */
const char *traceThreadStateName(TraceThreadState state);

/** One frame of a sampled stack. */
struct SampleFrame
{
    SymbolId classSym = 0;
    SymbolId methodSym = 0;
};

/** One thread's part of a sample. */
struct SampleThread
{
    ThreadId thread = 0;
    TraceThreadState state = TraceThreadState::Runnable;
    std::vector<SampleFrame> frames; ///< innermost last
};

/** One periodic call-stack sample of all live threads. */
struct TraceSample
{
    TimeNs time = 0;
    std::vector<SampleThread> threads;
};

/** Session metadata. */
struct TraceMeta
{
    std::string appName;
    std::uint32_t sessionIndex = 0;
    std::uint64_t seed = 0;
    TimeNs startTime = 0;
    TimeNs endTime = 0;
    DurationNs samplePeriod = 0;
    DurationNs filterThreshold = 0; ///< the profiler's 3 ms filter
    std::uint64_t filteredShortEpisodes = 0;

    /**
     * Total time spent handling requests, summed over all episodes
     * including the filtered short ones (which the profiler timed
     * before dropping). Feeds Table III's "In-Eps" column.
     */
    DurationNs totalInEpisodeTime = 0;
};

/** A complete session trace. */
struct Trace
{
    TraceMeta meta;
    std::vector<TraceThread> threads;
    std::vector<TraceEvent> events;   ///< time-ordered
    std::vector<TraceSample> samples; ///< time-ordered
    StringTable strings;

    /**
     * Structural sanity checks: monotone event and sample times,
     * symbol ids within range, thread ids known, sample states in
     * range. Throws TraceError on the first violation. (Interval
     * nesting is validated by the core tree builder, which has the
     * per-thread context to do it.)
     */
    void validate() const;
};

} // namespace lag::trace

#endif // LAG_TRACE_TRACE_HH
