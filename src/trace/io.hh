/**
 * @file
 * Binary trace file reader and writer.
 *
 * File layout (all integers little-endian):
 *
 *   magic   "LAGTRC\0\0" (8 bytes)
 *   u32     format version (kFormatVersion)
 *   u64     payload FNV-1a checksum
 *   payload meta, threads, string table, events, samples
 *
 * The checksum covers the payload bytes exactly; readers verify it
 * before decoding, so bit rot and truncation are detected up front.
 */

#ifndef LAG_TRACE_IO_HH
#define LAG_TRACE_IO_HH

#include <string>

#include "trace.hh"

namespace lag::trace
{

/** Current binary format version. */
constexpr std::uint32_t kFormatVersion = 2;

/** Serialize @p trace into a byte buffer. */
std::string serializeTrace(const Trace &trace);

/** Parse a byte buffer produced by serializeTrace. */
Trace deserializeTrace(std::string_view data);

/** Write @p trace to @p path. Throws TraceError on I/O failure. */
void writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Write @p trace to @p path via a temp file and an atomic rename,
 * so a crash or kill mid-write can never leave a truncated trace
 * behind at @p path. Throws TraceError on I/O failure.
 */
void writeTraceFileAtomic(const Trace &trace,
                          const std::string &path);

/** Read a trace from @p path. Throws TraceError on any failure. */
Trace readTraceFile(const std::string &path);

/**
 * Export a human-readable JSON-lines rendering of @p trace (one
 * record per line: meta, threads, events, samples). For debugging
 * and interoperability; the binary format is the system of record.
 */
std::string toJsonl(const Trace &trace);

} // namespace lag::trace

#endif // LAG_TRACE_IO_HH
