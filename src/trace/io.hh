/**
 * @file
 * Binary trace file reader and writer.
 *
 * File layout (all integers little-endian):
 *
 *   magic   "LAGTRC\0\0" (8 bytes)
 *   u32     format version (kFormatVersion)
 *   u64     payload FNV-1a checksum
 *   payload section header, meta, threads, string table, events,
 *           samples
 *
 * The payload opens with a sectioned count header (thread, string,
 * event and sample counts plus aggregate sample totals) so decoders
 * can pre-size every vector exactly instead of growing through
 * push_back, and can reject implausible counts before allocating.
 *
 * The checksum covers the payload bytes exactly; readers verify it
 * before decoding, so bit rot and truncation are detected up front.
 * deserializeTrace borrows its input: handed an mmap-backed view
 * (see mapped_file.hh) it decodes straight out of the mapping with
 * no intermediate buffer copy.
 */

#ifndef LAG_TRACE_IO_HH
#define LAG_TRACE_IO_HH

#include <string>

#include "trace.hh"

namespace lag::trace
{

/**
 * Current binary format version.  Version 3 added the sectioned
 * count header that enables pre-sized (reserve-exact) decode.
 */
constexpr std::uint32_t kFormatVersion = 3;

/** Fixed wire size of one encoded TraceEvent, in bytes. */
constexpr std::size_t kEventWireBytes = 23;

/** How readTraceFile obtains the file's bytes. */
enum class TraceReadMode
{
    Auto,   ///< mmap when the platform supports it, else stream.
    Mapped, ///< force the mmap zero-copy path.
    Stream, ///< force the stream (owned buffer) path.
};

/** Serialize @p trace into a byte buffer. */
std::string serializeTrace(const Trace &trace);

/** Parse a byte buffer produced by serializeTrace. */
Trace deserializeTrace(std::string_view data);

/** Write @p trace to @p path. Throws TraceError on I/O failure. */
void writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Write @p trace to @p path via a temp file and an atomic rename,
 * so a crash or kill mid-write can never leave a truncated trace
 * behind at @p path. Throws TraceError on I/O failure.
 */
void writeTraceFileAtomic(const Trace &trace,
                          const std::string &path);

/**
 * Read a trace from @p path. Throws TraceError on any failure.
 * In Auto (the default) the file is memory-mapped where the platform
 * allows and decoded zero-copy; Mapped and Stream force one path,
 * which exists for tests and benchmarks — both decode to identical
 * traces.
 */
Trace readTraceFile(const std::string &path,
                    TraceReadMode mode = TraceReadMode::Auto);

/**
 * Export a human-readable JSON-lines rendering of @p trace (one
 * record per line: meta, threads, events, samples). For debugging
 * and interoperability; the binary format is the system of record.
 */
std::string toJsonl(const Trace &trace);

} // namespace lag::trace

#endif // LAG_TRACE_IO_HH
