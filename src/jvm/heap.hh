/**
 * @file
 * Generational heap model driving the stop-the-world collector.
 *
 * Two generations: allocation fills the young space; a full young
 * space triggers a minor collection, which promotes a fraction of
 * the young bytes. A full old space (or an explicit System.gc())
 * triggers a major collection. Pause lengths are lognormal draws so
 * that collections inside episodes vary realistically; the paper's
 * Figure 1 episode contains a 466 ms (major-scale) collection and
 * ArgoUML's profile shows frequent short minor collections.
 */

#ifndef LAG_JVM_HEAP_HH
#define LAG_JVM_HEAP_HH

#include <cstdint>

#include "util/random.hh"
#include "util/types.hh"

namespace lag::jvm
{

/** Kind of a stop-the-world collection. */
enum class GcKind : std::uint8_t
{
    Minor,
    Major,
};

/** Human-readable name of a GC kind. */
const char *gcKindName(GcKind kind);

/** Heap sizing and pause-model parameters. */
struct HeapConfig
{
    /** Young-generation capacity; reaching it triggers a minor GC. */
    std::uint64_t youngCapacityBytes = 24ull << 20;

    /** Fraction of young bytes promoted by each minor collection. */
    double promoteFraction = 0.08;

    /** Old-generation capacity; reaching it upgrades to a major GC. */
    std::uint64_t oldCapacityBytes = 192ull << 20;

    /** Fraction of old bytes surviving a major collection. */
    double oldSurvivorFraction = 0.35;

    /** Minor pause distribution (lognormal, clamped). */
    DurationNs minorPauseMedian = msToNs(12);
    double minorPauseSigma = 0.45;
    DurationNs minorPauseMin = msToNs(3);
    DurationNs minorPauseMax = msToNs(90);

    /** Major pause distribution (lognormal, clamped). */
    DurationNs majorPauseMedian = msToNs(380);
    double majorPauseSigma = 0.25;
    DurationNs majorPauseMin = msToNs(140);
    DurationNs majorPauseMax = msToNs(900);
};

/** Allocation accounting and GC trigger/pause policy. */
class Heap
{
  public:
    Heap(const HeapConfig &config, std::uint64_t seed);

    /** Record @p bytes of allocation. */
    void allocate(std::uint64_t bytes);

    /** True when the young generation is full. */
    bool needsMinor() const;

    /** True when the old generation is full. */
    bool needsMajor() const;

    /** Draw the pause length for a collection of @p kind. */
    DurationNs drawPause(GcKind kind);

    /** Apply the heap effects of a completed collection. */
    void finishCollection(GcKind kind);

    std::uint64_t youngUsed() const { return young_used_; }
    std::uint64_t oldUsed() const { return old_used_; }
    std::uint64_t totalAllocated() const { return total_allocated_; }
    std::uint64_t minorCount() const { return minor_count_; }
    std::uint64_t majorCount() const { return major_count_; }

  private:
    HeapConfig config_;
    Rng rng_;
    std::uint64_t young_used_ = 0;
    std::uint64_t old_used_ = 0;
    std::uint64_t total_allocated_ = 0;
    std::uint64_t minor_count_ = 0;
    std::uint64_t major_count_ = 0;
};

} // namespace lag::jvm

#endif // LAG_JVM_HEAP_HH
