#include "heap.hh"

#include "util/logging.hh"

namespace lag::jvm
{

const char *
gcKindName(GcKind kind)
{
    switch (kind) {
      case GcKind::Minor: return "minor";
      case GcKind::Major: return "major";
    }
    return "?";
}

Heap::Heap(const HeapConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed)
{
    lag_assert(config_.youngCapacityBytes > 0, "empty young generation");
    lag_assert(config_.promoteFraction >= 0.0 &&
               config_.promoteFraction <= 1.0,
               "promoteFraction out of [0,1]");
    lag_assert(config_.oldSurvivorFraction >= 0.0 &&
               config_.oldSurvivorFraction <= 1.0,
               "oldSurvivorFraction out of [0,1]");
}

void
Heap::allocate(std::uint64_t bytes)
{
    young_used_ += bytes;
    total_allocated_ += bytes;
}

bool
Heap::needsMinor() const
{
    return young_used_ >= config_.youngCapacityBytes;
}

bool
Heap::needsMajor() const
{
    return old_used_ >= config_.oldCapacityBytes;
}

DurationNs
Heap::drawPause(GcKind kind)
{
    if (kind == GcKind::Minor) {
        return rng_.duration(config_.minorPauseMedian,
                             config_.minorPauseSigma,
                             config_.minorPauseMin,
                             config_.minorPauseMax);
    }
    return rng_.duration(config_.majorPauseMedian,
                         config_.majorPauseSigma,
                         config_.majorPauseMin,
                         config_.majorPauseMax);
}

void
Heap::finishCollection(GcKind kind)
{
    if (kind == GcKind::Minor) {
        const auto promoted = static_cast<std::uint64_t>(
            static_cast<double>(young_used_) * config_.promoteFraction);
        old_used_ += promoted;
        young_used_ = 0;
        ++minor_count_;
    } else {
        const auto survivors = static_cast<std::uint64_t>(
            static_cast<double>(old_used_) * config_.oldSurvivorFraction);
        old_used_ = survivors;
        young_used_ = 0;
        ++major_count_;
    }
}

} // namespace lag::jvm
