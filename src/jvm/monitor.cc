#include "monitor.hh"

#include "util/logging.hh"

namespace lag::jvm
{

bool
MonitorTable::tryAcquire(ThreadId thread, int monitor)
{
    lag_assert(monitor >= 0, "monitor ids must be non-negative");
    Monitor &mon = monitors_[monitor];
    if (!mon.held) {
        mon.held = true;
        mon.owner = thread;
        return true;
    }
    lag_assert(mon.owner != thread,
               "recursive monitor acquisition is not modeled (monitor ",
               monitor, ")");
    mon.queue.push_back(thread);
    ++contentions_;
    return false;
}

std::optional<ThreadId>
MonitorTable::release(ThreadId thread, int monitor)
{
    const auto it = monitors_.find(monitor);
    lag_assert(it != monitors_.end() && it->second.held,
               "release of unheld monitor ", monitor);
    Monitor &mon = it->second;
    lag_assert(mon.owner == thread, "thread ", thread,
               " releasing monitor ", monitor, " owned by ", mon.owner);
    if (mon.queue.empty()) {
        mon.held = false;
        return std::nullopt;
    }
    const ThreadId next = mon.queue.front();
    mon.queue.pop_front();
    mon.owner = next; // direct handoff; monitor stays held
    return next;
}

bool
MonitorTable::isHeld(int monitor) const
{
    const auto it = monitors_.find(monitor);
    return it != monitors_.end() && it->second.held;
}

ThreadId
MonitorTable::holder(int monitor) const
{
    const auto it = monitors_.find(monitor);
    lag_assert(it != monitors_.end() && it->second.held,
               "holder() of unheld monitor ", monitor);
    return it->second.owner;
}

std::size_t
MonitorTable::waiters(int monitor) const
{
    const auto it = monitors_.find(monitor);
    return it == monitors_.end() ? 0 : it->second.queue.size();
}

} // namespace lag::jvm
