/**
 * @file
 * The GUI event queue and the event-dispatch thread's program.
 *
 * Models java.awt.EventQueue: user input, repaint requests and
 * background-thread posts all funnel through one queue serviced by a
 * single event-dispatch thread (EDT). Each dispatched event is one
 * episode (paper §II: "a time interval from the point a user request
 * is dispatched until the point the request is completed").
 */

#ifndef LAG_JVM_GUI_QUEUE_HH
#define LAG_JVM_GUI_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "activity.hh"
#include "program.hh"

namespace lag::jvm
{

/** FIFO of pending GUI events. */
class GuiEventQueue
{
  public:
    /** Enqueue an event. */
    void push(GuiEvent event);

    /** Dequeue the oldest event, if any. */
    std::optional<GuiEvent> pop();

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

    /** Total events ever enqueued. */
    std::uint64_t totalPosted() const { return total_posted_; }

    /** High-water mark of the queue depth (backlog diagnostics). */
    std::size_t maxDepth() const { return max_depth_; }

  private:
    std::deque<GuiEvent> queue_;
    std::uint64_t total_posted_ = 0;
    std::size_t max_depth_ = 0;
};

/**
 * Program of the event-dispatch thread: pull the next GUI event and
 * dispatch it as an episode; park when the queue is empty.
 *
 * Handlers are wrapped in a java.awt.EventQueue.dispatchEvent frame,
 * and events posted by background threads are additionally wrapped
 * in an Async interval node, which is how the paper's traces
 * distinguish asynchronous episodes (§II.A).
 */
class EdtProgram : public ThreadProgram
{
  public:
    ProgramStep next(Jvm &vm, VThread &thread) override;
};

} // namespace lag::jvm

#endif // LAG_JVM_GUI_QUEUE_HH
