#include "activity.hh"

#include <algorithm>

namespace lag::jvm
{

const char *
activityKindName(ActivityKind kind)
{
    switch (kind) {
      case ActivityKind::Plain:    return "plain";
      case ActivityKind::Listener: return "listener";
      case ActivityKind::Paint:    return "paint";
      case ActivityKind::Native:   return "native";
      case ActivityKind::Async:    return "async";
    }
    return "?";
}

DurationNs
ActivityNode::subtreeCost() const
{
    DurationNs total = selfCost;
    for (const auto &c : children)
        total += c.subtreeCost();
    return total;
}

std::size_t
ActivityNode::subtreeSize() const
{
    std::size_t total = 1;
    for (const auto &c : children)
        total += c.subtreeSize();
    return total;
}

std::size_t
ActivityNode::subtreeDepth() const
{
    std::size_t deepest = 0;
    for (const auto &c : children)
        deepest = std::max(deepest, c.subtreeDepth());
    return deepest + 1;
}

ActivityBuilder::ActivityBuilder(ActivityKind kind, std::string class_name,
                                 std::string method_name)
{
    node_.kind = kind;
    node_.frame.className = std::move(class_name);
    node_.frame.methodName = std::move(method_name);
}

ActivityBuilder &
ActivityBuilder::cost(DurationNs ns)
{
    node_.selfCost = ns;
    return *this;
}

ActivityBuilder &
ActivityBuilder::alloc(std::uint64_t bytes)
{
    node_.allocBytes = bytes;
    return *this;
}

ActivityBuilder &
ActivityBuilder::sleep(DurationNs ns)
{
    node_.sleepNs = ns;
    return *this;
}

ActivityBuilder &
ActivityBuilder::wait(DurationNs ns)
{
    node_.waitNs = ns;
    return *this;
}

ActivityBuilder &
ActivityBuilder::monitor(int id)
{
    node_.monitorId = id;
    return *this;
}

ActivityBuilder &
ActivityBuilder::systemGc()
{
    node_.explicitGc = true;
    return *this;
}

ActivityBuilder &
ActivityBuilder::postAtEnd(GuiEvent event)
{
    node_.postAtEnd.push_back(std::move(event));
    return *this;
}

ActivityBuilder &
ActivityBuilder::child(ActivityNode node)
{
    node_.children.push_back(std::move(node));
    return *this;
}

ActivityBuilder &
ActivityBuilder::child(ActivityBuilder builder)
{
    node_.children.push_back(std::move(builder).build());
    return *this;
}

ActivityNode
ActivityBuilder::build() &&
{
    return std::move(node_);
}

std::shared_ptr<const ActivityNode>
ActivityBuilder::buildShared() &&
{
    return std::make_shared<const ActivityNode>(std::move(node_));
}

} // namespace lag::jvm
