/**
 * @file
 * Observation interface of the simulated JVM.
 *
 * A JvmListener receives the raw events a profiling agent would see:
 * episode dispatch boundaries, interval (method) boundaries for the
 * instrumented kinds, GC bounds, and periodic stack samples. The
 * LiLa agent (src/lila) implements this interface to produce traces;
 * tests implement it to observe VM behaviour directly.
 */

#ifndef LAG_JVM_LISTENER_HH
#define LAG_JVM_LISTENER_HH

#include <vector>

#include "activity.hh"
#include "heap.hh"
#include "thread.hh"
#include "util/types.hh"

namespace lag::jvm
{

/** One thread's contribution to a stack sample. */
struct ThreadSnapshot
{
    ThreadId thread;
    SampleState state;
    std::vector<Frame> stack; ///< innermost frame last
};

/** Callbacks fired by the VM as simulation progresses. */
class JvmListener
{
  public:
    virtual ~JvmListener() = default;

    /** A thread entered the Runnable state for the first time. */
    virtual void onThreadStarted(const VThread &thread) { (void)thread; }

    /** The EDT began dispatching a GUI event (episode start). */
    virtual void
    onDispatchBegin(ThreadId thread, TimeNs time)
    {
        (void)thread;
        (void)time;
    }

    /** The dispatch completed (episode end). */
    virtual void
    onDispatchEnd(ThreadId thread, TimeNs time)
    {
        (void)thread;
        (void)time;
    }

    /** A Listener/Paint/Native/Async interval began. */
    virtual void
    onIntervalBegin(ThreadId thread, ActivityKind kind, const Frame &frame,
                    TimeNs time)
    {
        (void)thread;
        (void)kind;
        (void)frame;
        (void)time;
    }

    /** The matching interval ended. */
    virtual void
    onIntervalEnd(ThreadId thread, ActivityKind kind, TimeNs time)
    {
        (void)thread;
        (void)kind;
        (void)time;
    }

    /** Stop-the-world collection started (all threads stopped). */
    virtual void
    onGcBegin(TimeNs time, GcKind kind)
    {
        (void)time;
        (void)kind;
    }

    /** The collection finished; threads are about to resume. */
    virtual void onGcEnd(TimeNs time) { (void)time; }

    /** Periodic stack sample of all live threads. */
    virtual void
    onSample(TimeNs time, const std::vector<ThreadSnapshot> &snapshots)
    {
        (void)time;
        (void)snapshots;
    }
};

} // namespace lag::jvm

#endif // LAG_JVM_LISTENER_HH
