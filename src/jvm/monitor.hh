/**
 * @file
 * Contended monitors (Java intrinsic locks).
 *
 * Threads that fail to acquire a held monitor are queued FIFO and
 * handed the monitor directly when the holder releases it. This is
 * the mechanism behind the Blocked thread state that the paper's
 * Figure 8 attributes lag to (e.g. FreeMind's display-configuration
 * contention).
 */

#ifndef LAG_JVM_MONITOR_HH
#define LAG_JVM_MONITOR_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "util/types.hh"

namespace lag::jvm
{

/** Table of all monitors in one simulated VM. */
class MonitorTable
{
  public:
    /**
     * Attempt to acquire @p monitor for @p thread.
     * @return true on success; on failure the thread has been queued
     *         and will be granted the monitor on a later release.
     */
    bool tryAcquire(ThreadId thread, int monitor);

    /**
     * Release @p monitor held by @p thread. If waiters are queued,
     * ownership passes directly to the first waiter.
     * @return the thread granted the monitor, if any.
     */
    std::optional<ThreadId> release(ThreadId thread, int monitor);

    /** True when the monitor is currently held. */
    bool isHeld(int monitor) const;

    /** Holder of @p monitor; meaningless unless isHeld(). */
    ThreadId holder(int monitor) const;

    /** Number of threads queued on @p monitor. */
    std::size_t waiters(int monitor) const;

    /** Total failed acquisition attempts (contention events). */
    std::uint64_t contentionCount() const { return contentions_; }

  private:
    struct Monitor
    {
        bool held = false;
        ThreadId owner = 0;
        std::deque<ThreadId> queue;
    };

    std::unordered_map<int, Monitor> monitors_;
    std::uint64_t contentions_ = 0;
};

} // namespace lag::jvm

#endif // LAG_JVM_MONITOR_HH
