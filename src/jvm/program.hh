/**
 * @file
 * Thread programs: what a simulated thread does between activities.
 *
 * A program is consulted by the VM whenever its thread has no task.
 * The event-dispatch thread's program pulls events from the GUI
 * queue; background-thread programs model timers, loaders and
 * workers (defined by the application models in src/app).
 */

#ifndef LAG_JVM_PROGRAM_HH
#define LAG_JVM_PROGRAM_HH

#include <memory>

#include "activity.hh"
#include "util/types.hh"

namespace lag::jvm
{

class Jvm;
class VThread;

/** Directive a program hands back to the VM. */
struct ProgramStep
{
    enum class Kind : std::uint8_t
    {
        RunActivity,   ///< execute an activity tree
        IdleUntilWoken,///< park until someone wakes the thread
        SleepFor,      ///< sleep, then ask again
        Exit,          ///< terminate the thread
    };

    Kind kind = Kind::Exit;

    /** Activity to run (RunActivity). */
    std::shared_ptr<const ActivityNode> activity;

    /** Treat the activity as an episode dispatch (EDT only). */
    bool asEpisode = false;

    /** Wrap the activity in an Async interval (background post). */
    bool asAsync = false;

    /** Sleep duration (SleepFor). */
    DurationNs sleepNs = 0;

    static ProgramStep
    runActivity(std::shared_ptr<const ActivityNode> activity,
                bool as_episode = false, bool as_async = false)
    {
        ProgramStep s;
        s.kind = Kind::RunActivity;
        s.activity = std::move(activity);
        s.asEpisode = as_episode;
        s.asAsync = as_async;
        return s;
    }

    static ProgramStep
    idle()
    {
        ProgramStep s;
        s.kind = Kind::IdleUntilWoken;
        return s;
    }

    static ProgramStep
    sleepFor(DurationNs ns)
    {
        ProgramStep s;
        s.kind = Kind::SleepFor;
        s.sleepNs = ns;
        return s;
    }

    static ProgramStep
    exitThread()
    {
        ProgramStep s;
        s.kind = Kind::Exit;
        return s;
    }
};

/** Behaviour of a thread between tasks. */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** Decide what the thread does next. Called with the VM's state
     * at the current simulated time; the program may post GUI events
     * or inspect the clock through @p vm. */
    virtual ProgramStep next(Jvm &vm, VThread &thread) = 0;
};

} // namespace lag::jvm

#endif // LAG_JVM_PROGRAM_HH
