#include "vm.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lag::jvm
{

Jvm::Jvm(const JvmConfig &config, JvmListener &listener)
    : config_(config), listener_(listener),
      rng_(SplitMix64(config.seed ^ 0x6a766d5f766d00ULL).next()),
      heap_(config.heap, SplitMix64(config.seed ^ 0x68656170ULL).next())
{
    lag_assert(config_.cores >= 1, "need at least one core");
    lag_assert(config_.timeSlice > 0, "time slice must be positive");
    lag_assert(config_.samplePeriod > 0, "sample period must be positive");
    cores_.assign(static_cast<std::size_t>(config_.cores), -1);
}

ThreadId
Jvm::createThread(std::string name, bool is_gui,
                  std::shared_ptr<ThreadProgram> program,
                  std::vector<Frame> base_stack)
{
    lag_assert(!started_, "createThread after start()");
    if (is_gui) {
        lag_assert(!has_gui_thread_, "only one GUI thread per VM");
    }
    const auto id = static_cast<ThreadId>(threads_.size());
    if (base_stack.empty())
        base_stack = {{"java.lang.Thread", "run"}};
    threads_.push_back(std::make_unique<VThread>(
        id, std::move(name), is_gui, std::move(program),
        std::move(base_stack)));
    threads_.back()->setInstrumentationOverhead(
        config_.instrumentationOverhead);
    if (is_gui) {
        gui_thread_ = id;
        has_gui_thread_ = true;
    }
    return id;
}

ThreadId
Jvm::createEventDispatchThread()
{
    return createThread(
        "AWT-EventQueue-0", /*is_gui=*/true,
        std::make_shared<EdtProgram>(),
        {{"java.lang.Thread", "run"},
         {"java.awt.EventDispatchThread", "run"},
         {"java.awt.EventDispatchThread", "pumpEvents"}});
}

VThread &
Jvm::thread(ThreadId id)
{
    lag_assert(id < threads_.size(), "unknown thread id ", id);
    return *threads_[id];
}

const VThread &
Jvm::thread(ThreadId id) const
{
    lag_assert(id < threads_.size(), "unknown thread id ", id);
    return *threads_[id];
}

ThreadId
Jvm::guiThread() const
{
    lag_assert(has_gui_thread_, "no GUI thread was created");
    return gui_thread_;
}

void
Jvm::start()
{
    lag_assert(!started_, "start() called twice");
    lag_assert(!threads_.empty(), "start() with no threads");
    started_ = true;
    for (auto &thread : threads_) {
        thread->setState(ThreadState::Runnable);
        ready_.push_back(thread->id());
        listener_.onThreadStarted(*thread);
    }
    queue_.scheduleAfter(config_.samplePeriod, [this] { onSampleTick(); });
    requestSchedulePass();
}

void
Jvm::run(TimeNs until)
{
    lag_assert(started_, "run() before start()");
    queue_.runUntil(until);
}

void
Jvm::postGuiEvent(const GuiEvent &event)
{
    lag_assert(event.handler != nullptr, "GUI event without handler");
    gui_queue_.push(event);
    if (!has_gui_thread_)
        return;
    VThread &edt = thread(gui_thread_);
    if (edt.idleParked) {
        edt.idleParked = false;
        makeReady(edt);
    }
}

bool
Jvm::tryAcquireMonitor(ThreadId thread_id, int monitor)
{
    return monitors_.tryAcquire(thread_id, monitor);
}

void
Jvm::releaseMonitor(ThreadId thread_id, int monitor)
{
    const auto next = monitors_.release(thread_id, monitor);
    if (!next)
        return;
    VThread &waiter = thread(*next);
    lag_assert(waiter.state() == ThreadState::Blocked,
               "monitor granted to thread '", waiter.name(),
               "' in state ", threadStateName(waiter.state()));
    waiter.grantMonitor(monitor);
    makeReady(waiter);
}

void
Jvm::intervalBegin(ThreadId thread_id, ActivityKind kind,
                   const Frame &frame)
{
    listener_.onIntervalBegin(thread_id, kind, frame, now());
}

void
Jvm::intervalEnd(ThreadId thread_id, ActivityKind kind)
{
    listener_.onIntervalEnd(thread_id, kind, now());
}

void
Jvm::requestSchedulePass()
{
    if (pass_pending_)
        return;
    pass_pending_ = true;
    queue_.scheduleAfter(0, [this] { schedulePass(); },
                         sim::EventPriority::Low);
}

void
Jvm::schedulePass()
{
    pass_pending_ = false;
    if (gc_active_)
        return;
    for (int core = 0; core < config_.cores && !ready_.empty(); ++core) {
        if (cores_[static_cast<std::size_t>(core)] != -1)
            continue;
        const ThreadId id = ready_.front();
        ready_.pop_front();
        VThread &next = thread(id);
        lag_assert(next.state() == ThreadState::Runnable,
                   "ready queue held thread '", next.name(),
                   "' in state ", threadStateName(next.state()));
        dispatchTo(next, core);
    }
}

void
Jvm::dispatchTo(VThread &thread, int core)
{
    cores_[static_cast<std::size_t>(core)] =
        static_cast<int>(thread.id());
    thread.coreIndex = core;
    thread.setState(ThreadState::Running);
    thread.sliceEnd = now() + config_.timeSlice;
    continueThread(thread);
}

void
Jvm::freeCore(VThread &thread)
{
    if (thread.coreIndex >= 0) {
        cores_[static_cast<std::size_t>(thread.coreIndex)] = -1;
        thread.coreIndex = -1;
        requestSchedulePass();
    }
}

void
Jvm::makeReady(VThread &thread)
{
    thread.setState(ThreadState::Runnable);
    ready_.push_back(thread.id());
    requestSchedulePass();
}

void
Jvm::continueThread(VThread &thread)
{
    lag_assert(thread.state() == ThreadState::Running,
               "continueThread on '", thread.name(), "' in state ",
               threadStateName(thread.state()));
    while (true) {
        const Need need = thread.advance(*this);
        switch (need.kind) {
          case Need::Kind::Cpu: {
            DurationNs avail = thread.sliceEnd - now();
            if (avail <= 0) {
                if (ready_.empty()) {
                    // Nobody waiting; renew the slice in place.
                    thread.sliceEnd = now() + config_.timeSlice;
                    avail = config_.timeSlice;
                } else {
                    ++stats_.contextSwitches;
                    freeCore(thread);
                    makeReady(thread);
                    return;
                }
            }
            const DurationNs burst = std::min(need.amount, avail);
            thread.burstStart = now();
            const ThreadId id = thread.id();
            thread.burstEvent =
                queue_.scheduleAfter(burst, [this, id] { onBurstEnd(id); });
            return;
          }
          case Need::Kind::Sleep:
          case Need::Kind::Wait: {
            freeCore(thread);
            thread.setState(need.kind == Need::Kind::Sleep
                                ? ThreadState::Sleeping
                                : ThreadState::Waiting);
            const ThreadId id = thread.id();
            thread.wakeEvent =
                queue_.scheduleAfter(need.amount, [this, id] {
                    onWake(id);
                });
            return;
          }
          case Need::Kind::BlockedOnMonitor:
            freeCore(thread);
            thread.setState(ThreadState::Blocked);
            return;
          case Need::Kind::TriggerGc:
            freeCore(thread);
            thread.setState(ThreadState::AtSafepoint);
            requestGc(GcKind::Major);
            return;
          case Need::Kind::TaskDone: {
            if (thread.episodeOpen) {
                thread.episodeOpen = false;
                listener_.onDispatchEnd(thread.id(), now());
            }
            const ProgramStep step = thread.program().next(*this, thread);
            switch (step.kind) {
              case ProgramStep::Kind::RunActivity:
                if (step.asEpisode) {
                    ++stats_.dispatches;
                    thread.episodeOpen = true;
                    listener_.onDispatchBegin(thread.id(), now());
                }
                thread.beginTask(step.activity);
                continue;
              case ProgramStep::Kind::IdleUntilWoken:
                freeCore(thread);
                thread.idleParked = true;
                thread.setState(ThreadState::Waiting);
                return;
              case ProgramStep::Kind::SleepFor: {
                freeCore(thread);
                thread.setState(ThreadState::Sleeping);
                const ThreadId id = thread.id();
                thread.wakeEvent =
                    queue_.scheduleAfter(step.sleepNs, [this, id] {
                        onWake(id);
                    });
                return;
              }
              case ProgramStep::Kind::Exit:
                freeCore(thread);
                thread.setState(ThreadState::Terminated);
                return;
            }
            lag_panic("unhandled program step");
          }
        }
    }
}

void
Jvm::onBurstEnd(ThreadId id)
{
    VThread &thread = this->thread(id);
    thread.burstEvent = 0;
    const DurationNs ran = now() - thread.burstStart;
    thread.burstStart = kNoTime;
    heap_.allocate(thread.consumeCpu(ran));
    if (!gc_active_ && heap_.needsMinor()) {
        requestGc(heap_.needsMajor() ? GcKind::Major : GcKind::Minor);
        // requestGc moved this thread to its safepoint; it resumes
        // with the rest when the collection ends.
        return;
    }
    continueThread(thread);
}

void
Jvm::onWake(ThreadId id)
{
    VThread &thread = this->thread(id);
    thread.wakeEvent = 0;
    thread.completeTimedOp();
    makeReady(thread);
}

void
Jvm::requestGc(GcKind kind)
{
    lag_assert(!gc_active_, "GC requested while one is in progress");
    gc_active_ = true;
    gc_kind_ = (kind == GcKind::Minor && heap_.needsMajor())
                   ? GcKind::Major
                   : kind;
    sampler_suspended_ = true;
    for (auto &thread : threads_) {
        if (thread->state() == ThreadState::Running)
            stopAtSafepoint(*thread);
    }
    queue_.scheduleAfter(config_.timeToSafepoint,
                         [this] { beginCollection(); },
                         sim::EventPriority::High);
}

void
Jvm::stopAtSafepoint(VThread &thread)
{
    if (thread.burstEvent != 0) {
        queue_.cancel(thread.burstEvent);
        thread.burstEvent = 0;
        const DurationNs ran = now() - thread.burstStart;
        thread.burstStart = kNoTime;
        heap_.allocate(thread.consumeCpu(ran));
    }
    if (thread.coreIndex >= 0) {
        cores_[static_cast<std::size_t>(thread.coreIndex)] = -1;
        thread.coreIndex = -1;
    }
    thread.setState(ThreadState::AtSafepoint);
}

void
Jvm::beginCollection()
{
    listener_.onGcBegin(now(), gc_kind_);
    const DurationNs pause = heap_.drawPause(gc_kind_);
    queue_.scheduleAfter(pause, [this] { endCollection(); },
                         sim::EventPriority::High);
}

void
Jvm::endCollection()
{
    listener_.onGcEnd(now());
    heap_.finishCollection(gc_kind_);
    if (gc_kind_ == GcKind::Minor)
        ++stats_.minorGcs;
    else
        ++stats_.majorGcs;
    gc_active_ = false;

    for (auto &thread : threads_) {
        if (thread->state() != ThreadState::AtSafepoint)
            continue;
        const ThreadId id = thread->id();
        const DurationNs jitter =
            rng_.uniformInt(0, config_.postGcRescheduleJitterMax);
        queue_.scheduleAfter(jitter, [this, id] {
            VThread &t = this->thread(id);
            if (!gc_active_ && t.state() == ThreadState::AtSafepoint)
                makeReady(t);
        });
    }

    const DurationNs resume_delay =
        rng_.uniformInt(0, config_.samplerResumeDelayMax);
    queue_.scheduleAfter(resume_delay, [this] {
        if (!gc_active_)
            sampler_suspended_ = false;
    });

    requestSchedulePass();
}

void
Jvm::onSampleTick()
{
    if (sampler_suspended_) {
        ++stats_.samplesSuppressed;
    } else {
        std::vector<ThreadSnapshot> snapshots;
        snapshots.reserve(threads_.size());
        for (const auto &thread : threads_) {
            if (!thread->isLive())
                continue;
            snapshots.push_back(ThreadSnapshot{
                thread->id(), thread->sampleState(), thread->stack()});
        }
        ++stats_.samplesTaken;
        listener_.onSample(now(), snapshots);
    }
    queue_.scheduleAfter(config_.samplePeriod, [this] { onSampleTick(); });
}

} // namespace lag::jvm
