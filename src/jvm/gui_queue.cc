#include "gui_queue.hh"

#include <algorithm>
#include <utility>

#include "vm.hh"

namespace lag::jvm
{

void
GuiEventQueue::push(GuiEvent event)
{
    queue_.push_back(std::move(event));
    ++total_posted_;
    max_depth_ = std::max(max_depth_, queue_.size());
}

std::optional<GuiEvent>
GuiEventQueue::pop()
{
    if (queue_.empty())
        return std::nullopt;
    GuiEvent front = std::move(queue_.front());
    queue_.pop_front();
    return front;
}

ProgramStep
EdtProgram::next(Jvm &vm, VThread &)
{
    auto event = vm.guiQueue().pop();
    if (!event)
        return ProgramStep::idle();

    ActivityBuilder dispatch(ActivityKind::Plain, "java.awt.EventQueue",
                             "dispatchEvent");
    dispatch.cost(vm.config().dispatchOverhead);
    if (event->postedByBackground) {
        ActivityBuilder wrapper(ActivityKind::Async,
                                "java.awt.event.InvocationEvent",
                                "dispatch");
        wrapper.child(*event->handler);
        dispatch.child(std::move(wrapper));
    } else {
        dispatch.child(*event->handler);
    }
    return ProgramStep::runActivity(std::move(dispatch).buildShared(),
                                    /*as_episode=*/true);
}

} // namespace lag::jvm
