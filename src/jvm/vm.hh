/**
 * @file
 * The simulated JVM: threads, scheduler, GC orchestration, sampler.
 *
 * Jvm ties the pieces together on top of the discrete-event kernel:
 *
 *  - a time-sliced scheduler over a fixed number of cores (the
 *    paper's platform is a 2-core MacBook Pro), with preemption at
 *    slice boundaries and FIFO ready queueing — this produces the
 *    runnable-but-not-running states Figure 7 measures;
 *  - stop-the-world garbage collection with safepoints: running
 *    threads are interrupted, a time-to-safepoint elapses before the
 *    GC-begin notification (matching JVMTI's bracket semantics the
 *    paper discusses in §II.B), and resumed threads contend for
 *    cores again afterwards with a reschedule jitter — the cause of
 *    Figure 1's sample gap being longer than the GC interval;
 *  - a periodic stack sampler that is suspended from the safepoint
 *    request until after the collection, like any mutator-side
 *    JVMTI agent.
 */

#ifndef LAG_JVM_VM_HH
#define LAG_JVM_VM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "gui_queue.hh"
#include "heap.hh"
#include "listener.hh"
#include "monitor.hh"
#include "program.hh"
#include "sim/event_queue.hh"
#include "thread.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace lag::jvm
{

/** Static configuration of one simulated VM. */
struct JvmConfig
{
    /** Number of CPU cores (paper platform: Core 2 Duo). */
    int cores = 2;

    /** Scheduler time slice. */
    DurationNs timeSlice = msToNs(2);

    /** Time from safepoint request to GC start. */
    DurationNs timeToSafepoint = usToNs(300);

    /**
     * Upper bound of the uniform jitter applied to each thread's
     * re-entry into the ready queue after a collection.
     */
    DurationNs postGcRescheduleJitterMax = msToNs(1);

    /**
     * Extra delay before the stack sampler resumes after a GC (the
     * sampler itself competes for CPU). Raise this to reproduce the
     * long sample gap of the paper's Figure 1.
     */
    DurationNs samplerResumeDelayMax = msToNs(4);

    /** Stack sampling period. */
    DurationNs samplePeriod = msToNs(10);

    /**
     * CPU cost of java.awt.EventQueue.dispatchEvent itself, around
     * the handler. Episodes are therefore slightly longer than
     * their handlers, so an episode can clear a trace filter whose
     * listener does not — the "no internal structure" episodes of
     * the paper's §IV.A.
     */
    DurationNs dispatchOverhead = usToNs(250);

    /**
     * Profiler perturbation: extra CPU charged to every instrumented
     * (non-Plain) activity node, modeling the cost of LiLa's
     * bytecode instrumentation at each listener/paint/native/async
     * call. The paper lists studying this perturbation as future
     * work (§V); the bench_ablation_perturbation harness sweeps it.
     */
    DurationNs instrumentationOverhead = 0;

    /** Heap sizing and pause model. */
    HeapConfig heap;

    /** Root of all randomness in this VM. */
    std::uint64_t seed = 1;
};

/** Aggregate counters exposed for tests and diagnostics. */
struct JvmStats
{
    std::uint64_t dispatches = 0;      ///< episodes dispatched
    std::uint64_t contextSwitches = 0; ///< preemptions at slice end
    std::uint64_t samplesTaken = 0;
    std::uint64_t samplesSuppressed = 0; ///< ticks during safepoints
    std::uint64_t minorGcs = 0;
    std::uint64_t majorGcs = 0;
};

/**
 * One simulated JVM instance. Create threads, then start(), then
 * run() to a horizon; a JvmListener observes everything a profiler
 * could see.
 */
class Jvm : public ExecContext
{
  public:
    Jvm(const JvmConfig &config, JvmListener &listener);

    /** The underlying event kernel (session scripts schedule here). */
    sim::EventQueue &eventQueue() { return queue_; }

    /** Current simulated time. */
    TimeNs now() const { return queue_.now(); }

    const JvmConfig &config() const { return config_; }
    const JvmStats &stats() const { return stats_; }
    Heap &heap() { return heap_; }
    MonitorTable &monitors() { return monitors_; }
    GuiEventQueue &guiQueue() { return gui_queue_; }

    /**
     * Create a thread. Must be called before start(). Exactly one
     * thread may be the GUI (event-dispatch) thread.
     */
    ThreadId createThread(std::string name, bool is_gui,
                          std::shared_ptr<ThreadProgram> program,
                          std::vector<Frame> base_stack = {});

    /** Convenience: create the EDT with its standard base stack. */
    ThreadId createEventDispatchThread();

    VThread &thread(ThreadId id);
    const VThread &thread(ThreadId id) const;
    const std::vector<std::unique_ptr<VThread>> &threads() const
    {
        return threads_;
    }

    /** Id of the event-dispatch thread. */
    ThreadId guiThread() const;

    /** Start all threads and the sampler. */
    void start();

    /** Run the simulation until simulated time @p until. */
    void run(TimeNs until);

    /** True while a safepoint/collection is in progress. */
    bool gcActive() const { return gc_active_; }

    /**
     * Post an event to the GUI queue, waking the EDT if it is
     * parked. Called by session scripts (user input, repaints) and
     * by the interpreter for background-thread posts.
     */
    void postGuiEvent(const GuiEvent &event) override;

    /**
     * ExecContext interface (used by the interpreter).
     * @{
     */
    TimeNs execNow() const override { return queue_.now(); }
    bool tryAcquireMonitor(ThreadId thread, int monitor) override;
    void releaseMonitor(ThreadId thread, int monitor) override;
    void intervalBegin(ThreadId thread, ActivityKind kind,
                       const Frame &frame) override;
    void intervalEnd(ThreadId thread, ActivityKind kind) override;
    /** @} */

  private:
    /** Schedule a scheduling pass at the current time (deduped). */
    void requestSchedulePass();

    /** Fill free cores from the ready queue. */
    void schedulePass();

    /** Put @p thread on @p core and drive it forward. */
    void dispatchTo(VThread &thread, int core);

    /** Advance @p thread through needs until it blocks or runs. */
    void continueThread(VThread &thread);

    /** The pending CPU burst of @p thread finished. */
    void onBurstEnd(ThreadId id);

    /** A sleep or timed wait of @p thread expired. */
    void onWake(ThreadId id);

    /** Release @p thread's core (if any) and trigger a pass. */
    void freeCore(VThread &thread);

    /** Make @p thread ready and trigger a scheduling pass. */
    void makeReady(VThread &thread);

    /** Begin a stop-the-world collection. */
    void requestGc(GcKind kind);

    /** Safepoint reached: notify listener, schedule the GC end. */
    void beginCollection();

    /** Collection finished: resume threads and the sampler. */
    void endCollection();

    /** Interrupt a running thread for a safepoint. */
    void stopAtSafepoint(VThread &thread);

    /** Periodic sampler tick. */
    void onSampleTick();

    JvmConfig config_;
    JvmListener &listener_;
    sim::EventQueue queue_;
    Rng rng_;
    Heap heap_;
    MonitorTable monitors_;
    GuiEventQueue gui_queue_;
    JvmStats stats_;

    std::vector<std::unique_ptr<VThread>> threads_;
    ThreadId gui_thread_ = 0;
    bool has_gui_thread_ = false;
    bool started_ = false;

    std::vector<int> cores_;      ///< occupant thread id or -1
    std::deque<ThreadId> ready_;
    bool pass_pending_ = false;

    bool gc_active_ = false;
    GcKind gc_kind_ = GcKind::Minor;
    bool sampler_suspended_ = false;
};

} // namespace lag::jvm

#endif // LAG_JVM_VM_HH
