/**
 * @file
 * Activity trees: the "programs" simulated threads execute.
 *
 * An activity tree is a nested structure of method calls. Each node
 * carries a frame (class + method), a CPU self-cost that is consumed
 * in chunks interleaved around its children, an allocation volume,
 * and optional blocking operations (sleep, timed wait, monitor
 * acquisition, explicit GC) that model the behaviours the paper's
 * study observes: Euclide's combo-box Thread.sleep, jEdit's modal
 * dialog waits, FreeMind's monitor contention and Arabeske's
 * System.gc() calls.
 *
 * Nodes whose kind is not Plain additionally produce trace intervals
 * (Listener / Paint / Native / Async per Table I of the paper).
 */

#ifndef LAG_JVM_ACTIVITY_HH
#define LAG_JVM_ACTIVITY_HH

#include <memory>
#include <string>
#include <vector>

#include "util/types.hh"

namespace lag::jvm
{

struct ActivityNode;

/**
 * Kind of method call a node models. Plain frames appear in call
 * stacks only; the other kinds additionally open a trace interval.
 */
enum class ActivityKind : std::uint8_t
{
    Plain,    ///< ordinary method call; stack frame only
    Listener, ///< user-input listener notification
    Paint,    ///< graphics rendering operation
    Native,   ///< JNI native call
    Async,    ///< dispatch of an event posted by a background thread
};

/** Human-readable name of an activity kind. */
const char *activityKindName(ActivityKind kind);

/** One call-stack frame. */
struct Frame
{
    std::string className;
    std::string methodName;

    bool
    operator==(const Frame &other) const
    {
        return className == other.className &&
               methodName == other.methodName;
    }
};

/**
 * An event posted to the GUI event queue. Dispatching one of these
 * on the event-dispatch thread constitutes an episode.
 */
struct GuiEvent
{
    /** Handler executed by the event-dispatch thread. */
    std::shared_ptr<const ActivityNode> handler;

    /**
     * True when the event was posted by a background thread; the
     * dispatch is then wrapped in an Async interval (paper §II.A,
     * "background-thread event dispatches").
     */
    bool postedByBackground = false;
};

/** A node in an activity tree. */
struct ActivityNode
{
    ActivityKind kind = ActivityKind::Plain;
    Frame frame;

    /**
     * CPU time this node consumes itself, interleaved in equal
     * chunks around its children.
     */
    DurationNs selfCost = 0;

    /** Bytes allocated while consuming selfCost (spread pro rata). */
    std::uint64_t allocBytes = 0;

    /** If > 0, Thread.sleep for this long on entry. */
    DurationNs sleepNs = 0;

    /** If > 0, Object.wait/park with this timeout on entry. */
    DurationNs waitNs = 0;

    /** If >= 0, hold this monitor for the duration of the node. */
    int monitorId = -1;

    /** If true, invoke System.gc() (a major collection) on entry. */
    bool explicitGc = false;

    /** Events posted to the GUI queue when the node completes. */
    std::vector<GuiEvent> postAtEnd;

    std::vector<ActivityNode> children;

    /** Total CPU demand of the subtree (self costs only, no waits). */
    DurationNs subtreeCost() const;

    /** Number of nodes in the subtree (including this node). */
    std::size_t subtreeSize() const;

    /** Maximum depth of the subtree (this node counts as 1). */
    std::size_t subtreeDepth() const;
};

/**
 * Fluent helper for building activity trees in application models
 * and tests without writing aggregate-initializer pyramids.
 */
class ActivityBuilder
{
  public:
    /** Start a tree rooted at a node of the given kind and frame. */
    ActivityBuilder(ActivityKind kind, std::string class_name,
                    std::string method_name);

    /** Set the root's CPU self-cost. */
    ActivityBuilder &cost(DurationNs ns);

    /** Set the root's allocation volume. */
    ActivityBuilder &alloc(std::uint64_t bytes);

    /** Sleep on entry. */
    ActivityBuilder &sleep(DurationNs ns);

    /** Timed wait on entry. */
    ActivityBuilder &wait(DurationNs ns);

    /** Hold a monitor for the node's duration. */
    ActivityBuilder &monitor(int id);

    /** Trigger System.gc() on entry. */
    ActivityBuilder &systemGc();

    /** Post an event to the GUI queue when the node completes. */
    ActivityBuilder &postAtEnd(GuiEvent event);

    /** Append a fully built child. */
    ActivityBuilder &child(ActivityNode node);

    /** Append the tree built by another builder as a child. */
    ActivityBuilder &child(ActivityBuilder builder);

    /** Finish and return the tree by value. */
    ActivityNode build() &&;

    /** Finish and return the tree behind a shared pointer. */
    std::shared_ptr<const ActivityNode> buildShared() &&;

  private:
    ActivityNode node_;
};

} // namespace lag::jvm

#endif // LAG_JVM_ACTIVITY_HH
