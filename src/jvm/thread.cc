#include "thread.hh"

#include "util/logging.hh"

namespace lag::jvm
{

const char *
threadStateName(ThreadState state)
{
    switch (state) {
      case ThreadState::New:         return "new";
      case ThreadState::Running:     return "running";
      case ThreadState::Runnable:    return "runnable";
      case ThreadState::Blocked:     return "blocked";
      case ThreadState::Waiting:     return "waiting";
      case ThreadState::Sleeping:    return "sleeping";
      case ThreadState::AtSafepoint: return "at-safepoint";
      case ThreadState::Terminated:  return "terminated";
    }
    return "?";
}

const char *
sampleStateName(SampleState state)
{
    switch (state) {
      case SampleState::Runnable: return "runnable";
      case SampleState::Blocked:  return "blocked";
      case SampleState::Waiting:  return "waiting";
      case SampleState::Sleeping: return "sleeping";
    }
    return "?";
}

VThread::VThread(ThreadId id, std::string name, bool is_gui,
                 std::shared_ptr<ThreadProgram> program,
                 std::vector<Frame> base_stack)
    : id_(id), name_(std::move(name)), gui_(is_gui),
      program_(std::move(program)), base_stack_(std::move(base_stack)),
      stack_(base_stack_)
{
    lag_assert(program_ != nullptr, "thread '", name_, "' needs a program");
}

SampleState
VThread::sampleState() const
{
    switch (state_) {
      case ThreadState::Running:
      case ThreadState::Runnable:
      case ThreadState::AtSafepoint:
        // A JVMTI sampler reports RUNNABLE whether or not the thread
        // holds a core; safepoint parking is likewise invisible.
        return SampleState::Runnable;
      case ThreadState::Blocked:
        return SampleState::Blocked;
      case ThreadState::Waiting:
        return SampleState::Waiting;
      case ThreadState::Sleeping:
        return SampleState::Sleeping;
      case ThreadState::New:
      case ThreadState::Terminated:
        break;
    }
    lag_panic("sampling dead thread '", name_, "' in state ",
              threadStateName(state_));
}

bool
VThread::isLive() const
{
    return state_ != ThreadState::New && state_ != ThreadState::Terminated;
}

void
VThread::beginTask(std::shared_ptr<const ActivityNode> root)
{
    lag_assert(exec_.empty(),
               "beginTask on thread '", name_, "' with a task in flight");
    lag_assert(root != nullptr, "beginTask with null activity");
    task_ = std::move(root);
    pushNode(task_.get());
}

void
VThread::pushNode(const ActivityNode *node)
{
    ExecFrame frame;
    frame.node = node;
    frame.effectiveSelfCost = node->selfCost;
    if (node->kind != ActivityKind::Plain)
        frame.effectiveSelfCost += instrumentation_overhead_;
    frame.chunksLeft = node->children.size() + 1;
    frame.chunkSize = frame.effectiveSelfCost /
                      static_cast<DurationNs>(frame.chunksLeft);
    exec_.push_back(frame);
}

void
VThread::popNode(ExecContext &ctx)
{
    const ExecFrame top = exec_.back();
    const ActivityNode *node = top.node;
    for (const auto &event : node->postAtEnd)
        ctx.postGuiEvent(event);
    if (node->kind != ActivityKind::Plain)
        ctx.intervalEnd(id_, node->kind);
    if (top.monitorHeld)
        ctx.releaseMonitor(id_, node->monitorId);
    lag_assert(!stack_.empty() && stack_.size() > base_stack_.size(),
               "interpreter stack underflow on thread '", name_, "'");
    stack_.pop_back();
    exec_.pop_back();
    if (exec_.empty())
        task_.reset();
}

Need
VThread::advance(ExecContext &ctx)
{
    while (true) {
        if (exec_.empty())
            return Need{Need::Kind::TaskDone, 0, -1};

        ExecFrame &top = exec_.back();
        const ActivityNode *node = top.node;

        if (!top.entered) {
            top.entered = true;
            stack_.push_back(node->frame);
            if (node->kind != ActivityKind::Plain)
                ctx.intervalBegin(id_, node->kind, node->frame);
        }

        if (node->monitorId >= 0 && !top.monitorHeld) {
            if (!top.monitorRequested) {
                if (ctx.tryAcquireMonitor(id_, node->monitorId)) {
                    top.monitorHeld = true;
                } else {
                    top.monitorRequested = true;
                    return Need{Need::Kind::BlockedOnMonitor, 0,
                                node->monitorId};
                }
            } else {
                // Queued on the monitor; grantMonitor() flips
                // monitorHeld when the holder releases.
                return Need{Need::Kind::BlockedOnMonitor, 0,
                            node->monitorId};
            }
        }

        if (node->sleepNs > 0 && !top.sleepDone) {
            top.sleepDone = true;
            return Need{Need::Kind::Sleep, node->sleepNs, -1};
        }

        if (node->waitNs > 0 && !top.waitDone) {
            top.waitDone = true;
            return Need{Need::Kind::Wait, node->waitNs, -1};
        }

        if (node->explicitGc && !top.gcDone) {
            top.gcDone = true;
            return Need{Need::Kind::TriggerGc, 0, -1};
        }

        if (top.chunkRemaining > 0)
            return Need{Need::Kind::Cpu, top.chunkRemaining, -1};

        if (top.chunksLeft == 0 && top.nextChild >= node->children.size()) {
            popNode(ctx);
            continue;
        }

        if (!top.childPhase) {
            // Start the next self-cost chunk; the final chunk absorbs
            // the division remainder so chunks sum to selfCost.
            if (top.chunksLeft > 0) {
                DurationNs size = top.chunkSize;
                if (top.chunksLeft == 1) {
                    const auto others = static_cast<DurationNs>(
                        node->children.size());
                    size = top.effectiveSelfCost -
                           top.chunkSize * others;
                }
                --top.chunksLeft;
                top.childPhase = true;
                if (size > 0) {
                    top.chunkRemaining = size;
                    return Need{Need::Kind::Cpu, size, -1};
                }
            } else {
                top.childPhase = true;
            }
            continue;
        }

        // Child phase: descend into the next child if one remains.
        top.childPhase = false;
        if (top.nextChild < node->children.size()) {
            const ActivityNode *child = &node->children[top.nextChild];
            ++top.nextChild;
            pushNode(child);
        }
    }
}

std::uint64_t
VThread::consumeCpu(DurationNs ran)
{
    lag_assert(!exec_.empty(), "consumeCpu with no task on '", name_, "'");
    ExecFrame &top = exec_.back();
    lag_assert(ran >= 0 && ran <= top.chunkRemaining,
               "consumeCpu(", ran, ") exceeds chunk remainder ",
               top.chunkRemaining, " on '", name_, "'");
    top.chunkRemaining -= ran;
    const ActivityNode *node = top.node;
    if (node->allocBytes == 0 || top.effectiveSelfCost == 0)
        return 0;
    // Pro-rata allocation; integer rounding drops at most a few bytes
    // per chunk, which is noise against megabyte-scale volumes.
    return node->allocBytes * static_cast<std::uint64_t>(ran) /
           static_cast<std::uint64_t>(top.effectiveSelfCost);
}

void
VThread::grantMonitor(int monitor)
{
    lag_assert(!exec_.empty(), "grantMonitor with no task");
    ExecFrame &top = exec_.back();
    lag_assert(top.monitorRequested && !top.monitorHeld,
               "grantMonitor(", monitor, ") without pending request");
    lag_assert(top.node->monitorId == monitor,
               "grantMonitor id mismatch: ", monitor, " vs ",
               top.node->monitorId);
    top.monitorHeld = true;
}

void
VThread::completeTimedOp()
{
    // Sleep/wait completion is recorded eagerly in advance(); nothing
    // further to do. Kept as an explicit VM call site for symmetry
    // and as a hook for future wait/notify support.
}

} // namespace lag::jvm
