/**
 * @file
 * Simulated threads and the activity-tree interpreter.
 *
 * A VThread executes activity trees via an explicit interpreter
 * stack so that execution can be suspended at any point: preempted
 * at a slice boundary, interrupted by a GC safepoint request, parked
 * on a monitor, or put to sleep. The interpreter surfaces its next
 * requirement (CPU, sleep, wait, monitor, GC) as a Need; the VM's
 * scheduler satisfies Needs and feeds consumed CPU time back in.
 *
 * The thread's call stack (for the sampler) is maintained as frames
 * are entered and left, so a sample taken mid-burst observes the
 * correct stack.
 */

#ifndef LAG_JVM_THREAD_HH
#define LAG_JVM_THREAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "activity.hh"
#include "program.hh"
#include "sim/event_queue.hh"
#include "util/types.hh"

namespace lag::jvm
{

/** Scheduler-visible state of a simulated thread. */
enum class ThreadState : std::uint8_t
{
    New,        ///< created, not yet started
    Running,    ///< executing on a core
    Runnable,   ///< ready, waiting for a core
    Blocked,    ///< blocked entering a contended monitor
    Waiting,    ///< in Object.wait() / LockSupport.park() / idle
    Sleeping,   ///< in Thread.sleep()
    AtSafepoint,///< stopped for a garbage collection
    Terminated, ///< finished
};

/** Human-readable name of a thread state. */
const char *threadStateName(ThreadState state);

/**
 * Thread state as recorded in stack samples. Running and Runnable
 * collapse to Runnable, matching what a JVMTI-style sampler reports
 * and what the paper's Figures 7 and 8 are computed from.
 */
enum class SampleState : std::uint8_t
{
    Runnable = 0,
    Blocked = 1,
    Waiting = 2,
    Sleeping = 3,
};

/** Human-readable name of a sample state. */
const char *sampleStateName(SampleState state);

/** What the interpreter needs next in order to make progress. */
struct Need
{
    enum class Kind : std::uint8_t
    {
        Cpu,            ///< run for up to `amount` ns
        Sleep,          ///< Thread.sleep(amount)
        Wait,           ///< timed Object.wait/park (amount)
        BlockedOnMonitor,///< monitor acquisition failed; now queued
        TriggerGc,      ///< thread invoked System.gc()
        TaskDone,       ///< activity finished; ask the program
    };

    Kind kind = Kind::TaskDone;
    DurationNs amount = 0;
    int monitor = -1;
};

/**
 * Services the interpreter needs from the VM while advancing through
 * zero-time operations (frame pushes/pops fire trace hooks, monitor
 * handoff, GUI event posting). Implemented by Jvm; split out so the
 * interpreter is unit-testable without the full VM.
 */
class ExecContext
{
  public:
    virtual ~ExecContext() = default;

    /** Current simulated time. */
    virtual TimeNs execNow() const = 0;

    /**
     * Try to acquire @p monitor for @p thread. On failure the
     * context has queued the thread on the monitor and the caller
     * must surface Need::BlockedOnMonitor.
     */
    virtual bool tryAcquireMonitor(ThreadId thread, int monitor) = 0;

    /** Release @p monitor held by @p thread (may wake a waiter). */
    virtual void releaseMonitor(ThreadId thread, int monitor) = 0;

    /** Post an event to the GUI queue. */
    virtual void postGuiEvent(const GuiEvent &event) = 0;

    /** A non-Plain activity node was entered. */
    virtual void intervalBegin(ThreadId thread, ActivityKind kind,
                               const Frame &frame) = 0;

    /** The matching activity node was left. */
    virtual void intervalEnd(ThreadId thread, ActivityKind kind) = 0;
};

/** A simulated Java thread. */
class VThread
{
  public:
    /**
     * @param id        unique id within the VM
     * @param name      thread name (appears in traces)
     * @param is_gui    true for the event-dispatch thread
     * @param program   supplies tasks; owned jointly
     * @param base_stack frames below all activity frames (e.g.
     *                  java.lang.Thread.run), cosmetic but visible
     *                  in samples and sketches
     */
    VThread(ThreadId id, std::string name, bool is_gui,
            std::shared_ptr<ThreadProgram> program,
            std::vector<Frame> base_stack);

    /** Extra CPU charged per instrumented node (profiler
     * perturbation); set by the VM from its configuration. */
    void
    setInstrumentationOverhead(DurationNs overhead)
    {
        instrumentation_overhead_ = overhead;
    }

    ThreadId id() const { return id_; }
    const std::string &name() const { return name_; }
    bool isGui() const { return gui_; }

    ThreadState state() const { return state_; }
    void setState(ThreadState state) { state_ = state; }

    /** State as a sampler would report it. Thread must be live. */
    SampleState sampleState() const;

    /** True for New/Terminated (never sampled). */
    bool isLive() const;

    /** Current call stack, innermost frame last. */
    const std::vector<Frame> &stack() const { return stack_; }

    ThreadProgram &program() { return *program_; }

    /** Install a new task; interpreter restarts at its root. */
    void beginTask(std::shared_ptr<const ActivityNode> root);

    /** True when no task is installed or the task has completed. */
    bool taskDone() const { return exec_.empty(); }

    /**
     * Advance through zero-time operations until the interpreter
     * hits a time-consuming requirement or finishes the task.
     * Never consumes simulated time itself.
     */
    Need advance(ExecContext &ctx);

    /**
     * Account @p ran nanoseconds of CPU into the current chunk.
     * @p ran may be less than the chunk (preemption, safepoint).
     * @return bytes allocated during the elapsed time.
     */
    std::uint64_t consumeCpu(DurationNs ran);

    /** Called by the VM when a blocked monitor acquire is granted. */
    void grantMonitor(int monitor);

    /** Mark the pending sleep/wait of the current frame finished. */
    void completeTimedOp();

    /**
     * Scheduler bookkeeping: these fields are owned by the VM's
     * scheduling logic; VThread just stores them.
     * @{
     */
    int coreIndex = -1;               ///< core we occupy, -1 if none
    sim::EventId burstEvent = 0;       ///< pending burst-end event
    TimeNs burstStart = kNoTime;       ///< when the burst began
    TimeNs sliceEnd = kNoTime;         ///< when the current slice ends
    sim::EventId wakeEvent = 0;        ///< pending sleep/wait wakeup
    bool episodeOpen = false;          ///< dispatch interval in flight
    bool idleParked = false;           ///< parked waiting for GUI events
    /** @} */

  private:
    /** Interpreter frame for one activity node. */
    struct ExecFrame
    {
        const ActivityNode *node;
        std::size_t nextChild = 0;
        /** Self cost plus instrumentation overhead. */
        DurationNs effectiveSelfCost = 0;
        /** Chunks of self cost still to run (k children => k+1). */
        std::size_t chunksLeft = 0;
        DurationNs chunkSize = 0;
        DurationNs chunkRemaining = 0;
        bool entered = false;
        bool monitorHeld = false;
        bool monitorRequested = false;
        bool sleepDone = false;
        bool waitDone = false;
        bool gcDone = false;
        bool childPhase = false; ///< run a child next (else a chunk)
    };

    /** Begin the next chunk or child for the top frame. */
    Need stepTop(ExecContext &ctx);

    /** Push an interpreter frame for @p node. */
    void pushNode(const ActivityNode *node);

    /** Finish the top node: hooks, monitor release, posts, pop. */
    void popNode(ExecContext &ctx);

    ThreadId id_;
    std::string name_;
    bool gui_;
    ThreadState state_ = ThreadState::New;
    std::shared_ptr<ThreadProgram> program_;
    std::vector<Frame> base_stack_;
    std::vector<Frame> stack_;
    std::vector<ExecFrame> exec_;
    std::shared_ptr<const ActivityNode> task_;
    DurationNs instrumentation_overhead_ = 0;
};

} // namespace lag::jvm

#endif // LAG_JVM_THREAD_HH
