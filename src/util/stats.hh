/**
 * @file
 * Descriptive statistics used by the analyses and benches.
 */

#ifndef LAG_UTIL_STATS_HH
#define LAG_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace lag
{

/**
 * Streaming accumulator for count / min / max / mean / variance.
 * Uses Welford's algorithm so that variance is numerically stable for
 * long streams of episode durations.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Number of observations. */
    std::size_t count() const { return count_; }

    /** Sum of observations. */
    double sum() const { return sum_; }

    /** Smallest observation, or +inf when empty. */
    double min() const { return min_; }

    /** Largest observation, or -inf when empty. */
    double max() const { return max_; }

    /** Arithmetic mean, or 0 when empty. */
    double mean() const;

    /** Population variance, or 0 with fewer than two observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Compute the q-quantile (0 <= q <= 1) of @p values with linear
 * interpolation between order statistics. @p values is copied; the
 * input is left untouched.
 */
double quantile(std::vector<double> values, double q);

/**
 * Fixed-bin histogram over a closed range; out-of-range observations
 * are clamped into the edge bins. Used by workload diagnostics.
 */
class Histogram
{
  public:
    /** Create @p bins equal-width bins spanning [lo, hi]. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    /** Count in bin @p index. */
    std::uint64_t binCount(std::size_t index) const;

    /** Lower edge of bin @p index. */
    double binLow(std::size_t index) const;

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Total observations recorded. */
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace lag

#endif // LAG_UTIL_STATS_HH
