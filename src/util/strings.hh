/**
 * @file
 * Small string helpers shared across modules.
 */

#ifndef LAG_UTIL_STRINGS_HH
#define LAG_UTIL_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace lag
{

/** True when @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True when @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Split @p s on @p sep; keeps empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Format @p value with @p decimals fraction digits (locale-free). */
std::string formatDouble(double value, int decimals);

/** Format a nanosecond duration as a human-readable "123.4 ms". */
std::string formatDurationNs(std::int64_t ns);

/** Render @p fraction (0..1) as a percentage string like "42.0%". */
std::string formatPercent(double fraction, int decimals = 1);

/** Thousands-separated integer rendering: 1234567 -> "1'234'567". */
std::string formatCount(std::uint64_t value);

/** Escape &, <, >, and quotes for embedding in XML/SVG text. */
std::string xmlEscape(std::string_view s);

} // namespace lag

#endif // LAG_UTIL_STRINGS_HH
