#include "mutex.hh"

#include <cstdio>
#include <cstdlib>

#include "shutdown.hh"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define LAG_HAVE_BACKTRACE 1
#endif
#endif

namespace lag::detail
{

namespace
{

constexpr int kMaxFrames = 32;
constexpr int kMaxHeld = 32;

/** One acquisition record: which mutex, and from where. */
struct HeldLock
{
    const Mutex *mutex;
#ifdef LAG_HAVE_BACKTRACE
    void *frames[kMaxFrames];
    int frameCount;
#endif
};

/** The calling thread's currently-held locks, acquisition order. */
struct HeldStack
{
    HeldLock locks[kMaxHeld];
    int depth = 0;
};

thread_local HeldStack t_held;

void
printStack(const char *banner, void *const *frames, int count)
{
    std::fprintf(stderr, "%s\n", banner);
#ifdef LAG_HAVE_BACKTRACE
    if (count > 0)
        backtrace_symbols_fd(frames, count, 2);
    else
        std::fprintf(stderr, "  (no frames captured)\n");
#else
    (void)frames;
    (void)count;
    std::fprintf(stderr, "  (backtrace unavailable on this libc)\n");
#endif
}

[[noreturn]] void
reportViolation(const Mutex &acquiring, const HeldLock &held)
{
    // Direct stderr + abort, not lag_panic: a lock-order bug is a
    // latent deadlock, and a catchable exception could unwind past
    // the corrupted lock state and hang later instead of here.
    std::fprintf(stderr,
                 "lag: lock rank violation: acquiring '%s' (rank %d) "
                 "while holding '%s' (rank %d); acquisition order "
                 "must be strictly descending\n",
                 acquiring.name(), static_cast<int>(acquiring.rank()),
                 held.mutex->name(),
                 static_cast<int>(held.mutex->rank()));

#ifdef LAG_HAVE_BACKTRACE
    void *now[kMaxFrames];
    const int now_count = backtrace(now, kMaxFrames);
    printStack("--- stack acquiring the out-of-rank lock:", now,
               now_count);
    printStack("--- stack that acquired the held lock:", held.frames,
               held.frameCount);
#else
    printStack("--- stacks unavailable:", nullptr, 0);
#endif
    // Mutex names are static strings, so the crash dump the abort
    // triggers (see installFatalSignalDumper) can name the pair.
    noteFatal("lock-rank-violation", acquiring.name(),
              held.mutex->name());
    std::abort();
}

} // namespace

void
lockRankAcquired(const Mutex &mutex)
{
    HeldStack &held = t_held;
    if (held.depth > 0) {
        const HeldLock &innermost = held.locks[held.depth - 1];
        if (static_cast<int>(mutex.rank()) >=
            static_cast<int>(innermost.mutex->rank()))
            reportViolation(mutex, innermost);
    }
    if (held.depth >= kMaxHeld) {
        std::fprintf(stderr,
                     "lag: lock rank checker overflow (%d locks held "
                     "by one thread)\n",
                     held.depth);
        std::abort();
    }
    HeldLock &slot = held.locks[held.depth];
    slot.mutex = &mutex;
#ifdef LAG_HAVE_BACKTRACE
    slot.frameCount = backtrace(slot.frames, kMaxFrames);
#endif
    ++held.depth;
}

void
lockRankReleased(const Mutex &mutex)
{
    HeldStack &held = t_held;
    // Scan from the innermost lock out: releases are almost always
    // LIFO, but unique-lock style code may interleave.
    for (int i = held.depth - 1; i >= 0; --i) {
        if (held.locks[i].mutex != &mutex)
            continue;
        for (int j = i; j + 1 < held.depth; ++j)
            held.locks[j] = held.locks[j + 1];
        --held.depth;
        return;
    }
    std::fprintf(stderr,
                 "lag: lock rank checker: released '%s' which this "
                 "thread does not hold\n",
                 mutex.name());
    std::abort();
}

int
lockRankHeldDepth()
{
    return t_held.depth;
}

} // namespace lag::detail
