/**
 * @file
 * Error reporting and status messages.
 *
 * Follows the gem5 convention: @c panic() for internal invariant
 * violations (a LagAlyzer bug), @c fatal() for user errors that make
 * continuing impossible (bad trace file, invalid configuration), and
 * @c warn() / @c inform() for status output that never terminates.
 *
 * Every line is formatted as
 * `[<level> <thread-name> +<elapsed-ms>ms] <message>` — the elapsed
 * clock and thread names are the same ones the observability layer
 * stamps into `--self-trace` spans (util/thread_name.hh), so a log
 * line can be located on the Chrome-trace timeline directly. Lines
 * are rendered away from the sink lock and written with a single
 * stdio call so concurrent engine workers never interleave
 * fragments.
 */

#ifndef LAG_UTIL_LOGGING_HH
#define LAG_UTIL_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <string>

namespace lag
{

/** Severity attached to a log line. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global verbosity control. Messages below the threshold are dropped.
 * Defaults to LogLevel::Info.
 */
void setLogThreshold(LogLevel level);

/** Current verbosity threshold. */
LogLevel logThreshold();

/**
 * Redirect log output to @p sink (default stderr); pass nullptr to
 * restore stderr. Returns the previous sink. The sink is guarded by
 * the logging mutex, so engine workers logging concurrently never
 * interleave with a redirect.
 */
std::FILE *setLogSink(std::FILE *sink);

namespace detail
{

/** Emit a formatted line to stderr if @p level passes the threshold. */
void emitLog(LogLevel level, const std::string &msg);

/** Throwing terminator used by panic(); never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit-with-error terminator used by fatal(); never returns. */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal bug and abort. Use for "cannot happen" states. */
#define lag_panic(...)                                                    \
    ::lag::detail::panicImpl(__FILE__, __LINE__,                          \
                             ::lag::detail::concat(__VA_ARGS__))

/**
 * Abort the condition check if @p cond is false.
 * Cheap enough to keep enabled in release builds; invariants in this
 * code base guard analysis correctness, not inner loops.
 */
#define lag_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::lag::detail::panicImpl(__FILE__, __LINE__,                  \
                ::lag::detail::concat("assertion '" #cond "' failed: ",   \
                                      __VA_ARGS__));                      \
        }                                                                 \
    } while (0)

/** Report a user-caused error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning about suspicious but tolerable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Normal operating status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Info,
                    detail::concat(std::forward<Args>(args)...));
}

/** Developer-facing debug message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emitLog(LogLevel::Debug,
                    detail::concat(std::forward<Args>(args)...));
}

/**
 * Exception thrown by panic() so that unit tests can observe invariant
 * violations without killing the test binary.
 */
class PanicError : public std::exception
{
  public:
    explicit PanicError(std::string msg) : message_(std::move(msg)) {}

    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

} // namespace lag

#endif // LAG_UTIL_LOGGING_HH
