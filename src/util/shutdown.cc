#include "shutdown.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "logging.hh"
#include "mutex.hh"

namespace lag
{

namespace
{

/** Self-pipe: [0] is polled, [1] is written from the handler. */
int g_pipe[2] = {-1, -1};

std::atomic<int> g_signal{0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_callbacksRan{false};

std::atomic<void (*)(int)> g_fatalDumper{nullptr};
std::atomic<bool> g_fatalInstalled{false};

std::atomic<const char *> g_fatalWhat{nullptr};
std::atomic<const char *> g_fatalDetailA{nullptr};
std::atomic<const char *> g_fatalDetailB{nullptr};

Mutex &
callbackMutex()
{
    static Mutex mutex(LockRank::Client, "shutdown-callbacks");
    return mutex;
}

std::vector<std::function<void()>> &
callbacks()
{
    static std::vector<std::function<void()>> list;
    return list;
}

extern "C" void
handleShutdownSignal(int sig)
{
    // Async-signal-safe on purpose: store + one write(), nothing
    // else. Everything heavier runs on ordinary threads.
    int expected = 0;
    g_signal.compare_exchange_strong(expected, sig);
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = write(g_pipe[1], &byte, 1);
}

extern "C" void
handleFatalSignal(int sig)
{
    // Run the dumper (async-signal-safe by contract), then fall
    // back to the default disposition so the process still dies
    // with the original signal — wait status and core behavior
    // stay exactly as without the dumper.
    if (void (*fn)(int) =
            g_fatalDumper.load(std::memory_order_acquire))
        fn(sig);
    signal(sig, SIG_DFL);
    raise(sig);
}

} // namespace

void
installShutdownHandler(ShutdownMode mode)
{
    bool expected = false;
    if (!g_installed.compare_exchange_strong(expected, true))
        return; // first caller fixed the mode

    if (pipe(g_pipe) != 0) {
        warn("shutdown: cannot create self-pipe; ^C will not flush");
        g_pipe[0] = g_pipe[1] = -1;
        return;
    }

    struct sigaction action = {};
    action.sa_handler = handleShutdownSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // interrupt blocking syscalls on purpose
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    if (mode == ShutdownMode::FlushAndExit) {
        std::thread([] {
            char byte = 0;
            while (read(g_pipe[0], &byte, 1) < 0) {
                // EINTR: another signal landed while we waited.
            }
            runShutdownCallbacks();
            std::_Exit(128 + g_signal.load());
        }).detach();
    }
}

void
installFatalSignalDumper(void (*fn)(int sig))
{
    g_fatalDumper.store(fn, std::memory_order_release);
    bool expected = false;
    if (!g_fatalInstalled.compare_exchange_strong(expected, true))
        return;
    struct sigaction action = {};
    action.sa_handler = handleFatalSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGABRT, &action, nullptr);
    sigaction(SIGSEGV, &action, nullptr);
    sigaction(SIGBUS, &action, nullptr);
    sigaction(SIGFPE, &action, nullptr);
    sigaction(SIGILL, &action, nullptr);
}

void
noteFatal(const char *what, const char *detailA,
          const char *detailB)
{
    g_fatalDetailA.store(detailA, std::memory_order_relaxed);
    g_fatalDetailB.store(detailB, std::memory_order_relaxed);
    // `what` last, with release: a handler that sees it non-null
    // also sees the details.
    g_fatalWhat.store(what, std::memory_order_release);
}

FatalNote
fatalNote()
{
    FatalNote note;
    note.what = g_fatalWhat.load(std::memory_order_acquire);
    note.detailA = g_fatalDetailA.load(std::memory_order_relaxed);
    note.detailB = g_fatalDetailB.load(std::memory_order_relaxed);
    return note;
}

bool
shutdownRequested()
{
    return g_signal.load() != 0;
}

int
shutdownPollFd()
{
    return g_pipe[0];
}

int
shutdownSignal()
{
    return g_signal.load();
}

void
onShutdown(std::function<void()> fn)
{
    MutexLock lock(callbackMutex());
    callbacks().push_back(std::move(fn));
}

void
runShutdownCallbacks()
{
    bool expected = false;
    if (!g_callbacksRan.compare_exchange_strong(expected, true))
        return;
    // Copy out so callbacks (which may log or register more state)
    // never run under the list lock.
    std::vector<std::function<void()>> list;
    {
        MutexLock lock(callbackMutex());
        list = callbacks();
    }
    for (const auto &fn : list)
        fn();
}

} // namespace lag
