#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "mutex.hh"
#include "thread_annotations.hh"
#include "thread_name.hh"

namespace lag
{

namespace
{

/** Atomic so engine workers can cheaply drop filtered messages
 * without touching the sink mutex. */
std::atomic<LogLevel> g_threshold{LogLevel::Info};

/** Leaf-rank mutex: any code may log while holding any other lock
 * (panic paths inside the engine do exactly that). */
Mutex g_sinkMutex{LockRank::Logging, "log-sink"};

/** Output stream; nullptr means stderr. Guarded so a test
 * redirecting the sink can never tear a concurrent worker's line. */
std::FILE *g_sink LAG_GUARDED_BY(g_sinkMutex) = nullptr;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

std::FILE *
setLogSink(std::FILE *sink)
{
    MutexLock lock(g_sinkMutex);
    std::FILE *previous = g_sink;
    g_sink = sink;
    return previous;
}

namespace detail
{

void
emitLog(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logThreshold()))
        return;
    // Format the whole line outside the sink lock, then emit it
    // with ONE stdio call: engine workers logging under --jobs can
    // then never interleave fragments, even if a future sink is
    // only line-buffered.
    const double elapsed_ms =
        static_cast<double>(processElapsedNs()) / 1e6;
    char prefix[96];
    std::snprintf(prefix, sizeof(prefix), "[%s %s +%.1fms] ",
                  levelName(level), currentThreadName().c_str(),
                  elapsed_ms);
    std::string line(prefix);
    line += msg;
    line += '\n';
    MutexLock lock(g_sinkMutex);
    std::FILE *out = g_sink != nullptr ? g_sink : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("panic: ") + msg + " (" + file + ":" +
                       std::to_string(line) + ")";
    emitLog(LogLevel::Error, full);
    throw PanicError(full);
}

void
fatalImpl(const std::string &msg)
{
    emitLog(LogLevel::Error, "fatal: " + msg);
    std::exit(1);
}

} // namespace detail

} // namespace lag
