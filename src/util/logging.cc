#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lag
{

namespace
{

/** Atomic so engine workers can log while another thread adjusts
 * verbosity; each message is a single locked fprintf. */
std::atomic<LogLevel> g_threshold{LogLevel::Info};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

namespace detail
{

void
emitLog(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logThreshold()))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("panic: ") + msg + " (" + file + ":" +
                       std::to_string(line) + ")";
    emitLog(LogLevel::Error, full);
    throw PanicError(full);
}

void
fatalImpl(const std::string &msg)
{
    emitLog(LogLevel::Error, "fatal: " + msg);
    std::exit(1);
}

} // namespace detail

} // namespace lag
