/**
 * @file
 * Annotated mutex wrapper with a runtime lock-rank checker.
 *
 * Every mutex in LagAlyzer goes through lag::Mutex instead of the
 * raw standard-library types (lag-lint rule `raw-mutex` enforces
 * this). The wrapper buys two machine-checked properties:
 *
 *  - **Static**: lag::Mutex is a clang thread-safety capability and
 *    lag::MutexLock a scoped capability, so members declared
 *    LAG_GUARDED_BY(mu) are compile-checked under
 *    `-Wthread-safety -Werror` (the LAG_STATIC_ANALYSIS build).
 *
 *  - **Dynamic**: each mutex carries a LockRank. A thread may only
 *    acquire a mutex whose rank is *strictly lower* than every rank
 *    it already holds, which makes lock-order deadlock cycles
 *    unrepresentable at runtime. An out-of-rank acquisition prints
 *    the stack that acquired the held lock *and* the acquiring
 *    stack, then aborts. The checker is on in every build (the
 *    engine schedules session-sized tasks, so the bookkeeping is
 *    noise); define LAG_NO_LOCK_RANK to compile it out.
 *
 * Condition variables: use std::condition_variable_any with a
 * lag::MutexLock (it is a BasicLockable); see engine/pool.cc for
 * the idiom. The rank bookkeeping stays correct across a wait
 * because the condition variable releases and reacquires through
 * MutexLock::unlock()/lock().
 */

#ifndef LAG_UTIL_MUTEX_HH
#define LAG_UTIL_MUTEX_HH

#include <mutex> // lag-lint: allow(raw-mutex) — the one wrapping site

#include "thread_annotations.hh"

namespace lag
{

/**
 * Global lock order, one rank per mutex role. Acquisition must be
 * strictly descending per thread: while holding a rank-r lock, only
 * locks with rank < r may be taken. Two locks of the same rank can
 * therefore never be held together (which is why each worker deque
 * shares kPoolWorker: stealing must never nest two deque locks).
 *
 * Keep this the single registry of ranks; a new mutex gets a new
 * named rank here, slotted into the documented order.
 */
enum class LockRank : int
{
    /** Serve-layer hot state (serve::HotStore, HttpServer
     * bookkeeping): held while whole engine aggregations run
     * underneath, so it sits above every other rank. */
    Serve = 1100,

    /** Ad-hoc client/test state built on top of the engine. */
    Client = 1000,

    /** IngestPipeline source/status bookkeeping (engine/ingest).
     * Above the pool ranks because an epoch polls tailers under it
     * before fanning analysis out to the pool; below Serve because
     * publish callbacks into serve::HotStore run with no ingest
     * lock held at all (the pipeline drops it before publishing). */
    Ingest = 700,

    /** TaskGraph node bookkeeping (engine/graph). */
    TaskGraph = 500,

    /** StudyDriver progress accounting (engine/study_driver). */
    StudyProgress = 450,

    /** ResultCache statistics (engine/result_cache). */
    ResultCache = 400,

    /** Simulation-kernel global counters (sim/event_queue). */
    SimStats = 300,

    /** ThreadPool idle/error accounting (engine/pool). */
    PoolIdle = 200,

    /** One worker's deque (engine/pool); shared by all workers so
     * two deques can never be locked at once. */
    PoolWorker = 120,

    /** ThreadPool injector queue + shutdown flag (engine/pool). */
    PoolInjector = 110,

    /**
     * Observability bookkeeping (src/obs): span-buffer registry,
     * metric registry, name-intern table. Below every engine rank
     * because instrumented code may register a metric or a span
     * buffer while holding pool locks; span *recording* itself is
     * lock-free and takes no rank at all.
     */
    Obs = 50,

    /** Log sink; leaf rank so any code may log while holding any
     * other lock (panic paths do). */
    Logging = 10,
};

/** Mutex with a thread-safety capability and a lock rank. */
class LAG_CAPABILITY("mutex") Mutex
{
  public:
    /** @param rank this mutex's slot in the global lock order;
     *  @param name human-readable name used in violation reports. */
    explicit Mutex(LockRank rank, const char *name)
        : rank_(rank), name_(name)
    {
    }

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LAG_ACQUIRE();
    void unlock() LAG_RELEASE();
    bool try_lock() LAG_TRY_ACQUIRE(true);

    LockRank rank() const { return rank_; }
    const char *name() const { return name_; }

  private:
    std::mutex impl_; // lag-lint: allow(raw-mutex)
    LockRank rank_;
    const char *name_;
};

/**
 * RAII lock for lag::Mutex. Also a BasicLockable, so it can be
 * handed to std::condition_variable_any::wait().
 */
class LAG_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) LAG_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
        owned_ = true;
    }

    ~MutexLock() LAG_RELEASE()
    {
        if (owned_)
            mutex_.unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Reacquire after unlock() (condition-variable protocol). */
    void lock() LAG_ACQUIRE()
    {
        mutex_.lock();
        owned_ = true;
    }

    /** Release early; the destructor then does nothing. */
    void unlock() LAG_RELEASE()
    {
        owned_ = false;
        mutex_.unlock();
    }

  private:
    Mutex &mutex_;
    bool owned_ = false;
};

namespace detail
{

/** Rank bookkeeping behind Mutex::lock(); aborts on violation. */
void lockRankAcquired(const Mutex &mutex);

/** Pops @p mutex from the thread's held set. */
void lockRankReleased(const Mutex &mutex);

/** Number of locks the calling thread currently holds (tests). */
int lockRankHeldDepth();

} // namespace detail

inline void
Mutex::lock()
{
#ifndef LAG_NO_LOCK_RANK
    detail::lockRankAcquired(*this);
#endif
    impl_.lock();
}

inline void
Mutex::unlock()
{
    impl_.unlock();
#ifndef LAG_NO_LOCK_RANK
    detail::lockRankReleased(*this);
#endif
}

inline bool
Mutex::try_lock()
{
    if (!impl_.try_lock())
        return false;
#ifndef LAG_NO_LOCK_RANK
    detail::lockRankAcquired(*this);
#endif
    return true;
}

} // namespace lag

#endif // LAG_UTIL_MUTEX_HH
