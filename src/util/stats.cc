#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace lag
{

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
quantile(std::vector<double> values, double q)
{
    lag_assert(!values.empty(), "quantile of empty vector");
    lag_assert(q >= 0.0 && q <= 1.0, "quantile q out of range: ", q);
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto below = static_cast<std::size_t>(pos);
    const std::size_t above = std::min(below + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(below);
    return values[below] * (1.0 - frac) + values[above] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    lag_assert(bins > 0, "histogram needs at least one bin");
    lag_assert(hi > lo, "histogram range inverted");
}

void
Histogram::add(double x)
{
    auto idx = static_cast<std::int64_t>((x - lo_) / width_);
    idx = std::clamp<std::int64_t>(
        idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

std::uint64_t
Histogram::binCount(std::size_t index) const
{
    lag_assert(index < counts_.size(), "histogram bin out of range");
    return counts_[index];
}

double
Histogram::binLow(std::size_t index) const
{
    lag_assert(index < counts_.size(), "histogram bin out of range");
    return lo_ + width_ * static_cast<double>(index);
}

} // namespace lag
