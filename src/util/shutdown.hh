/**
 * @file
 * Unified SIGINT/SIGTERM handling for daemons and batch harnesses.
 *
 * Two kinds of process share this machinery. A *batch* harness
 * (bench, example) wants its exporters flushed before dying on ^C
 * instead of leaving a half-written `--metrics-out` file: it (or
 * obs::install on its behalf) arms FlushAndExit mode, and a watcher
 * thread runs the registered callbacks on the first signal and
 * exits with the conventional 128+signo status. A *daemon* (`lagd`)
 * wants to keep control: it arms Graceful mode, polls
 * shutdownPollFd() / shutdownRequested() from its own loop, drains
 * in-flight work, and runs the callbacks itself on the way out.
 *
 * The first installShutdownHandler() call fixes the mode for the
 * process; later calls (e.g. obs::install defaulting to
 * FlushAndExit after a daemon already chose Graceful) are no-ops,
 * so a daemon simply arms Graceful before installing exporters.
 *
 * The handler itself only stores the signal number and writes one
 * byte to a self-pipe — strictly async-signal-safe; everything else
 * happens on ordinary threads.
 */

#ifndef LAG_UTIL_SHUTDOWN_HH
#define LAG_UTIL_SHUTDOWN_HH

#include <functional>

namespace lag
{

/** What happens after a shutdown signal arrives. */
enum class ShutdownMode
{
    /** Main polls shutdownRequested()/shutdownPollFd() and drains
     * on its own; callbacks run when it calls
     * runShutdownCallbacks(). */
    Graceful,

    /** A watcher thread runs the callbacks on the first signal and
     * then _Exits with 128+signo — the batch-harness default. */
    FlushAndExit,
};

/**
 * Arm SIGINT/SIGTERM capture (idempotent; the first call fixes
 * @p mode). Safe to call from any thread before signals are
 * expected.
 */
void installShutdownHandler(ShutdownMode mode);

/** True once a SIGINT or SIGTERM was caught. */
bool shutdownRequested();

/**
 * A file descriptor that becomes readable on the first caught
 * signal — poll it alongside listen sockets to wake an accept or
 * event loop. -1 until installShutdownHandler() ran.
 */
int shutdownPollFd();

/** The caught signal number, 0 while none arrived. */
int shutdownSignal();

/**
 * Register @p fn to run at shutdown (exporter flushes, cache
 * syncs). In FlushAndExit mode the watcher runs the callbacks; in
 * Graceful mode the owner calls runShutdownCallbacks() itself.
 * Callbacks run in registration order, outside any lock.
 */
void onShutdown(std::function<void()> fn);

/** Run the registered callbacks once (idempotent). */
void runShutdownCallbacks();

/**
 * Route fatal signals (SIGABRT/SIGSEGV/SIGBUS/SIGFPE/SIGILL)
 * through @p fn before the default disposition re-raises and kills
 * the process. @p fn runs inside the signal handler and must be
 * async-signal-safe — the flight recorder's crash dump is the
 * intended customer. One dumper per process; later calls replace
 * the function but never re-register the handlers.
 */
void installFatalSignalDumper(void (*fn)(int sig));

/**
 * Leave a last-words marker for the crash dump: what went fatally
 * wrong, with up to two detail strings. All pointers must have
 * static (or leaked) lifetime — the values are read from signal
 * handlers. Called by abort paths that know why they are aborting
 * (the lock-rank checker, lag_assert wrappers) just before the
 * abort, so the .flightrec dump names the cause.
 */
void noteFatal(const char *what, const char *detailA = nullptr,
               const char *detailB = nullptr);

/** The recorded last words; .what == nullptr when none. */
struct FatalNote
{
    const char *what = nullptr;
    const char *detailA = nullptr;
    const char *detailB = nullptr;
};

/** Read the marker (async-signal-safe: three atomic loads). */
FatalNote fatalNote();

} // namespace lag

#endif // LAG_UTIL_SHUTDOWN_HH
