/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything random in a LagAlyzer study flows from one 64-bit seed so
 * that every session, trace and analysis result is exactly
 * reproducible. The generator is xoshiro256** seeded via SplitMix64;
 * both are implemented here rather than taken from <random> because
 * libstdc++ distributions are not portable bit-for-bit across
 * implementations, and reproducibility across machines is a design
 * requirement (DESIGN.md §4).
 */

#ifndef LAG_UTIL_RANDOM_HH
#define LAG_UTIL_RANDOM_HH

#include <cstdint>

#include "types.hh"

namespace lag
{

/**
 * SplitMix64 stream; used to expand a single seed into generator
 * state and to derive independent child seeds.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value in the stream. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** generator with convenience draws for the distributions
 * the application models need.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed);

    /** Uniform 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

    /** Standard normal via Box-Muller (polar form). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Lognormal draw parameterized by the distribution's own
     * median and a multiplicative spread sigma (log-space stddev).
     * Handler costs in the application models use this shape: most
     * draws near the median with a heavy upper tail, which is what
     * produces the paper's few-perceptible-among-many-short episode
     * mix.
     */
    double logNormal(double median, double sigma);

    /** Exponential draw with the given mean. */
    double exponential(double mean);

    /**
     * Bounded Pareto draw on [lo, hi] with tail index alpha.
     * Used for think-time bursts and pathological handler tails.
     */
    double paretoBounded(double lo, double hi, double alpha);

    /** Poisson draw (Knuth for small means, normal approx above 64). */
    int poisson(double mean);

    /**
     * Duration draw: lognormal around @p median_ns clamped to
     * [@p lo_ns, @p hi_ns]. The workhorse for activity self-costs.
     */
    DurationNs duration(DurationNs median_ns, double sigma,
                        DurationNs lo_ns, DurationNs hi_ns);

    /** Derive an independent child seed (for per-thread generators). */
    std::uint64_t fork();

  private:
    static std::uint64_t rotl(std::uint64_t x, int k);

    std::uint64_t s_[4];
};

} // namespace lag

#endif // LAG_UTIL_RANDOM_HH
