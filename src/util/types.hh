/**
 * @file
 * Fundamental types shared across the LagAlyzer code base.
 *
 * All simulated and traced time is virtual time expressed in
 * nanoseconds since the start of a session, held in a signed 64-bit
 * integer. Helper constants and conversion functions keep call sites
 * readable (e.g. @c msToNs(100) for the perceptibility threshold).
 */

#ifndef LAG_UTIL_TYPES_HH
#define LAG_UTIL_TYPES_HH

#include <cstdint>

namespace lag
{

/** Virtual time in nanoseconds since session start. */
using TimeNs = std::int64_t;

/** Duration in nanoseconds. Same representation as TimeNs. */
using DurationNs = std::int64_t;

/** Identifier of a simulated thread within one session. */
using ThreadId = std::uint32_t;

/** Index into a trace string table. */
using SymbolId = std::uint32_t;

/** Sentinel for "no time recorded yet". */
constexpr TimeNs kNoTime = -1;

/** One microsecond in nanoseconds. */
constexpr DurationNs kMicrosecond = 1'000;

/** One millisecond in nanoseconds. */
constexpr DurationNs kMillisecond = 1'000'000;

/** One second in nanoseconds. */
constexpr DurationNs kSecond = 1'000'000'000;

/** Convert whole microseconds to nanoseconds. */
constexpr DurationNs
usToNs(std::int64_t us)
{
    return us * kMicrosecond;
}

/** Convert whole milliseconds to nanoseconds. */
constexpr DurationNs
msToNs(std::int64_t ms)
{
    return ms * kMillisecond;
}

/** Convert whole seconds to nanoseconds. */
constexpr DurationNs
secToNs(std::int64_t sec)
{
    return sec * kSecond;
}

/** Convert nanoseconds to fractional milliseconds. */
constexpr double
nsToMs(DurationNs ns)
{
    return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

/** Convert nanoseconds to fractional seconds. */
constexpr double
nsToSec(DurationNs ns)
{
    return static_cast<double>(ns) / static_cast<double>(kSecond);
}

} // namespace lag

#endif // LAG_UTIL_TYPES_HH
