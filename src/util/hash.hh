/**
 * @file
 * Stable 64-bit hashing for pattern signatures and cache keys.
 *
 * std::hash is implementation-defined; pattern keys and trace-cache
 * keys must be stable across compilers and runs, so FNV-1a is
 * implemented explicitly.
 */

#ifndef LAG_UTIL_HASH_HH
#define LAG_UTIL_HASH_HH

#include <cstdint>
#include <string_view>

namespace lag
{

/** Incremental FNV-1a 64-bit hasher. */
class Fnv1aHasher
{
  public:
    /** Fold raw bytes into the hash state. */
    void
    addBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= kPrime;
        }
    }

    /** Fold a string (including a terminator byte as separator). */
    void
    addString(std::string_view s)
    {
        addBytes(s.data(), s.size());
        const unsigned char sep = 0xff;
        addBytes(&sep, 1);
    }

    /** Fold an integral value (little-endian byte order). */
    template <typename T>
    void
    addValue(T value)
    {
        addBytes(&value, sizeof(value));
    }

    /** Current digest. */
    std::uint64_t digest() const { return hash_; }

  private:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    std::uint64_t hash_ = kOffset;
};

/** One-shot hash of a string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    Fnv1aHasher h;
    h.addBytes(s.data(), s.size());
    return h.digest();
}

} // namespace lag

#endif // LAG_UTIL_HASH_HH
