/**
 * @file
 * Stable 64-bit hashing for pattern signatures and cache keys.
 *
 * std::hash is implementation-defined; pattern keys and trace-cache
 * keys must be stable across compilers and runs, so FNV-1a is
 * implemented explicitly.
 */

#ifndef LAG_UTIL_HASH_HH
#define LAG_UTIL_HASH_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace lag
{

/** Incremental FNV-1a 64-bit hasher. */
class Fnv1aHasher
{
  public:
    /**
     * Fold raw bytes into the hash state.
     *
     * FNV-1a is serial per byte (the multiply does not distribute
     * over the xor), so the digest cannot be block-parallelized —
     * but the *loads* can: on little-endian targets the main loop
     * reads one 64-bit word per iteration and folds its eight bytes
     * from a register, replacing eight 1-byte loads with one load
     * plus shifts. Bit-identical to the byte loop on every input;
     * tests/util_hash_test.cc proves it for all lengths 0–64 and
     * all chunkings.
     */
    void
    addBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        std::size_t i = 0;
        if constexpr (std::endian::native == std::endian::little) {
            std::uint64_t h = hash_;
            for (; i + 8 <= size; i += 8) {
                std::uint64_t word;
                std::memcpy(&word, bytes + i, 8);
                h = (h ^ (word & 0xff)) * kPrime;
                h = (h ^ ((word >> 8) & 0xff)) * kPrime;
                h = (h ^ ((word >> 16) & 0xff)) * kPrime;
                h = (h ^ ((word >> 24) & 0xff)) * kPrime;
                h = (h ^ ((word >> 32) & 0xff)) * kPrime;
                h = (h ^ ((word >> 40) & 0xff)) * kPrime;
                h = (h ^ ((word >> 48) & 0xff)) * kPrime;
                h = (h ^ (word >> 56)) * kPrime;
            }
            hash_ = h;
        }
        // Tail (and the whole input on big-endian targets).
        for (; i < size; ++i) {
            hash_ ^= bytes[i]; // lag-lint: allow(byte-hash-loop)
            hash_ *= kPrime;
        }
    }

    /** Fold a string (including a terminator byte as separator). */
    void
    addString(std::string_view s)
    {
        addBytes(s.data(), s.size());
        const unsigned char sep = 0xff;
        addBytes(&sep, 1);
    }

    /** Fold an integral value (little-endian byte order). */
    template <typename T>
    void
    addValue(T value)
    {
        addBytes(&value, sizeof(value));
    }

    /** Current digest. */
    std::uint64_t digest() const { return hash_; }

  private:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    std::uint64_t hash_ = kOffset;
};

/** One-shot hash of a string. */
inline std::uint64_t
fnv1a(std::string_view s)
{
    Fnv1aHasher h;
    h.addBytes(s.data(), s.size());
    return h.digest();
}

} // namespace lag

#endif // LAG_UTIL_HASH_HH
