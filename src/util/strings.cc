#include "strings.hh"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace lag
{

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        const std::size_t end = s.find(sep, begin);
        if (end == std::string_view::npos) {
            out.emplace_back(s.substr(begin));
            return out;
        }
        out.emplace_back(s.substr(begin, end - begin));
        begin = end + 1;
    }
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatDurationNs(std::int64_t ns)
{
    const double abs_ns = std::abs(static_cast<double>(ns));
    if (abs_ns >= 1e9)
        return formatDouble(static_cast<double>(ns) / 1e9, 2) + " s";
    if (abs_ns >= 1e6)
        return formatDouble(static_cast<double>(ns) / 1e6, 1) + " ms";
    if (abs_ns >= 1e3)
        return formatDouble(static_cast<double>(ns) / 1e3, 1) + " us";
    return std::to_string(ns) + " ns";
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatDouble(fraction * 100.0, decimals) + "%";
}

std::string
formatCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const std::size_t n = digits.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0)
            out += '\'';
        out += digits[i];
    }
    return out;
}

std::string
xmlEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':  out += "&amp;"; break;
          case '<':  out += "&lt;"; break;
          case '>':  out += "&gt;"; break;
          case '"':  out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default:   out += c; break;
        }
    }
    return out;
}

} // namespace lag
