#include "random.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace lag
{

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 mix(seed);
    for (auto &word : s_)
        word = mix.next();
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    lag_assert(lo <= hi, "uniformInt bounds inverted: ", lo, " > ", hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(nextU64());
    // Modulo bias is < 2^-53 for the spans used here (all tiny
    // relative to 2^64); accepted for simplicity.
    return lo + static_cast<std::int64_t>(nextU64() % span);
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::gaussian()
{
    // Marsaglia polar method.
    double u, v, s;
    do {
        u = uniformReal(-1.0, 1.0);
        v = uniformReal(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::logNormal(double median, double sigma)
{
    lag_assert(median > 0.0, "logNormal median must be positive");
    return median * std::exp(sigma * gaussian());
}

double
Rng::exponential(double mean)
{
    lag_assert(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::paretoBounded(double lo, double hi, double alpha)
{
    lag_assert(lo > 0.0 && hi > lo && alpha > 0.0,
               "paretoBounded needs 0 < lo < hi and alpha > 0");
    const double u = nextDouble();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

int
Rng::poisson(double mean)
{
    lag_assert(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean > 64.0) {
        const double draw = gaussian(mean, std::sqrt(mean));
        return std::max(0, static_cast<int>(std::lround(draw)));
    }
    const double limit = std::exp(-mean);
    double product = nextDouble();
    int count = 0;
    while (product > limit) {
        ++count;
        product *= nextDouble();
    }
    return count;
}

DurationNs
Rng::duration(DurationNs median_ns, double sigma, DurationNs lo_ns,
              DurationNs hi_ns)
{
    lag_assert(lo_ns <= hi_ns, "duration bounds inverted");
    const double draw = logNormal(static_cast<double>(median_ns), sigma);
    const auto ns = static_cast<DurationNs>(draw);
    return std::clamp(ns, lo_ns, hi_ns);
}

std::uint64_t
Rng::fork()
{
    // Mix two outputs through SplitMix so that child streams do not
    // overlap with this generator's own future outputs.
    SplitMix64 mix(nextU64() ^ 0xa5a5a5a5deadbeefULL);
    mix.next();
    return mix.next();
}

} // namespace lag
