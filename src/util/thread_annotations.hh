/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * Wraps the `-Wthread-safety` attributes so that annotated code
 * compiles on every toolchain: under clang the macros expand to the
 * analysis attributes and `-Wthread-safety -Werror` (enabled by the
 * LAG_STATIC_ANALYSIS CMake option) turns lock-discipline mistakes
 * into compile errors; under gcc they expand to nothing and the
 * runtime lock-rank checker in mutex.hh remains the safety net.
 *
 * Naming follows the de-facto standard set by abseil / the clang
 * documentation, prefixed LAG_ to keep the project's namespace:
 *
 *   LAG_CAPABILITY(name)      — type is a lockable capability
 *   LAG_SCOPED_CAPABILITY     — RAII type that acquires/releases
 *   LAG_GUARDED_BY(mu)        — data member protected by mu
 *   LAG_PT_GUARDED_BY(mu)     — pointee protected by mu
 *   LAG_REQUIRES(mu)          — caller must hold mu
 *   LAG_ACQUIRE(mu)/LAG_RELEASE(mu)
 *   LAG_TRY_ACQUIRE(ok, mu)   — conditional acquisition
 *   LAG_EXCLUDES(mu)          — caller must NOT hold mu
 *   LAG_ASSERT_CAPABILITY(mu) — runtime-checked "is held" assertion
 *   LAG_RETURN_CAPABILITY(mu) — function returns a reference to mu
 *   LAG_NO_THREAD_SAFETY_ANALYSIS — opt a function out
 */

#ifndef LAG_UTIL_THREAD_ANNOTATIONS_HH
#define LAG_UTIL_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LAG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef LAG_THREAD_ANNOTATION
#define LAG_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define LAG_CAPABILITY(name) LAG_THREAD_ANNOTATION(capability(name))

#define LAG_SCOPED_CAPABILITY LAG_THREAD_ANNOTATION(scoped_lockable)

#define LAG_GUARDED_BY(mu) LAG_THREAD_ANNOTATION(guarded_by(mu))

#define LAG_PT_GUARDED_BY(mu) LAG_THREAD_ANNOTATION(pt_guarded_by(mu))

#define LAG_REQUIRES(...)                                                 \
    LAG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define LAG_ACQUIRE(...)                                                  \
    LAG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define LAG_RELEASE(...)                                                  \
    LAG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define LAG_TRY_ACQUIRE(...)                                              \
    LAG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define LAG_EXCLUDES(...)                                                 \
    LAG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define LAG_ASSERT_CAPABILITY(mu)                                         \
    LAG_THREAD_ANNOTATION(assert_capability(mu))

#define LAG_RETURN_CAPABILITY(mu)                                         \
    LAG_THREAD_ANNOTATION(lock_returned(mu))

#define LAG_NO_THREAD_SAFETY_ANALYSIS                                     \
    LAG_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // LAG_UTIL_THREAD_ANNOTATIONS_HH
