/**
 * @file
 * Process-wide thread identity: a small sequential id and a
 * human-readable name per thread.
 *
 * The log sink prefixes every line with the calling thread's name,
 * and the observability layer (src/obs) stamps span buffers with it,
 * so the two views of one run — the interleaved log and the Chrome
 * trace — agree on who did what. Ids are assigned on first use in
 * start order; the process's first asking thread is id 0 and is
 * named "main" unless renamed.
 *
 * The name is thread-local: reading your own name is free and
 * race-free. Code that needs another thread's name (the span
 * drainer) must capture it on that thread — see
 * obs::SpanBuffer, which snapshots the name when the owning thread
 * records its first span. Rename a worker (setThreadName) before it
 * records anything.
 */

#ifndef LAG_UTIL_THREAD_NAME_HH
#define LAG_UTIL_THREAD_NAME_HH

#include <cstdint>
#include <string>

namespace lag
{

/** This thread's small sequential id (0 = first asker). */
std::uint32_t currentThreadId();

/** This thread's name; defaults to "main" (id 0) or "thread-N". */
const std::string &currentThreadName();

/** Rename the calling thread (log prefix + future span buffers). */
void setThreadName(std::string name);

/**
 * Monotonic nanoseconds since the process epoch (captured the first
 * time any caller asks). The one wall-clock read shared by log
 * timestamps and span timestamps, so both timelines line up.
 */
std::int64_t processElapsedNs();

} // namespace lag

#endif // LAG_UTIL_THREAD_NAME_HH
