#include "thread_name.hh"

#include <atomic>
#include <chrono>

namespace lag
{

namespace
{

std::atomic<std::uint32_t> g_nextThreadId{0};

/** Per-thread identity, materialized on first access. */
struct ThreadIdentity
{
    ThreadIdentity()
        : id(g_nextThreadId.fetch_add(1, std::memory_order_relaxed)),
          name(id == 0 ? "main" : "thread-" + std::to_string(id))
    {
    }

    std::uint32_t id;
    std::string name;
};

ThreadIdentity &
identity()
{
    thread_local ThreadIdentity t_identity;
    return t_identity;
}

} // namespace

std::uint32_t
currentThreadId()
{
    return identity().id;
}

const std::string &
currentThreadName()
{
    return identity().name;
}

void
setThreadName(std::string name)
{
    identity().name = std::move(name);
}

std::int64_t
processElapsedNs()
{
    using Clock = std::chrono::steady_clock;
    // Magic-static epoch: the first caller (usually static init of
    // the first log line) pins t=0 for logs and spans alike.
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - epoch)
        .count();
}

} // namespace lag
