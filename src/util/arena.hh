/**
 * @file
 * Bump-allocator arena backing the interval trees of a session.
 *
 * Session::fromTrace builds tens of thousands of IntervalNode
 * vectors whose lifetime is exactly the session's.  A general-purpose
 * heap pays per-vector malloc/free plus fragmentation for that
 * pattern; a bump arena turns every allocation into a pointer
 * increment and every deallocation into a no-op, with the whole tree
 * released at once when the owning session dies.
 *
 * ArenaAllocator is the std-allocator adapter.  A default-constructed
 * ArenaAllocator has no arena and falls back to the global heap, so
 * aggregate-initialised IntervalNode values (tests, benchmarks,
 * hand-built trees) keep working unchanged; only containers seeded
 * with an arena pointer bump-allocate.
 */

#ifndef LAG_UTIL_ARENA_HH
#define LAG_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace lag
{

/**
 * Chunked bump allocator.  Memory is carved from geometrically
 * growing blocks; individual frees are no-ops and everything is
 * released when the arena is destroyed (or reset).  Not thread-safe:
 * one arena belongs to one builder thread at a time.
 */
class Arena
{
  public:
    explicit Arena(std::size_t firstBlockBytes = kDefaultBlockBytes)
        : nextBlockBytes_(firstBlockBytes == 0 ? kDefaultBlockBytes
                                               : firstBlockBytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Return @p bytes of storage aligned to @p align.  Alignment
     * must be a power of two no larger than
     * __STDCPP_DEFAULT_NEW_ALIGNMENT__ (blocks come from operator
     * new[] of char, which guarantees exactly that).
     */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (bytes == 0)
            bytes = 1;
        std::size_t offset = alignUp(used_, align);
        if (blocks_.empty() || offset + bytes > blocks_.back().size) {
            grow(bytes + align);
            offset = alignUp(used_, align);
        }
        char *ptr = blocks_.back().data.get() + offset;
        used_ = offset + bytes;
        allocated_ += bytes;
        ++allocations_;
        return ptr;
    }

    /**
     * Drop every block.  Outstanding pointers into the arena become
     * dangling; callers must prove nothing refers into it first.
     */
    void
    reset()
    {
        blocks_.clear();
        used_ = 0;
        reserved_ = 0;
        allocated_ = 0;
        allocations_ = 0;
    }

    /** Total bytes handed out by allocate() (live + abandoned). */
    std::size_t
    bytesAllocated() const
    {
        return allocated_;
    }

    /** Total bytes of backing blocks obtained from the heap. */
    std::size_t
    bytesReserved() const
    {
        return reserved_;
    }

    /** Number of allocate() calls served. */
    std::size_t
    allocationCount() const
    {
        return allocations_;
    }

    /** Number of heap blocks backing the arena. */
    std::size_t
    blockCount() const
    {
        return blocks_.size();
    }

  private:
    static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;
    static constexpr std::size_t kMaxBlockBytes = 4 * 1024 * 1024;

    struct Block
    {
        std::unique_ptr<char[]> data;
        std::size_t size = 0;
    };

    static std::size_t
    alignUp(std::size_t offset, std::size_t align)
    {
        return (offset + align - 1) & ~(align - 1);
    }

    void
    grow(std::size_t atLeast)
    {
        std::size_t size = nextBlockBytes_;
        if (size < atLeast)
            size = atLeast;
        blocks_.push_back(
            Block{std::make_unique<char[]>(size), size});
        reserved_ += size;
        used_ = 0;
        if (nextBlockBytes_ < kMaxBlockBytes)
            nextBlockBytes_ *= 2;
    }

    std::vector<Block> blocks_;
    std::size_t used_ = 0;
    std::size_t nextBlockBytes_ = kDefaultBlockBytes;
    std::size_t reserved_ = 0;
    std::size_t allocated_ = 0;
    std::size_t allocations_ = 0;
};

/**
 * std-allocator adapter over Arena with a global-heap fallback.
 *
 * The arena pointer propagates on container move and swap so that
 * trees assembled from arena-seeded builder vectors stay in the
 * arena through move-assignment, but container copies deliberately
 * fall back to the heap (see select_on_container_copy_construction)
 * so a copy can never dangle into someone else's arena.  Containers
 * holding arena storage must not outlive the arena; Session
 * enforces this by owning both.
 */
template <typename T> class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    /** Heap-fallback allocator: behaves like std::allocator. */
    ArenaAllocator() noexcept = default;

    /** Arena-backed allocator; @p arena must outlive all storage. */
    explicit ArenaAllocator(Arena *arena) noexcept : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) noexcept
        : arena_(other.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr)
            return static_cast<T *>(
                arena_->allocate(bytes, alignof(T)));
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *ptr, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(ptr);
        // Arena storage is reclaimed wholesale by the arena itself.
    }

    /**
     * Container copies fall back to the heap: a copy must be safe
     * to outlive the source's arena, so it never inherits one.
     */
    ArenaAllocator
    select_on_container_copy_construction() const noexcept
    {
        return ArenaAllocator();
    }

    Arena *
    arena() const noexcept
    {
        return arena_;
    }

    friend bool
    operator==(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return a.arena_ == b.arena_;
    }

    friend bool
    operator!=(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return !(a == b);
    }

  private:
    Arena *arena_ = nullptr;
};

} // namespace lag

#endif
