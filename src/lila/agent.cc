#include "agent.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lag::lila
{

trace::IntervalKind
toIntervalKind(jvm::ActivityKind kind)
{
    switch (kind) {
      case jvm::ActivityKind::Listener:
        return trace::IntervalKind::Listener;
      case jvm::ActivityKind::Paint:
        return trace::IntervalKind::Paint;
      case jvm::ActivityKind::Native:
        return trace::IntervalKind::Native;
      case jvm::ActivityKind::Async:
        return trace::IntervalKind::Async;
      case jvm::ActivityKind::Plain:
        break;
    }
    lag_panic("plain activity kind has no interval kind");
}

trace::TraceGcKind
toTraceGcKind(jvm::GcKind kind)
{
    return kind == jvm::GcKind::Major ? trace::TraceGcKind::Major
                                      : trace::TraceGcKind::Minor;
}

trace::TraceThreadState
toTraceThreadState(jvm::SampleState state)
{
    switch (state) {
      case jvm::SampleState::Runnable:
        return trace::TraceThreadState::Runnable;
      case jvm::SampleState::Blocked:
        return trace::TraceThreadState::Blocked;
      case jvm::SampleState::Waiting:
        return trace::TraceThreadState::Waiting;
      case jvm::SampleState::Sleeping:
        return trace::TraceThreadState::Sleeping;
    }
    lag_panic("unknown sample state");
}

LilaAgent::LilaAgent(const LilaConfig &config) : config_(config)
{
    lag_assert(config_.filterThreshold >= 0,
               "negative filter threshold");
}

void
LilaAgent::beginSession(const std::string &app_name,
                        std::uint32_t session_index, std::uint64_t seed,
                        DurationNs sample_period, TimeNs start_time)
{
    lag_assert(!session_open_, "beginSession with a session open");
    session_open_ = true;
    trace_ = trace::Trace{};
    trace_.meta.appName = app_name;
    trace_.meta.sessionIndex = session_index;
    trace_.meta.seed = seed;
    trace_.meta.samplePeriod = sample_period;
    trace_.meta.startTime = start_time;
    trace_.meta.filterThreshold = config_.filterThreshold;
    episodes_seen_ = 0;
    pending_.clear();
    gc_open_outside_ = false;
}

trace::Trace
LilaAgent::finishSession(TimeNs end_time)
{
    lag_assert(session_open_, "finishSession without a session");
    session_open_ = false;

    // Episodes still in flight are incomplete; LagAlyzer is an
    // offline tool and only sees completed requests.
    std::size_t discarded = 0;
    // Safe: pure count, independent of iteration order.
    for (auto &[tid, episode] : pending_) { // lag-lint: allow(unordered-iter)
        if (episode.open)
            ++discarded;
    }
    if (discarded > 0)
        inform("lila: discarded ", discarded, " in-flight episode(s)");
    pending_.clear();

    if (gc_open_outside_) {
        // Close a GC that straddles the session end so records stay
        // balanced.
        trace::TraceEvent end;
        end.type = trace::EventType::GcEnd;
        end.time = end_time;
        trace_.events.push_back(end);
        gc_open_outside_ = false;
    }

    trace_.meta.endTime = end_time;
    std::stable_sort(trace_.events.begin(), trace_.events.end(),
                     [](const trace::TraceEvent &a,
                        const trace::TraceEvent &b) {
                         return a.time < b.time;
                     });
    return std::move(trace_);
}

void
LilaAgent::onThreadStarted(const jvm::VThread &thread)
{
    trace::TraceThread entry;
    entry.id = thread.id();
    entry.name = thread.name();
    entry.isGui = thread.isGui();
    trace_.threads.push_back(std::move(entry));
}

void
LilaAgent::onDispatchBegin(ThreadId thread, TimeNs time)
{
    PendingEpisode &episode = pending_[thread];
    lag_assert(!episode.open, "nested dispatch on thread ", thread);
    episode = PendingEpisode{};
    episode.open = true;
    episode.thread = thread;
    episode.begin = time;
    ++episodes_seen_;
}

void
LilaAgent::onDispatchEnd(ThreadId thread, TimeNs time)
{
    const auto it = pending_.find(thread);
    lag_assert(it != pending_.end() && it->second.open,
               "dispatch end without begin on thread ", thread);
    PendingEpisode &episode = it->second;
    lag_assert(episode.stack.empty(),
               "dispatch ended with open intervals on thread ", thread);
    episode.open = false;

    const DurationNs duration = time - episode.begin;
    trace_.meta.totalInEpisodeTime += duration;
    if (duration < config_.filterThreshold) {
        ++trace_.meta.filteredShortEpisodes;
        // A dropped episode still surfaces any GC that happened
        // inside it: collections are global facts, not part of the
        // episode's structure.
        for (const std::size_t root : episode.roots)
            emitGcOnly(episode, root);
        return;
    }

    trace::TraceEvent begin;
    begin.type = trace::EventType::DispatchBegin;
    begin.thread = thread;
    begin.time = episode.begin;
    trace_.events.push_back(begin);

    for (const std::size_t root : episode.roots)
        emitNode(episode, root);

    trace::TraceEvent end;
    end.type = trace::EventType::DispatchEnd;
    end.thread = thread;
    end.time = time;
    trace_.events.push_back(end);
}

void
LilaAgent::pushNode(ThreadId thread, PendingNode node)
{
    PendingEpisode &episode = pending_[thread];
    lag_assert(episode.open, "interval outside an episode on thread ",
               thread);
    const std::size_t index = episode.arena.size();
    episode.arena.push_back(std::move(node));
    if (episode.stack.empty())
        episode.roots.push_back(index);
    else
        episode.arena[episode.stack.back()].children.push_back(index);
    episode.stack.push_back(index);
}

void
LilaAgent::closeNode(ThreadId thread, TimeNs time)
{
    const auto it = pending_.find(thread);
    lag_assert(it != pending_.end() && it->second.open &&
                   !it->second.stack.empty(),
               "interval end without begin on thread ", thread);
    PendingEpisode &episode = it->second;
    episode.arena[episode.stack.back()].end = time;
    episode.stack.pop_back();
}

void
LilaAgent::onIntervalBegin(ThreadId thread, jvm::ActivityKind kind,
                           const jvm::Frame &frame, TimeNs time)
{
    const auto it = pending_.find(thread);
    if (it == pending_.end() || !it->second.open) {
        // Interval on a thread with no episode in flight (e.g. a
        // native call on a background thread). LiLa instruments the
        // dispatch threads; other threads are covered by sampling
        // only, so this is dropped — matching the paper's trace
        // content.
        return;
    }
    PendingNode node;
    node.kind = toIntervalKind(kind);
    node.classSym = trace_.strings.intern(frame.className);
    node.methodSym = trace_.strings.intern(frame.methodName);
    node.begin = time;
    pushNode(thread, std::move(node));
}

void
LilaAgent::onIntervalEnd(ThreadId thread, jvm::ActivityKind, TimeNs time)
{
    const auto it = pending_.find(thread);
    if (it == pending_.end() || !it->second.open)
        return;
    closeNode(thread, time);
}

void
LilaAgent::onGcBegin(TimeNs time, jvm::GcKind kind)
{
    // Attach the collection to an open episode when one exists so
    // that episode filtering sees it; otherwise record it directly.
    // Safe: the simulated VM stops the world for a collection, so
    // at most one episode can be open when a GC begins — whichever
    // entry the loop visits first is the only open one.
    for (auto &[tid, episode] : pending_) { // lag-lint: allow(unordered-iter)
        if (!episode.open)
            continue;
        PendingNode node;
        node.isGc = true;
        node.gcKind = toTraceGcKind(kind);
        node.begin = time;
        pushNode(tid, std::move(node));
        return;
    }
    lag_assert(!gc_open_outside_, "overlapping collections");
    gc_open_outside_ = true;
    gc_kind_outside_ = toTraceGcKind(kind);
    gc_begin_outside_ = time;
}

void
LilaAgent::onGcEnd(TimeNs time)
{
    if (gc_open_outside_) {
        gc_open_outside_ = false;
        trace::TraceEvent begin;
        begin.type = trace::EventType::GcBegin;
        begin.time = gc_begin_outside_;
        begin.gcKind = gc_kind_outside_;
        trace_.events.push_back(begin);
        trace::TraceEvent end;
        end.type = trace::EventType::GcEnd;
        end.time = time;
        trace_.events.push_back(end);
        return;
    }
    // Safe: mirrors onGcBegin — at most one open episode exists.
    for (auto &[tid, episode] : pending_) { // lag-lint: allow(unordered-iter)
        if (!episode.open)
            continue;
        lag_assert(!episode.stack.empty() &&
                       episode.arena[episode.stack.back()].isGc,
                   "GC end does not match an open GC node");
        closeNode(tid, time);
        return;
    }
    lag_panic("GC end without a matching begin");
}

void
LilaAgent::onSample(TimeNs time,
                    const std::vector<jvm::ThreadSnapshot> &snapshots)
{
    if (config_.samplesOnlyInEpisodes && !anyEpisodeOpen())
        return;
    trace::TraceSample sample;
    sample.time = time;
    sample.threads.reserve(snapshots.size());
    for (const auto &snap : snapshots) {
        trace::SampleThread entry;
        entry.thread = snap.thread;
        entry.state = toTraceThreadState(snap.state);
        entry.frames.reserve(snap.stack.size());
        for (const auto &frame : snap.stack) {
            trace::SampleFrame f;
            f.classSym = trace_.strings.intern(frame.className);
            f.methodSym = trace_.strings.intern(frame.methodName);
            entry.frames.push_back(f);
        }
        sample.threads.push_back(std::move(entry));
    }
    trace_.samples.push_back(std::move(sample));
}

bool
LilaAgent::anyEpisodeOpen() const
{
    // Safe: existence check, independent of iteration order.
    for (const auto &[tid, episode] : pending_) { // lag-lint: allow(unordered-iter)
        if (episode.open)
            return true;
    }
    return false;
}

void
LilaAgent::emitNode(const PendingEpisode &episode, std::size_t index)
{
    const PendingNode &node = episode.arena[index];
    lag_assert(node.end != kNoTime, "emitting an open interval");

    if (!node.isGc && node.end - node.begin < config_.filterThreshold) {
        // Too short to record; keep any collections underneath it.
        emitGcOnly(episode, index);
        return;
    }

    trace::TraceEvent begin;
    begin.time = node.begin;
    if (node.isGc) {
        begin.type = trace::EventType::GcBegin;
        begin.gcKind = node.gcKind;
    } else {
        begin.type = trace::EventType::IntervalBegin;
        begin.thread = episode.thread;
        begin.kind = node.kind;
        begin.classSym = node.classSym;
        begin.methodSym = node.methodSym;
    }
    trace_.events.push_back(begin);

    for (const std::size_t child : node.children)
        emitNode(episode, child);

    trace::TraceEvent end;
    end.time = node.end;
    if (node.isGc) {
        end.type = trace::EventType::GcEnd;
    } else {
        end.type = trace::EventType::IntervalEnd;
        end.thread = episode.thread;
        end.kind = node.kind;
    }
    trace_.events.push_back(end);
}

void
LilaAgent::emitGcOnly(const PendingEpisode &episode, std::size_t index)
{
    const PendingNode &node = episode.arena[index];
    if (node.isGc) {
        trace::TraceEvent begin;
        begin.type = trace::EventType::GcBegin;
        begin.time = node.begin;
        begin.gcKind = node.gcKind;
        trace_.events.push_back(begin);
        trace::TraceEvent end;
        end.type = trace::EventType::GcEnd;
        end.time = node.end;
        trace_.events.push_back(end);
        return;
    }
    for (const std::size_t child : node.children)
        emitGcOnly(episode, child);
}

} // namespace lag::lila
