/**
 * @file
 * The LiLa profiling agent (stand-in for the paper's tracer).
 *
 * LilaAgent listens to a simulated JVM and produces a trace::Trace.
 * It reproduces the measurement behaviour LagAlyzer depends on:
 *
 *  - episodes (dispatches) shorter than the filter threshold (3 ms
 *    in the paper) are dropped from the trace but counted, feeding
 *    Table III's "< 3ms" column;
 *  - intervals shorter than the threshold are pruned from episode
 *    trees, which is why some perceptible episodes appear to have
 *    "no internal structure" (paper §IV.C, the unspecified
 *    trigger class) — except GC intervals, which are always kept;
 *  - call-stack samples are recorded while an episode is in flight.
 *
 * The agent buffers each episode as a tree and flattens surviving
 * nodes into begin/end records at episode completion, so filtering
 * never produces unbalanced records.
 */

#ifndef LAG_LILA_AGENT_HH
#define LAG_LILA_AGENT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "jvm/listener.hh"
#include "trace/trace.hh"
#include "util/types.hh"

namespace lag::lila
{

/** Tracer configuration. */
struct LilaConfig
{
    /** Episodes and intervals shorter than this are dropped. */
    DurationNs filterThreshold = msToNs(3);

    /** Record stack samples only while an episode is in flight. */
    bool samplesOnlyInEpisodes = true;
};

/** Profiling agent producing one trace per session. */
class LilaAgent : public jvm::JvmListener
{
  public:
    explicit LilaAgent(const LilaConfig &config);

    /** Reset and start recording a session. */
    void beginSession(const std::string &app_name,
                      std::uint32_t session_index, std::uint64_t seed,
                      DurationNs sample_period, TimeNs start_time);

    /**
     * Finish recording: discard in-flight episodes, order the event
     * stream, fill metadata, and hand over the trace.
     */
    trace::Trace finishSession(TimeNs end_time);

    /** Episodes seen so far (including filtered ones). */
    std::uint64_t episodesSeen() const { return episodes_seen_; }

    /**
     * JvmListener interface.
     * @{
     */
    void onThreadStarted(const jvm::VThread &thread) override;
    void onDispatchBegin(ThreadId thread, TimeNs time) override;
    void onDispatchEnd(ThreadId thread, TimeNs time) override;
    void onIntervalBegin(ThreadId thread, jvm::ActivityKind kind,
                         const jvm::Frame &frame, TimeNs time) override;
    void onIntervalEnd(ThreadId thread, jvm::ActivityKind kind,
                       TimeNs time) override;
    void onGcBegin(TimeNs time, jvm::GcKind kind) override;
    void onGcEnd(TimeNs time) override;
    void onSample(TimeNs time,
                  const std::vector<jvm::ThreadSnapshot> &snapshots)
        override;
    /** @} */

  private:
    /** Node of a buffered (not yet filtered) episode tree. */
    struct PendingNode
    {
        bool isGc = false;
        trace::IntervalKind kind = trace::IntervalKind::Listener;
        trace::TraceGcKind gcKind = trace::TraceGcKind::Minor;
        SymbolId classSym = 0;
        SymbolId methodSym = 0;
        TimeNs begin = 0;
        TimeNs end = kNoTime;
        std::vector<std::size_t> children; ///< arena indices
    };

    /** One episode being buffered on a dispatch thread. */
    struct PendingEpisode
    {
        bool open = false;
        ThreadId thread = 0;
        TimeNs begin = 0;
        std::vector<PendingNode> arena;
        std::vector<std::size_t> roots;
        std::vector<std::size_t> stack; ///< open nodes, arena indices
    };

    /** True when any dispatch thread has an episode in flight. */
    bool anyEpisodeOpen() const;

    /** Append a node to the open episode of @p thread. */
    void pushNode(ThreadId thread, PendingNode node);

    /** Close the innermost open node of @p thread. */
    void closeNode(ThreadId thread, TimeNs time);

    /** Emit surviving records of @p index into the event stream. */
    void emitNode(const PendingEpisode &episode, std::size_t index);

    /** Emit only the GC descendants of a filtered subtree. */
    void emitGcOnly(const PendingEpisode &episode, std::size_t index);

    LilaConfig config_;
    trace::Trace trace_;
    bool session_open_ = false;
    std::uint64_t episodes_seen_ = 0;
    std::unordered_map<ThreadId, PendingEpisode> pending_;
    bool gc_open_outside_ = false;
    trace::TraceGcKind gc_kind_outside_ = trace::TraceGcKind::Minor;
    TimeNs gc_begin_outside_ = 0;
};

/** Map a jvm activity kind to its trace interval kind. */
trace::IntervalKind toIntervalKind(jvm::ActivityKind kind);

/** Map a jvm GC kind to its trace encoding. */
trace::TraceGcKind toTraceGcKind(jvm::GcKind kind);

/** Map a jvm sample state to its trace encoding. */
trace::TraceThreadState toTraceThreadState(jvm::SampleState state);

} // namespace lag::lila

#endif // LAG_LILA_AGENT_HH
