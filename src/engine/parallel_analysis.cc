#include "parallel_analysis.hh"

#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/pattern_stats.hh"
#include "core/triggers.hh"
#include "obs/span.hh"
#include "study_driver.hh"
#include "util/logging.hh"

namespace lag::engine
{

namespace
{

/** Below this many episodes per shard, scheduling overhead wins. */
constexpr std::size_t kMinEpisodesPerShard = 64;

/** All integer partials of one episode shard. */
struct ShardPartial
{
    core::PatternShard patterns;
    core::TriggerCounts triggers;
    core::LocationCounts location;
    core::ConcurrencyCounts concurrency;
    core::GuiStateCounts states;
};

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
episodeShards(std::size_t episodeCount, std::size_t shardCount)
{
    if (shardCount == 0)
        shardCount = 1;
    if (shardCount > episodeCount)
        shardCount = episodeCount == 0 ? 1 : episodeCount;

    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ranges.reserve(shardCount);
    const std::size_t base = episodeCount / shardCount;
    const std::size_t extra = episodeCount % shardCount;
    std::size_t begin = 0;
    for (std::size_t k = 0; k < shardCount; ++k) {
        const std::size_t size = base + (k < extra ? 1 : 0);
        ranges.emplace_back(begin, begin + size);
        begin += size;
    }
    lag_assert(begin == episodeCount, "shards must cover all episodes");
    return ranges;
}

std::size_t
shardCountFor(std::size_t workerCount, std::size_t episodeCount)
{
    if (workerCount <= 1 || episodeCount < 2 * kMinEpisodesPerShard)
        return 1;
    // Oversubscribe a little so uneven shards still balance, but
    // keep every shard meaty enough to amortize scheduling.
    const std::size_t byWorkers = workerCount * 4;
    const std::size_t byWork = episodeCount / kMinEpisodesPerShard;
    return std::min(byWorkers, byWork);
}

core::PatternSet
minePatternsParallel(const core::Session &session,
                     DurationNs perceptible_threshold, ThreadPool &pool)
{
    const core::PatternMiner miner(perceptible_threshold);
    const auto ranges =
        episodeShards(session.episodes().size(),
                      shardCountFor(pool.workerCount(),
                                    session.episodes().size()));

    // Flatten once, before the fan-out: the arena fill completes
    // here, so the shards below share the FlatSession read-only.
    const core::FlatSession flat = core::flattenSession(session);

    std::vector<core::PatternShard> shards(ranges.size());
    parallelFor(pool, ranges.size(), [&](std::size_t k) {
        LAG_SPAN_ARG("mine.shard", "shard", k);
        shards[k] = miner.mineRange(session, flat, ranges[k].first,
                                    ranges[k].second);
    });
    LAG_SPAN("mine.merge");
    return miner.merge(std::move(shards));
}

SessionAnalysis
analyzeSessionParallel(const core::Session &session,
                       DurationNs perceptible_threshold,
                       ThreadPool &pool)
{
    const core::PatternMiner miner(perceptible_threshold);
    const std::size_t episodeCount = session.episodes().size();
    const auto ranges = episodeShards(
        episodeCount, shardCountFor(pool.workerCount(), episodeCount));

    // Flatten once, before the fan-out: the arena fill completes
    // here, so the shards below share the FlatSession read-only.
    const core::FlatSession flat = core::flattenSession(session);

    std::vector<ShardPartial> partials(ranges.size());
    parallelFor(pool, ranges.size(), [&](std::size_t k) {
        LAG_SPAN_ARG("analysis.shard", "shard", k);
        const auto [begin, end] = ranges[k];
        ShardPartial &partial = partials[k];
        partial.patterns = miner.mineRange(session, flat, begin, end);
        partial.triggers = core::countTriggers(
            session, flat, begin, end, perceptible_threshold);
        partial.location = core::countLocation(
            session, flat, begin, end, perceptible_threshold);
        partial.concurrency = core::countConcurrency(
            session, begin, end, perceptible_threshold);
        partial.states = core::countGuiStates(
            session, begin, end, perceptible_threshold);
    });

    // Serial reduce in shard (= episode) order: completion order of
    // the tasks above can never leak into the result.
    LAG_SPAN_ARG("analysis.merge", "shards", partials.size());
    std::vector<core::PatternShard> shards;
    shards.reserve(partials.size());
    core::TriggerCounts triggers;
    core::LocationCounts location;
    core::ConcurrencyCounts concurrency;
    core::GuiStateCounts states;
    for (ShardPartial &partial : partials) {
        shards.push_back(std::move(partial.patterns));
        triggers.merge(partial.triggers);
        location.merge(partial.location);
        concurrency.merge(partial.concurrency);
        states.merge(partial.states);
    }
    const core::PatternSet patterns = miner.merge(std::move(shards));

    SessionAnalysis out;
    out.overview = core::computeOverview(session, patterns,
                                         perceptible_threshold);
    out.triggers = core::finishTriggers(triggers);
    out.location = core::finishLocation(location);
    out.concurrency = core::finishConcurrency(concurrency);
    out.states = core::finishGuiStates(states);
    out.occurrence = core::occurrenceShares(patterns);
    out.cdf = core::patternCdf(patterns);
    out.patternKeys.reserve(patterns.patterns.size());
    for (const core::Pattern &pattern : patterns.patterns)
        out.patternKeys.push_back(pattern.key);
    out.episodeDurations.reserve(session.episodes().size());
    for (const core::Episode &episode : session.episodes())
        out.episodeDurations.push_back(episode.duration());
    out.patternSummary = core::summarizePatterns(patterns);
    return out;
}

} // namespace lag::engine
