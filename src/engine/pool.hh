/**
 * @file
 * Work-stealing thread pool: the engine's execution substrate.
 *
 * Each worker owns a deque of tasks. A worker pushes and pops its
 * own work from the back (LIFO, cache-warm); an idle worker first
 * drains the global injector queue (external submissions), then
 * steals from the front of a victim's deque (FIFO — the oldest,
 * largest-granularity work migrates, the classic work-stealing
 * discipline). Tasks may submit further tasks; the task graph
 * depends on that to release dependents from inside workers.
 *
 * Every queue is guarded by an annotated lag::Mutex, so the lock
 * discipline is machine-checked twice: clang `-Wthread-safety`
 * verifies at compile time that every guarded member is touched
 * under its mutex, and the runtime lock-rank checker verifies that
 * the three pool ranks (idle > worker > injector) are only ever
 * acquired in descending order. The pool schedules session-sized
 * tasks (milliseconds to seconds of simulation, decoding or
 * analysis), so lock-free deques would buy nothing measurable while
 * costing auditability; the design optimizes for provable
 * cleanliness first.
 *
 * Exceptions thrown by tasks are captured; the first one is
 * rethrown from waitIdle(). The destructor drains outstanding work,
 * then signals shutdown and joins every worker.
 */

#ifndef LAG_ENGINE_POOL_HH
#define LAG_ENGINE_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "task.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::engine
{

/** Fixed-size work-stealing pool. */
class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 = one per hardware
     *        thread (defaultConcurrency()). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains outstanding tasks, then shuts the workers down. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task. From a worker thread of this pool the task
     * lands on that worker's own deque; from any other thread it
     * goes through the global injector queue.
     */
    void submit(Task task);

    /**
     * Block until every submitted task (including tasks submitted
     * by tasks) has finished, then rethrow the first captured task
     * exception, if any. Must not be called from a worker of this
     * pool (it would wait for itself).
     */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t workerCount() const { return workers_.size(); }

    /** One worker per hardware thread (at least 1). */
    static std::size_t defaultConcurrency();

  private:
    /** One worker's state; heap-allocated for address stability. */
    struct Worker
    {
        /** All deques share LockRank::PoolWorker, so the rank
         * checker proves no thread ever holds two of them (the
         * steal loop locks victims strictly one at a time). */
        Mutex mutex{LockRank::PoolWorker, "pool-worker-deque"};
        std::deque<Task> deque LAG_GUARDED_BY(mutex);
    };

    bool popOwn(std::size_t index, Task &task);
    bool popInjected(Task &task);
    bool steal(std::size_t thief, Task &task);
    void workerLoop(std::size_t index);
    void runTask(Task &task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    Mutex injectorMutex_{LockRank::PoolInjector, "pool-injector"};
    std::deque<Task> injector_ LAG_GUARDED_BY(injectorMutex_);
    std::condition_variable_any wakeCv_;
    bool stop_ LAG_GUARDED_BY(injectorMutex_) = false;

    /** Bumped on every submit so a worker deciding to sleep can
     * detect work pushed after its (empty) scan of the queues —
     * the standard fix for the lost-wakeup race. */
    std::uint64_t version_ LAG_GUARDED_BY(injectorMutex_) = 0;

    Mutex idleMutex_{LockRank::PoolIdle, "pool-idle"};
    std::condition_variable_any idleCv_;
    std::size_t pending_ LAG_GUARDED_BY(idleMutex_) = 0;
    std::exception_ptr firstError_ LAG_GUARDED_BY(idleMutex_);
};

} // namespace lag::engine

#endif // LAG_ENGINE_POOL_HH
