/**
 * @file
 * Work-stealing thread pool: the engine's execution substrate.
 *
 * Each worker owns a deque of tasks. A worker pushes and pops its
 * own work from the back (LIFO, cache-warm); an idle worker first
 * drains the global injector queue (external submissions), then
 * steals from the front of a victim's deque (FIFO — the oldest,
 * largest-granularity work migrates, the classic work-stealing
 * discipline). Tasks may submit further tasks; the task graph
 * depends on that to release dependents from inside workers.
 *
 * Every queue is mutex-guarded. The pool schedules session-sized
 * tasks (milliseconds to seconds of simulation, decoding or
 * analysis), so lock-free deques would buy nothing measurable while
 * costing auditability under ThreadSanitizer; the design optimizes
 * for provable cleanliness first.
 *
 * Exceptions thrown by tasks are captured; the first one is
 * rethrown from waitIdle(). The destructor drains outstanding work,
 * then signals shutdown and joins every worker.
 */

#ifndef LAG_ENGINE_POOL_HH
#define LAG_ENGINE_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "task.hh"

namespace lag::engine
{

/** Fixed-size work-stealing pool. */
class ThreadPool
{
  public:
    /** @param workers worker-thread count; 0 = one per hardware
     *        thread (defaultConcurrency()). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains outstanding tasks, then shuts the workers down. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task. From a worker thread of this pool the task
     * lands on that worker's own deque; from any other thread it
     * goes through the global injector queue.
     */
    void submit(Task task);

    /**
     * Block until every submitted task (including tasks submitted
     * by tasks) has finished, then rethrow the first captured task
     * exception, if any. Must not be called from a worker of this
     * pool (it would wait for itself).
     */
    void waitIdle();

    /** Number of worker threads. */
    std::size_t workerCount() const { return workers_.size(); }

    /** One worker per hardware thread (at least 1). */
    static std::size_t defaultConcurrency();

  private:
    /** One worker's state; heap-allocated for address stability. */
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> deque; ///< guarded by mutex
    };

    bool popOwn(std::size_t index, Task &task);
    bool popInjected(Task &task);
    bool steal(std::size_t thief, Task &task);
    void workerLoop(std::size_t index);
    void runTask(Task &task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards injector_, stop_ and version_. */
    std::mutex injectorMutex_;
    std::deque<Task> injector_;
    std::condition_variable wakeCv_;
    bool stop_ = false;

    /** Bumped on every submit so a worker deciding to sleep can
     * detect work pushed after its (empty) scan of the queues —
     * the standard fix for the lost-wakeup race. */
    std::uint64_t version_ = 0;

    /** Guards pending_ and firstError_. */
    std::mutex idleMutex_;
    std::condition_variable idleCv_;
    std::size_t pending_ = 0;
    std::exception_ptr firstError_;
};

} // namespace lag::engine

#endif // LAG_ENGINE_POOL_HH
