/**
 * @file
 * Dependency-ordered task execution on top of the thread pool.
 *
 * A TaskGraph is a DAG of tasks built up front and executed once.
 * Dependencies must refer to tasks already in the graph, which
 * makes cycles unrepresentable by construction — no runtime cycle
 * detection is needed, and a malformed graph fails loudly at add()
 * time rather than hanging at run() time.
 *
 * run() submits every dependency-free task to the pool; as each
 * task finishes it releases its dependents, so independent chains
 * pipeline freely across workers while each chain's internal order
 * is preserved. If a task throws, its transitive dependents are
 * skipped, the remaining independent work still completes, and the
 * first exception is rethrown from run().
 *
 * All node bookkeeping is guarded by one annotated mutex
 * (LockRank::TaskGraph, above every pool rank, so releasing
 * dependents from inside a worker can never invert lock order).
 */

#ifndef LAG_ENGINE_GRAPH_HH
#define LAG_ENGINE_GRAPH_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "pool.hh"
#include "task.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::engine
{

/** A one-shot DAG of tasks. */
class TaskGraph
{
  public:
    /**
     * Add a task that runs after every task in @p deps. All
     * dependencies must already be in the graph (acyclic by
     * construction).
     */
    TaskId add(Task fn, std::vector<TaskId> deps = {},
               std::string label = {});

    /** Number of tasks in the graph. */
    std::size_t size() const;

    /** State of a node (meaningful after run()). */
    TaskState state(TaskId id) const;

    /**
     * Execute the graph on @p pool and block until every task has
     * settled (done, failed, or skipped). Rethrows the first task
     * exception. One-shot: a graph cannot be run twice.
     */
    void run(ThreadPool &pool);

  private:
    void submitNode(ThreadPool &pool, std::uint32_t index);
    void onNodeDone(ThreadPool &pool, std::uint32_t index,
                    bool failed);

    bool ran_ = false; ///< touched only by the run() caller

    /** Guards every node's mutable fields (state, remainingDeps)
     * as well as the completion accounting. The graph *structure*
     * (node count, edges) is fixed before run() and uncontended,
     * but routing every access through the mutex keeps the
     * annotation sound and costs nothing off the hot path. */
    mutable Mutex mutex_{LockRank::TaskGraph, "task-graph"};
    std::vector<TaskNode> nodes_ LAG_GUARDED_BY(mutex_);
    std::condition_variable_any doneCv_;
    std::size_t settled_ LAG_GUARDED_BY(mutex_) = 0;
    std::exception_ptr firstError_ LAG_GUARDED_BY(mutex_);
};

} // namespace lag::engine

#endif // LAG_ENGINE_GRAPH_HH
