/**
 * @file
 * Content-addressed cache of per-session analysis artifacts.
 *
 * The trace cache (app::Study) already avoids re-simulating
 * sessions; this cache extends it one level up and avoids
 * re-*analyzing* them. One SessionAnalysis bundles everything the
 * study harnesses consume from a session — the episode durations,
 * the mined pattern keys, the Table III overview row, and the
 * Figure 3–8 analysis results — so a bench re-run after a viz- or
 * report-only change skips pattern mining and the analysis suite
 * entirely.
 *
 * Entries are content-addressed: the file name is a hash of the
 * study fingerprint, the analysis version and the session identity,
 * so recalibrating any model parameter or changing any analysis
 * (bump kAnalysisVersion) simply misses the cache and recomputes.
 * Files carry a magic, a version and a payload checksum and are
 * written via temp file + atomic rename; a truncated, corrupted or
 * stale entry reads as a miss, never as a crash or a wrong result.
 *
 * Serialization is bit-exact for doubles (IEEE-754 bytes), so a
 * cached result is byte-identical to a freshly computed one — the
 * engine's determinism contract extends through the cache.
 *
 * The directory is bounded by evict(): entries from old study
 * fingerprints are unreachable by construction and are dropped on
 * sight, and the surviving entries can be limited by total size and
 * by age (see CacheEvictionPolicy).
 */

#ifndef LAG_ENGINE_RESULT_CACHE_HH
#define LAG_ENGINE_RESULT_CACHE_HH

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/pattern_stats.hh"
#include "core/session.hh"
#include "core/triggers.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"
#include "util/types.hh"

namespace lag::engine
{

/** Bumped whenever any analysis result changes meaning or any
 * serialized field changes, so stale entries miss.
 * v2: per-pattern aggregation summaries (patternSummary) joined the
 * payload, enabling cross-session merges straight from the cache. */
constexpr std::uint32_t kAnalysisVersion = 2;

/** Everything the study pipeline derives from one session. */
struct SessionAnalysis
{
    core::OverviewRow overview;
    core::TriggerAnalysisResult triggers;
    core::LocationAnalysisResult location;
    core::ConcurrencyResult concurrency;
    core::ThreadStateResult states;
    core::OccurrenceShares occurrence;

    /** Raw pattern CDF points (Figure 3), as from patternCdf(). */
    std::vector<std::pair<double, double>> cdf;

    /** Mined pattern keys, most populous first. */
    std::vector<std::uint64_t> patternKeys;

    /** Episode durations in session order (the episode list). */
    std::vector<DurationNs> episodeDurations;

    /** Per-pattern aggregation summaries, in set (most populous
     * first) order — everything core::mergeAnalyses needs to rebuild
     * a MergedPatternSet without re-mining (new in v2). */
    core::PatternSetSummary patternSummary;
};

/** Run the full per-session analysis suite.  Internally flattens
 * the session's interval trees once (core::flattenSession) and runs
 * pattern mining, trigger and location analysis on the flat layout;
 * the result is byte-identical to analyzeSessionNode. */
SessionAnalysis analyzeSession(const core::Session &session,
                               DurationNs perceptible_threshold);

/** Reference implementation of analyzeSession on the node trees
 * only.  Kept as the differential baseline
 * (tests/engine_flat_equivalence_test.cc) — not a hot path. */
SessionAnalysis analyzeSessionNode(const core::Session &session,
                                   DurationNs perceptible_threshold);

/** Serialize @p analysis (header + checksummed payload). */
std::string
serializeSessionAnalysis(const SessionAnalysis &analysis);

/** Parse serializeSessionAnalysis output; throws trace::TraceError
 * on any mismatch (magic, version, checksum, truncation). */
SessionAnalysis deserializeSessionAnalysis(std::string_view data);

/** Hit/miss/store counters for one cache over its lifetime. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
};

/** Limits applied by ResultCache::evict(); 0 means unlimited. */
struct CacheEvictionPolicy
{
    std::uint64_t maxBytes = 0;      ///< total .ares byte budget
    std::uint64_t maxAgeSeconds = 0; ///< drop entries older than this
};

/** What one evict() pass removed and what survived it. */
struct CacheEvictionResult
{
    std::uint64_t removedFiles = 0;
    std::uint64_t removedBytes = 0;
    std::uint64_t keptFiles = 0;
    std::uint64_t keptBytes = 0;
};

/** On-disk cache of SessionAnalysis entries under a study's cache
 * directory. Safe for concurrent use on distinct sessions. */
class ResultCache
{
  public:
    /** @param cache_dir the study's trace-cache directory;
     *  @param study_fingerprint StudyConfig::fingerprint(). */
    ResultCache(std::string cache_dir, std::string study_fingerprint);

    /** Content address of one session's entry. */
    std::string entryPath(std::string_view app_name,
                          std::uint32_t session_index) const;

    /** Load an entry; nullopt on miss or invalid file. */
    std::optional<SessionAnalysis>
    load(std::string_view app_name,
         std::uint32_t session_index) const;

    /** Write an entry (temp file + atomic rename). */
    void store(std::string_view app_name,
               std::uint32_t session_index,
               const SessionAnalysis &analysis) const;

    /** Snapshot of the hit/miss/store counters. Counters are
     * bumped from concurrent analysis tasks; the snapshot is only
     * deterministic once the driving pool is idle. */
    ResultCacheStats stats() const;

    /**
     * Content digest (FNV-1a) of one entry's on-disk bytes; a
     * missing or unreadable entry folds a distinct absent marker,
     * so present-vs-absent always changes the digest. Pure read:
     * no hit/miss counters move, no payload is validated — this is
     * the invalidation primitive, not a load.
     */
    std::uint64_t entryDigest(std::string_view app_name,
                              std::uint32_t session_index) const;

    /**
     * Combined content digest over one app's entries
     * 0..@p sessions_per_app-1, in index order. The serve layer
     * stamps its per-app hot state with this: any byte of any
     * contributing `.ares` entry changing (or an entry appearing /
     * disappearing) changes the app digest, and only apps whose
     * digest moved are re-merged on refresh.
     */
    std::uint64_t appDigest(std::string_view app_name,
                            std::uint32_t sessions_per_app) const;

    /**
     * Garbage-collect the analysis directory. Entries written under
     * a different study fingerprint (or analysis version) are always
     * removed — their content address can never hit again. Among the
     * live entries, anything older than @p policy.maxAgeSeconds goes
     * next, then the oldest files (by modification time, ties broken
     * by name) until the directory fits @p policy.maxBytes. Entries
     * that cannot be stat'ed or removed are kept and warned about —
     * never booked as gone while still on disk. Call from a single
     * thread while no analysis tasks are in flight.
     */
    CacheEvictionResult evict(const CacheEvictionPolicy &policy) const;

    /** Removal hook for evict(): returns true when the file is
     * actually gone. Injectable so tests can exercise the
     * removal-failure accounting without a read-only filesystem. */
    using RemoveFileFn =
        std::function<bool(const std::filesystem::path &)>;

    /** evict() with an injected removal primitive (tests). */
    CacheEvictionResult evict(const CacheEvictionPolicy &policy,
                              const RemoveFileFn &remove_file) const;

  private:
    /** Count a miss and return nullopt (every load() miss path). */
    std::optional<SessionAnalysis> miss() const;

    std::string dir_;
    std::string fingerprint_;

    /** Short hash of (fingerprint, analysis version) embedded in
     * every entry name so evict() can spot stale generations without
     * opening the files. */
    std::string tag_;

    /** Guards the counters, not the files: entries are atomic on
     * disk (temp + rename) and distinct sessions never collide. */
    mutable Mutex statsMutex_{LockRank::ResultCache,
                              "result-cache-stats"};
    mutable ResultCacheStats stats_ LAG_GUARDED_BY(statsMutex_);
};

} // namespace lag::engine

#endif // LAG_ENGINE_RESULT_CACHE_HH
