/**
 * @file
 * Incremental cross-session aggregation from the result cache.
 *
 * The paper's core claim is that LagAlyzer "integrates multiple
 * traces in its analysis" (§VI); at study scale that means
 * answering cross-session aggregates — the per-app MergedPatternSet
 * and the Table III / Figure 3–8 rollup inputs — over dozens of
 * sessions. The decode-and-mine path pays a full trace decode plus
 * pattern mining per session per run. This layer answers the same
 * queries from cached `.ares` entries instead: a v2 SessionAnalysis
 * carries per-pattern summaries (core::PatternSetSummary), so a
 * warm cache rebuilds every aggregate without the trace decoder
 * running at all — provable via the `trace.decode.bytes` counter.
 *
 * Determinism contract: every per-session task writes only its own
 * [app][session] grid slot, cache entries are byte-identical to
 * fresh computations (result_cache.hh), and the merges run serially
 * in [app][session] order — so the output is byte-identical to the
 * decode-and-mine path at any worker count, on any mix of cache
 * hits and misses.
 */

#ifndef LAG_ENGINE_INCREMENTAL_HH
#define LAG_ENGINE_INCREMENTAL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/aggregate.hh"
#include "core/figure_json.hh"
#include "core/session.hh"
#include "pool.hh"
#include "result_cache.hh"
#include "util/types.hh"

namespace lag::engine
{

/**
 * Produces one session on a cache miss (decode its trace, or
 * re-simulate when the trace itself is gone). Called from pool
 * workers; must be safe for concurrent distinct (app, session)
 * pairs — app::Study::loadSession satisfies this.
 */
using SessionLoader = std::function<core::Session(
    std::size_t app_index, std::uint32_t session_index)>;

/** Knobs of aggregateFromCache(). */
struct AggregateOptions
{
    /**
     * When false (`--no-incremental`), the cache is neither read
     * nor written: every session is loaded and re-analyzed — the
     * escape hatch for distrusting the cache, and the reference
     * side of the equivalence tests.
     */
    bool incremental = true;
};

/** Everything the study harnesses aggregate across sessions. */
struct StudyAggregate
{
    /** Per-session analyses indexed [app][session]; byte-identical
     * (via serializeSessionAnalysis) to analyzing each decoded
     * session directly. */
    std::vector<std::vector<SessionAnalysis>> grid;

    /** Per-app cross-session pattern merges; byte-identical to
     * core::minePatternsAcrossSessions over each app's sessions. */
    std::vector<core::MergedPatternSet> merged;

    /** Sessions answered from `.ares` entries alone. */
    std::size_t sessionsFromCache = 0;

    /** Sessions that fell back to load + analyze (+ store). */
    std::size_t sessionsRecomputed = 0;
};

/**
 * Rebuild every cross-session aggregate for a
 * @p app_names.size() x @p sessions_per_app study grid from
 * @p cache, falling back per session to @p load_session + analyze
 * on a miss (storing the result back for the next run). Per-session
 * cache loads and recomputations fan out over @p pool via the study
 * driver; the merge is serial and index-ordered. Instrumented with
 * the `cache.aggregate` span and the
 * `cache.aggregate.cached` / `cache.aggregate.recomputed` counters.
 */
StudyAggregate
aggregateFromCache(const ResultCache &cache,
                   const std::vector<std::string> &app_names,
                   std::uint32_t sessions_per_app,
                   DurationNs perceptible_threshold, ThreadPool &pool,
                   const SessionLoader &load_session,
                   const AggregateOptions &options = {});

/** One app rebuilt from the cache: its per-session analyses and
 * their cross-session merge. */
struct AppAggregate
{
    std::vector<SessionAnalysis> sessions;
    core::MergedPatternSet merged;
    std::size_t sessionsFromCache = 0;
    std::size_t sessionsRecomputed = 0;
};

/**
 * The per-app entry point behind aggregateFromCache(): rebuild one
 * app's sessions (cache hit, or load + analyze + store back) and
 * merge them. Deliberately serial — the serve layer calls this from
 * a pool worker during `/v1/refresh`, where fanning sub-tasks onto
 * the same pool and waiting would deadlock. The engine's
 * determinism contract makes the result byte-identical to the
 * corresponding slice of a full aggregateFromCache() at any worker
 * count. Bumps the same `cache.aggregate.cached` / `.recomputed`
 * counters.
 */
AppAggregate
aggregateAppFromCache(const ResultCache &cache,
                      const std::string &app_name,
                      std::size_t app_index,
                      std::uint32_t sessions_per_app,
                      DurationNs perceptible_threshold,
                      const SessionLoader &load_session,
                      const AggregateOptions &options = {});

/**
 * Session-average one app's analyses into the figure inputs
 * (core::AppFigureData): trigger/location/state shares and the CDF
 * grid average over sessions (counts accumulate), exactly the
 * arithmetic the bench harnesses' analyzeStudy() has always used —
 * bench and serve now share this one implementation, so figure
 * bytes agree between the batch and the server by construction.
 */
core::AppFigureData
averageSessionAnalyses(std::string name,
                       const std::vector<SessionAnalysis> &sessions);

} // namespace lag::engine

#endif // LAG_ENGINE_INCREMENTAL_HH
