#include "ingest.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "core/figure_json.hh"
#include "core/session.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "study_driver.hh"
#include "util/logging.hh"
#include "util/thread_name.hh"

namespace lag::engine
{

namespace
{

struct IngestMetrics
{
    obs::Counter &epochs;
    obs::Counter &records;
    obs::Counter &publishes;
    obs::Gauge &backlogBytes;
    obs::Gauge &lagMs;
};

IngestMetrics &
ingestMetrics()
{
    static IngestMetrics metrics{
        obs::metrics().counter("ingest.epochs"),
        obs::metrics().counter("ingest.records"),
        obs::metrics().counter("ingest.publishes"),
        obs::metrics().gauge("ingest.backlog.bytes"),
        obs::metrics().gauge("ingest.lag.ms"),
    };
    return metrics;
}

void
appendJsonString(std::string &out, std::string_view value)
{
    out += '"';
    out += core::jsonEscape(value);
    out += '"';
}

} // namespace

IngestPipeline::IngestPipeline(ThreadPool &pool,
                               IngestOptions options,
                               PublishFn publish)
    : pool_(pool), options_(options), publish_(std::move(publish))
{
}

IngestPipeline::~IngestPipeline() { stop(); }

void
IngestPipeline::addSource(const std::string &path)
{
    MutexLock lock(mutex_);
    for (const auto &source : sources_) {
        if (source->tailer.path() == path)
            return;
    }
    sources_.push_back(std::make_unique<Source>(path));
}

void
IngestPipeline::addDirectory(const std::string &dir)
{
    MutexLock lock(mutex_);
    if (std::find(directories_.begin(), directories_.end(), dir) ==
        directories_.end())
        directories_.push_back(dir);
}

std::size_t
IngestPipeline::scanDirectory(const std::string &dir)
{
    std::vector<std::string> found;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return 0; // directory may not exist yet; rescan next epoch
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        if (entry.path().extension() == ".lag")
            found.push_back(entry.path().string());
    }
    // Deterministic source order regardless of directory iteration
    // order, so replays publish in a stable sequence.
    std::sort(found.begin(), found.end());
    std::size_t added = 0;
    for (const std::string &path : found) {
        MutexLock lock(mutex_);
        bool known = false;
        for (const auto &source : sources_) {
            if (source->tailer.path() == path) {
                known = true;
                break;
            }
        }
        if (!known) {
            sources_.push_back(std::make_unique<Source>(path));
            ++added;
        }
    }
    return added;
}

std::size_t
IngestPipeline::runEpoch()
{
    const std::int64_t epoch_start = processElapsedNs();
    LAG_SPAN("ingest.epoch");

    std::vector<Pending> pending;
    std::uint64_t epoch_number = 0;
    std::uint64_t new_records = 0;
    std::uint64_t backlog = 0;

    // Phase 1 — poll every tailer and snapshot the advanced ones.
    {
        MutexLock lock(mutex_);
        epoch_number = ++epoch_;
        pending.reserve(sources_.size());
        for (auto &source : sources_) {
            if (!source->error.empty())
                continue;
            obs::TraceContextScope scope(source->context);
            trace::TailStatus status = trace::TailStatus::Waiting;
            try {
                status = source->tailer.poll();
            } catch (const trace::TraceError &e) {
                // Quarantine: the file can never become valid, but
                // the other sources keep flowing.
                source->error = e.what();
                warn("ingest: source '", source->tailer.path(),
                     "' is corrupt: ", e.what());
                continue;
            }
            if (status == trace::TailStatus::Restarted) {
                source->lastAnalyzedRecords = 0;
                source->publishedComplete = false;
            }
            backlog += source->tailer.backlogBytes();
            const std::uint64_t records =
                source->tailer.recordsDecoded();
            const bool complete = source->tailer.complete();
            const bool fresh =
                records != source->lastAnalyzedRecords ||
                (complete && !source->publishedComplete);
            if (!source->tailer.analyzable() || !fresh ||
                source->publishedComplete)
                continue;
            new_records += records - std::min(
                records, source->lastAnalyzedRecords);
            Pending item;
            item.source = source.get();
            item.snapshot = source->tailer.snapshot();
            item.complete = complete;
            item.update.path = source->tailer.path();
            item.update.complete = complete;
            item.update.epoch = epoch_number;
            pending.push_back(std::move(item));
            source->lastAnalyzedRecords = records;
        }
    }

    // Phase 2 — analyze off-lock, fanned out across the pool. Each
    // task writes only its own index-addressed slot.
    parallelFor(pool_, pending.size(), [&](std::size_t i) {
        Pending &item = pending[i];
        obs::TraceContextScope scope(item.source->context);
        LAG_SPAN_ARG("ingest.analyze", "events",
                     item.snapshot.events.size());
        try {
            core::Session session =
                core::Session::fromTrace(std::move(item.snapshot));
            item.update.appName = session.meta().appName;
            item.update.sessionIndex = session.meta().sessionIndex;
            item.update.analysis = analyzeSession(
                session, options_.perceptibleThreshold);
            item.ok = true;
        } catch (const trace::TraceError &e) {
            item.error = e.what();
        }
    });

    // Phase 3 — commit per-source bookkeeping under the lock.
    {
        MutexLock lock(mutex_);
        for (Pending &item : pending) {
            if (!item.ok) {
                if (!item.error.empty()) {
                    item.source->error = item.error;
                    warn("ingest: source '", item.update.path,
                         "' failed analysis: ", item.error);
                }
                continue;
            }
            item.source->publishedComplete = item.complete;
            ++item.source->epochsPublished;
        }
    }

    // Phase 4 — publish with no pipeline lock held (the callback
    // may take Serve-ranked locks above ours).
    std::size_t published = 0;
    for (Pending &item : pending) {
        if (!item.ok)
            continue;
        obs::TraceContextScope scope(item.source->context);
        LAG_SPAN("ingest.publish");
        if (publish_)
            publish_(item.update);
        ++published;
    }

    const std::int64_t lag_ms =
        (processElapsedNs() - epoch_start) / 1'000'000;
    {
        MutexLock lock(mutex_);
        lastEpochLagMs_ = lag_ms;
    }
    IngestMetrics &metrics = ingestMetrics();
    metrics.epochs.add(1);
    metrics.records.add(new_records);
    metrics.publishes.add(published);
    metrics.backlogBytes.set(static_cast<std::int64_t>(backlog));
    metrics.lagMs.set(lag_ms);
    return published;
}

void
IngestPipeline::start()
{
    if (driverRunning_)
        return;
    {
        MutexLock lock(driverMutex_);
        stopRequested_ = false;
    }
    driver_ = std::thread([this] { driverLoop(); });
    driverRunning_ = true;
}

void
IngestPipeline::stop()
{
    if (!driverRunning_)
        return;
    {
        MutexLock lock(driverMutex_);
        stopRequested_ = true;
    }
    driverWake_.notify_all();
    driver_.join();
    driverRunning_ = false;
}

void
IngestPipeline::driverLoop()
{
    setThreadName("ingest-driver");
    for (;;) {
        {
            MutexLock lock(driverMutex_);
            if (stopRequested_)
                return;
        }
        std::vector<std::string> dirs;
        {
            MutexLock lock(mutex_);
            dirs = directories_;
        }
        for (const std::string &dir : dirs)
            scanDirectory(dir);
        runEpoch();
        MutexLock lock(driverMutex_);
        if (stopRequested_)
            return;
        driverWake_.wait_for(
            lock, std::chrono::milliseconds(options_.epochMillis));
    }
}

bool
IngestPipeline::allComplete() const
{
    MutexLock lock(mutex_);
    if (sources_.empty())
        return false;
    for (const auto &source : sources_) {
        if (source->error.empty() && !source->tailer.complete())
            return false;
    }
    return true;
}

std::uint64_t
IngestPipeline::epoch() const
{
    MutexLock lock(mutex_);
    return epoch_;
}

std::vector<IngestSourceStatus>
IngestPipeline::status() const
{
    MutexLock lock(mutex_);
    std::vector<IngestSourceStatus> out;
    out.reserve(sources_.size());
    for (const auto &source : sources_) {
        IngestSourceStatus entry;
        entry.path = source->tailer.path();
        if (source->tailer.hasMeta()) {
            entry.appName = source->tailer.meta().appName;
            entry.sessionIndex = source->tailer.meta().sessionIndex;
        }
        entry.analyzable = source->tailer.analyzable();
        entry.complete = source->tailer.complete();
        entry.cursorBytes = source->tailer.cursor();
        entry.knownSizeBytes = source->tailer.knownSize();
        entry.backlogBytes = source->tailer.backlogBytes();
        entry.recordsDecoded = source->tailer.recordsDecoded();
        entry.restarts = source->tailer.restarts();
        entry.epochsPublished = source->epochsPublished;
        entry.error = source->error;
        out.push_back(std::move(entry));
    }
    return out;
}

std::string
IngestPipeline::statusJson() const
{
    const std::vector<IngestSourceStatus> sources = status();
    std::uint64_t epoch_number = 0;
    std::int64_t lag_ms = 0;
    {
        MutexLock lock(mutex_);
        epoch_number = epoch_;
        lag_ms = lastEpochLagMs_;
    }
    bool all_complete = !sources.empty();
    for (const IngestSourceStatus &entry : sources) {
        if (entry.error.empty() && !entry.complete)
            all_complete = false;
    }
    std::string out = "{\"epoch\":";
    out += std::to_string(epoch_number);
    out += ",\"lag_ms\":";
    out += std::to_string(lag_ms);
    out += ",\"sources\":[";
    for (std::size_t i = 0; i < sources.size(); ++i) {
        const IngestSourceStatus &entry = sources[i];
        if (i > 0)
            out += ',';
        out += "{\"path\":";
        appendJsonString(out, entry.path);
        out += ",\"app\":";
        appendJsonString(out, entry.appName);
        out += ",\"session\":";
        out += std::to_string(entry.sessionIndex);
        out += ",\"analyzable\":";
        out += entry.analyzable ? "true" : "false";
        out += ",\"complete\":";
        out += entry.complete ? "true" : "false";
        out += ",\"cursor\":";
        out += std::to_string(entry.cursorBytes);
        out += ",\"size\":";
        out += std::to_string(entry.knownSizeBytes);
        out += ",\"backlog\":";
        out += std::to_string(entry.backlogBytes);
        out += ",\"records\":";
        out += std::to_string(entry.recordsDecoded);
        out += ",\"restarts\":";
        out += std::to_string(entry.restarts);
        out += ",\"epochs_published\":";
        out += std::to_string(entry.epochsPublished);
        out += ",\"error\":";
        appendJsonString(out, entry.error);
        out += '}';
    }
    out += "],\"all_complete\":";
    out += all_complete ? "true" : "false";
    out += '}';
    return out;
}

} // namespace lag::engine
