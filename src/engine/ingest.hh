/**
 * @file
 * Live-ingest pipeline: stream growing trace files into analyses.
 *
 * IngestPipeline owns one trace::TraceTailer per followed file and
 * periodically cuts an **epoch**: poll every tailer for newly
 * appended records, rebuild the sessions that advanced, re-run the
 * full per-session analysis (engine::analyzeSession — the same
 * function the batch path uses), and hand each fresh
 * SessionAnalysis to the publish callback. The callback side (for
 * lagd, serve::HotStore::applyIngest) merges the partial-session v2
 * summaries into the hot aggregate with core::mergeAnalyses, so a
 * session is queryable while it is still running.
 *
 * Batch-equivalence contract: once a source's writer finishes, the
 * tailer's snapshot is byte-for-byte the Trace the batch reader
 * produces, analyzeSession is deterministic, and the final
 * published SessionAnalysis serializes to exactly the bytes the
 * batch pipeline caches. tests/engine_ingest_test.cc proves it per
 * example app across chunk sizes and pool widths.
 *
 * Epochs run either synchronously (runEpoch(), what the tests and
 * benchmarks drive) or on a driver thread (start()/stop(), what
 * `lagd --follow` uses). Analysis fans out across the provided
 * ThreadPool via parallelFor; the pipeline's own mutex
 * (LockRank::Ingest) is held only while polling tailers and
 * mutating status — never across analysis or publish.
 *
 * A corrupt source (TraceError kind Corrupt) is quarantined: its
 * error is recorded in the status, the tailer is left where it
 * stopped, and the pipeline keeps serving the other sources.
 */

#ifndef LAG_ENGINE_INGEST_HH
#define LAG_ENGINE_INGEST_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_context.hh"
#include "pool.hh"
#include "result_cache.hh"
#include "trace/tailer.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::engine
{

/** Pipeline knobs. */
struct IngestOptions
{
    /** Perceptibility threshold fed to analyzeSession (same knob as
     * app::StudyConfig::perceptibleThreshold). */
    DurationNs perceptibleThreshold = 100'000'000;

    /** Driver-thread epoch cadence for start(); runEpoch() callers
     * pace themselves. */
    std::int64_t epochMillis = 100;
};

/** One followed file's externally visible state. */
struct IngestSourceStatus
{
    std::string path;
    std::string appName;     ///< empty until the meta record lands
    std::uint32_t sessionIndex = 0;
    bool analyzable = false;
    bool complete = false;
    std::uint64_t cursorBytes = 0;
    std::uint64_t knownSizeBytes = 0;
    std::uint64_t backlogBytes = 0;
    std::uint64_t recordsDecoded = 0;
    std::uint64_t restarts = 0;
    std::uint64_t epochsPublished = 0;
    std::string error; ///< non-empty once quarantined as corrupt
};

/** One published partial- or complete-session analysis. */
struct IngestUpdate
{
    std::string path;
    std::string appName;
    std::uint32_t sessionIndex = 0;
    bool complete = false;
    std::uint64_t epoch = 0;
    SessionAnalysis analysis;
};

/** See the file comment. */
class IngestPipeline
{
  public:
    using PublishFn = std::function<void(const IngestUpdate &)>;

    /** @param pool analysis fan-out substrate; @param publish
     * receives every fresh analysis, called with no pipeline lock
     * held (it may take higher-ranked locks, e.g. Serve). */
    IngestPipeline(ThreadPool &pool, IngestOptions options,
                   PublishFn publish);

    /** Stops the driver thread if running. */
    ~IngestPipeline();

    IngestPipeline(const IngestPipeline &) = delete;
    IngestPipeline &operator=(const IngestPipeline &) = delete;

    /** Follow @p path (a trace file, possibly not yet created). */
    void addSource(const std::string &path);

    /**
     * Scan @p dir for `*.lag` files and follow any not yet known.
     * Returns how many new sources were added. Called per epoch by
     * the driver so files that appear later are picked up.
     */
    std::size_t scanDirectory(const std::string &dir);

    /**
     * Cut one epoch synchronously: poll every source, analyze the
     * ones that advanced (in parallel on the pool), publish their
     * updates. Returns the number of updates published.
     */
    std::size_t runEpoch();

    /** Launch the driver thread: runEpoch every epochMillis, plus a
     * directory rescan when follow directories are configured. */
    void start();

    /** Stop and join the driver thread (idempotent). */
    void stop();

    /** Follow @p dir: scanned at start() and then every epoch. */
    void addDirectory(const std::string &dir);

    /** True when at least one source exists and every non-failed
     * source has decoded its whole file. */
    bool allComplete() const;

    /** Epochs cut so far. */
    std::uint64_t epoch() const;

    /** Per-source state snapshot. */
    std::vector<IngestSourceStatus> status() const;

    /** `/v1/ingest` body: epoch, totals and per-source state. */
    std::string statusJson() const;

  private:
    struct Source
    {
        explicit Source(const std::string &path)
            : tailer(path), context(obs::mintTraceContext())
        {
        }

        trace::TraceTailer tailer;
        obs::TraceContext context; ///< spans ingest work per source
        std::uint64_t lastAnalyzedRecords = 0;
        bool publishedComplete = false;
        std::uint64_t epochsPublished = 0;
        std::string error;
    };

    /** Work item carried from the poll phase to the analyze one. */
    struct Pending
    {
        Source *source = nullptr;
        trace::Trace snapshot;
        bool complete = false;
        IngestUpdate update; ///< analysis filled in by the fan-out
        bool ok = false;
        std::string error; ///< analysis failure, if any
    };

    void driverLoop();

    ThreadPool &pool_;
    IngestOptions options_;
    PublishFn publish_;

    /** Touched only by the start()/stop() caller thread, never by
     * the driver — no lock needed. */
    bool driverRunning_ = false;

    mutable Mutex mutex_{LockRank::Ingest, "engine-ingest"};
    std::vector<std::unique_ptr<Source>> sources_
        LAG_GUARDED_BY(mutex_);
    std::vector<std::string> directories_ LAG_GUARDED_BY(mutex_);
    std::uint64_t epoch_ LAG_GUARDED_BY(mutex_) = 0;
    std::int64_t lastEpochLagMs_ LAG_GUARDED_BY(mutex_) = 0;

    Mutex driverMutex_{LockRank::Client, "engine-ingest-driver"};
    bool stopRequested_ LAG_GUARDED_BY(driverMutex_) = false;
    std::condition_variable_any driverWake_;
    std::thread driver_;
};

} // namespace lag::engine

#endif // LAG_ENGINE_INGEST_HH
