#include "pool.hh"

#include <utility>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "util/logging.hh"
#include "util/thread_name.hh"

namespace lag::engine
{

namespace
{

/** Which pool (if any) the current thread works for. */
struct WorkerContext
{
    ThreadPool *pool = nullptr;
    std::size_t index = 0;
};

thread_local WorkerContext t_worker;

/** Pool instruments; looked up once, then pure atomics. */
struct PoolMetrics
{
    obs::Counter &taskCount =
        obs::metrics().counter("pool.task.count");
    obs::Counter &stealSuccess =
        obs::metrics().counter("pool.steal.success");
    obs::Counter &stealFail =
        obs::metrics().counter("pool.steal.fail");
    obs::Gauge &queueDepth =
        obs::metrics().gauge("pool.queue.depth");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics metrics;
    return metrics;
}

} // namespace

std::size_t
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    const std::size_t count =
        workers == 0 ? defaultConcurrency() : workers;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    try {
        waitIdle();
    } catch (const std::exception &e) {
        warn("thread pool destroyed with a failed task: ", e.what());
    }
    {
        MutexLock lock(injectorMutex_);
        stop_ = true;
        ++version_;
    }
    wakeCv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    lag_assert(task != nullptr, "null task submitted to pool");
    // Carry the submitter's request context into whichever worker
    // runs the task. This is the single propagation point: TaskGraph
    // dependents and parallelFor splits are submitted from inside
    // already-scoped worker tasks, so they inherit transitively.
    const obs::TraceContext ctx = obs::currentTraceContext();
    if (ctx.active()) {
        task = [ctx, inner = std::move(task)] {
            obs::TraceContextScope scope(ctx);
            inner();
        };
    }
    {
        MutexLock lock(idleMutex_);
        ++pending_;
    }
    std::size_t depth = 0;
    if (t_worker.pool == this) {
        Worker &self = *workers_[t_worker.index];
        {
            MutexLock lock(self.mutex);
            self.deque.push_back(std::move(task));
            depth = self.deque.size();
        }
        MutexLock lock(injectorMutex_);
        ++version_;
    } else {
        MutexLock lock(injectorMutex_);
        injector_.push_back(std::move(task));
        depth = injector_.size();
        ++version_;
    }
    // Depth of the queue just pushed: a cheap proxy for backlog,
    // tracked for its high-water mark (pool.queue.depth max).
    poolMetrics().queueDepth.set(static_cast<std::int64_t>(depth));
    wakeCv_.notify_one();
}

void
ThreadPool::waitIdle()
{
    lag_assert(t_worker.pool != this,
               "waitIdle called from a worker of the same pool");
    MutexLock lock(idleMutex_);
    while (pending_ != 0)
        idleCv_.wait(lock);
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

bool
ThreadPool::popOwn(std::size_t index, Task &task)
{
    Worker &self = *workers_[index];
    MutexLock lock(self.mutex);
    if (self.deque.empty())
        return false;
    task = std::move(self.deque.back());
    self.deque.pop_back();
    // Keep the backlog gauge falling as queues drain, so a stale
    // positive depth can't read as a stall (see obs::Watchdog).
    poolMetrics().queueDepth.set(
        static_cast<std::int64_t>(self.deque.size()));
    return true;
}

bool
ThreadPool::popInjected(Task &task)
{
    MutexLock lock(injectorMutex_);
    if (injector_.empty())
        return false;
    task = std::move(injector_.front());
    injector_.pop_front();
    poolMetrics().queueDepth.set(
        static_cast<std::int64_t>(injector_.size()));
    return true;
}

bool
ThreadPool::steal(std::size_t thief, Task &task)
{
    const std::size_t n = workers_.size();
    for (std::size_t hop = 1; hop < n; ++hop) {
        Worker &victim = *workers_[(thief + hop) % n];
        MutexLock lock(victim.mutex);
        if (!victim.deque.empty()) {
            task = std::move(victim.deque.front());
            victim.deque.pop_front();
            poolMetrics().queueDepth.set(
                static_cast<std::int64_t>(victim.deque.size()));
            poolMetrics().stealSuccess.add();
            return true;
        }
    }
    // Count only full scans that came up empty, and only on pools
    // where stealing is possible at all.
    if (n > 1)
        poolMetrics().stealFail.add();
    return false;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    t_worker = WorkerContext{this, index};
    // Name the thread before its first span or log line so both
    // carry "pool-worker-N" instead of a bare id.
    setThreadName("pool-worker-" + std::to_string(index));
    for (;;) {
        std::uint64_t seen;
        {
            MutexLock lock(injectorMutex_);
            if (stop_)
                return;
            seen = version_;
        }
        Task task;
        if (popOwn(index, task) || popInjected(task) ||
            steal(index, task)) {
            runTask(task);
            continue;
        }
        // Sleep only if no submit happened since the scan above;
        // every submit bumps version_ under injectorMutex_.
        LAG_SPAN("pool.idle");
        MutexLock lock(injectorMutex_);
        while (!stop_ && version_ == seen)
            wakeCv_.wait(lock);
        if (stop_)
            return;
    }
}

void
ThreadPool::runTask(Task &task)
{
    poolMetrics().taskCount.add();
    try {
        LAG_SPAN("pool.task");
        task();
    } catch (...) {
        MutexLock lock(idleMutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    // Destroy captures before accounting so waitIdle() returning
    // implies all task state is gone.
    task = nullptr;
    MutexLock lock(idleMutex_);
    lag_assert(pending_ > 0, "pool task accounting underflow");
    if (--pending_ == 0)
        idleCv_.notify_all();
}

} // namespace lag::engine
