#include "task.hh"

namespace lag::engine
{

const char *
taskStateName(TaskState state)
{
    switch (state) {
      case TaskState::Pending: return "pending";
      case TaskState::Ready:   return "ready";
      case TaskState::Running: return "running";
      case TaskState::Done:    return "done";
      case TaskState::Failed:  return "failed";
      case TaskState::Skipped: return "skipped";
    }
    return "?";
}

} // namespace lag::engine
