#include "study_driver.hh"

#include <numeric>
#include <utility>

#include "graph.hh"
#include "util/logging.hh"

namespace lag::engine
{

StudyDriver::StudyDriver(std::size_t shards,
                         std::size_t items_per_shard)
    : itemsPerShard_(shards, items_per_shard)
{
}

StudyDriver::StudyDriver(std::vector<std::size_t> items_per_shard)
    : itemsPerShard_(std::move(items_per_shard))
{
}

void
StudyDriver::addStage(std::string name, StageFn fn)
{
    lag_assert(fn != nullptr, "null stage added to study driver");
    stages_.push_back(Stage{std::move(name), std::move(fn)});
}

std::size_t
StudyDriver::itemCount() const
{
    return std::accumulate(itemsPerShard_.begin(),
                           itemsPerShard_.end(), std::size_t{0});
}

std::size_t
StudyDriver::completedUnits() const
{
    MutexLock lock(progressMutex_);
    return completed_;
}

void
StudyDriver::run(ThreadPool &pool)
{
    lag_assert(!stages_.empty(), "study driver needs a stage");
    if (itemCount() == 0)
        return;
    TaskGraph graph;
    for (std::size_t shard = 0; shard < itemsPerShard_.size();
         ++shard) {
        for (std::size_t item = 0; item < itemsPerShard_[shard];
             ++item) {
            TaskId prev;
            for (std::size_t k = 0; k < stages_.size(); ++k) {
                std::vector<TaskId> deps;
                if (prev.valid())
                    deps.push_back(prev);
                prev = graph.add(
                    [this, k, shard, item] {
                        stages_[k].fn(shard, item);
                        MutexLock lock(progressMutex_);
                        ++completed_;
                    },
                    std::move(deps), stages_[k].name);
            }
        }
    }
    graph.run(pool);
}

void
parallelFor(ThreadPool &pool, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    TaskGraph graph;
    for (std::size_t i = 0; i < count; ++i)
        graph.add([&fn, i] { fn(i); });
    graph.run(pool);
}

} // namespace lag::engine
