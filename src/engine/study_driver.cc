#include "study_driver.hh"

#include <numeric>
#include <utility>

#include "graph.hh"
#include "obs/span.hh"
#include "util/logging.hh"

namespace lag::engine
{

StudyDriver::StudyDriver(std::size_t shards,
                         std::size_t items_per_shard)
    : itemsPerShard_(shards, items_per_shard)
{
}

StudyDriver::StudyDriver(std::vector<std::size_t> items_per_shard)
    : itemsPerShard_(std::move(items_per_shard))
{
}

void
StudyDriver::addStage(std::string name, StageFn fn)
{
    lag_assert(fn != nullptr, "null stage added to study driver");
    // Intern here, at setup time: span recording inside the stage
    // tasks must not take the obs lock or chase a string that moves
    // when stages_ reallocates.
    const char *span_name = obs::internedName(name);
    stages_.push_back(Stage{std::move(name), span_name,
                            std::move(fn)});
}

std::size_t
StudyDriver::itemCount() const
{
    return std::accumulate(itemsPerShard_.begin(),
                           itemsPerShard_.end(), std::size_t{0});
}

std::size_t
StudyDriver::completedUnits() const
{
    MutexLock lock(progressMutex_);
    return completed_;
}

void
StudyDriver::run(ThreadPool &pool)
{
    lag_assert(!stages_.empty(), "study driver needs a stage");
    if (itemCount() == 0)
        return;
    TaskGraph graph;
    for (std::size_t shard = 0; shard < itemsPerShard_.size();
         ++shard) {
        for (std::size_t item = 0; item < itemsPerShard_[shard];
             ++item) {
            TaskId prev;
            for (std::size_t k = 0; k < stages_.size(); ++k) {
                std::vector<TaskId> deps;
                if (prev.valid())
                    deps.push_back(prev);
                prev = graph.add(
                    [this, k, shard, item] {
                        LAG_SPAN_ARG(stages_[k].spanName, "item",
                                     item);
                        stages_[k].fn(shard, item);
                        MutexLock lock(progressMutex_);
                        ++completed_;
                    },
                    std::move(deps), stages_[k].name);
            }
        }
    }
    graph.run(pool);
}

void
parallelFor(ThreadPool &pool, std::size_t count,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (count == 1) {
        fn(0);
        return;
    }
    // Fork-join split instead of one task per index: a single root
    // task recursively halves its range, pushing the far half onto
    // the running worker's own deque and keeping the near half.
    // That leaves work where idle workers can steal it (one flat
    // injector queue never produces a steal — the injector is
    // shared, not owned), so load balance comes from the pool's
    // steal path and the steal counters reflect reality. Results
    // stay deterministic: fn still sees every index exactly once
    // and writes to index-addressed slots per the contract above.
    std::function<void(std::size_t, std::size_t)> run_range =
        [&pool, &run_range, &fn](std::size_t begin,
                                 std::size_t end) {
            while (end - begin > 1) {
                const std::size_t mid = begin + (end - begin) / 2;
                pool.submit([&run_range, mid, end] {
                    run_range(mid, end);
                });
                end = mid;
            }
            fn(begin);
        };
    // Capture by reference is safe: waitIdle() below outlives every
    // spawned task.
    pool.submit([&run_range, count] { run_range(0, count); });
    pool.waitIdle();
}

} // namespace lag::engine
