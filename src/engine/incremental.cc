#include "incremental.hh"

#include <atomic>
#include <utility>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "study_driver.hh"
#include "util/logging.hh"

namespace lag::engine
{

namespace
{

/** Aggregation instruments; looked up once, then pure atomics. */
struct AggregateMetrics
{
    obs::Counter &cached =
        obs::metrics().counter("cache.aggregate.cached");
    obs::Counter &recomputed =
        obs::metrics().counter("cache.aggregate.recomputed");
};

AggregateMetrics &
aggregateMetrics()
{
    static AggregateMetrics metrics;
    return metrics;
}

} // namespace

StudyAggregate
aggregateFromCache(const ResultCache &cache,
                   const std::vector<std::string> &app_names,
                   std::uint32_t sessions_per_app,
                   DurationNs perceptible_threshold, ThreadPool &pool,
                   const SessionLoader &load_session,
                   const AggregateOptions &options)
{
    LAG_SPAN_ARG("cache.aggregate", "sessions",
                 app_names.size() * sessions_per_app);
    lag_assert(load_session != nullptr,
               "aggregateFromCache needs a session loader");

    StudyAggregate out;
    out.grid.resize(app_names.size());
    for (auto &row : out.grid)
        row.resize(sessions_per_app);

    // Counted from pool workers; only read after the driver
    // settled, so relaxed ordering suffices.
    std::atomic<std::size_t> from_cache{0};
    std::atomic<std::size_t> recomputed{0};

    StudyDriver driver(app_names.size(), sessions_per_app);
    driver.addStage("aggregate", [&](std::size_t a, std::size_t i) {
        const auto s = static_cast<std::uint32_t>(i);
        if (options.incremental) {
            if (auto hit = cache.load(app_names[a], s)) {
                out.grid[a][i] = std::move(*hit);
                from_cache.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        const core::Session session = load_session(a, s);
        out.grid[a][i] =
            analyzeSession(session, perceptible_threshold);
        if (options.incremental)
            cache.store(app_names[a], s, out.grid[a][i]);
        recomputed.fetch_add(1, std::memory_order_relaxed);
    });
    driver.run(pool);

    out.sessionsFromCache =
        from_cache.load(std::memory_order_relaxed);
    out.sessionsRecomputed =
        recomputed.load(std::memory_order_relaxed);
    aggregateMetrics().cached.add(out.sessionsFromCache);
    aggregateMetrics().recomputed.add(out.sessionsRecomputed);

    // Serial merge in [app][session] order: scheduling can never
    // leak into the result, and the summaries are exactly what
    // mergePatternSets would have seen — byte-identical output.
    LAG_SPAN_ARG("cache.aggregate.merge", "apps", app_names.size());
    out.merged.reserve(app_names.size());
    for (std::size_t a = 0; a < app_names.size(); ++a) {
        std::vector<core::PatternSetSummary> summaries;
        summaries.reserve(sessions_per_app);
        for (const SessionAnalysis &analysis : out.grid[a])
            summaries.push_back(analysis.patternSummary);
        out.merged.push_back(core::mergeAnalyses(summaries));
    }
    return out;
}

} // namespace lag::engine
