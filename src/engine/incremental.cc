#include "incremental.hh"

#include <atomic>
#include <utility>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "study_driver.hh"
#include "util/logging.hh"

namespace lag::engine
{

namespace
{

/** Aggregation instruments; looked up once, then pure atomics. */
struct AggregateMetrics
{
    obs::Counter &cached =
        obs::metrics().counter("cache.aggregate.cached");
    obs::Counter &recomputed =
        obs::metrics().counter("cache.aggregate.recomputed");
};

AggregateMetrics &
aggregateMetrics()
{
    static AggregateMetrics metrics;
    return metrics;
}

} // namespace

StudyAggregate
aggregateFromCache(const ResultCache &cache,
                   const std::vector<std::string> &app_names,
                   std::uint32_t sessions_per_app,
                   DurationNs perceptible_threshold, ThreadPool &pool,
                   const SessionLoader &load_session,
                   const AggregateOptions &options)
{
    LAG_SPAN_ARG("cache.aggregate", "sessions",
                 app_names.size() * sessions_per_app);
    lag_assert(load_session != nullptr,
               "aggregateFromCache needs a session loader");

    StudyAggregate out;
    out.grid.resize(app_names.size());
    for (auto &row : out.grid)
        row.resize(sessions_per_app);

    // Counted from pool workers; only read after the driver
    // settled, so relaxed ordering suffices.
    std::atomic<std::size_t> from_cache{0};
    std::atomic<std::size_t> recomputed{0};

    StudyDriver driver(app_names.size(), sessions_per_app);
    driver.addStage("aggregate", [&](std::size_t a, std::size_t i) {
        const auto s = static_cast<std::uint32_t>(i);
        if (options.incremental) {
            if (auto hit = cache.load(app_names[a], s)) {
                out.grid[a][i] = std::move(*hit);
                from_cache.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        const core::Session session = load_session(a, s);
        out.grid[a][i] =
            analyzeSession(session, perceptible_threshold);
        if (options.incremental)
            cache.store(app_names[a], s, out.grid[a][i]);
        recomputed.fetch_add(1, std::memory_order_relaxed);
    });
    driver.run(pool);

    out.sessionsFromCache =
        from_cache.load(std::memory_order_relaxed);
    out.sessionsRecomputed =
        recomputed.load(std::memory_order_relaxed);
    aggregateMetrics().cached.add(out.sessionsFromCache);
    aggregateMetrics().recomputed.add(out.sessionsRecomputed);

    // Serial merge in [app][session] order: scheduling can never
    // leak into the result, and the summaries are exactly what
    // mergePatternSets would have seen — byte-identical output.
    LAG_SPAN_ARG("cache.aggregate.merge", "apps", app_names.size());
    out.merged.reserve(app_names.size());
    for (std::size_t a = 0; a < app_names.size(); ++a) {
        std::vector<core::PatternSetSummary> summaries;
        summaries.reserve(sessions_per_app);
        for (const SessionAnalysis &analysis : out.grid[a])
            summaries.push_back(analysis.patternSummary);
        out.merged.push_back(core::mergeAnalyses(summaries));
    }
    return out;
}

AppAggregate
aggregateAppFromCache(const ResultCache &cache,
                      const std::string &app_name,
                      std::size_t app_index,
                      std::uint32_t sessions_per_app,
                      DurationNs perceptible_threshold,
                      const SessionLoader &load_session,
                      const AggregateOptions &options)
{
    LAG_SPAN_ARG("cache.aggregate.app", "sessions",
                 sessions_per_app);
    lag_assert(load_session != nullptr,
               "aggregateAppFromCache needs a session loader");

    AppAggregate out;
    out.sessions.reserve(sessions_per_app);
    for (std::uint32_t s = 0; s < sessions_per_app; ++s) {
        if (options.incremental) {
            if (auto hit = cache.load(app_name, s)) {
                out.sessions.push_back(std::move(*hit));
                ++out.sessionsFromCache;
                continue;
            }
        }
        const core::Session session = load_session(app_index, s);
        out.sessions.push_back(
            analyzeSession(session, perceptible_threshold));
        if (options.incremental)
            cache.store(app_name, s, out.sessions.back());
        ++out.sessionsRecomputed;
    }
    aggregateMetrics().cached.add(out.sessionsFromCache);
    aggregateMetrics().recomputed.add(out.sessionsRecomputed);

    std::vector<core::PatternSetSummary> summaries;
    summaries.reserve(out.sessions.size());
    for (const SessionAnalysis &analysis : out.sessions)
        summaries.push_back(analysis.patternSummary);
    out.merged = core::mergeAnalyses(summaries);
    return out;
}

core::AppFigureData
averageSessionAnalyses(std::string name,
                       const std::vector<SessionAnalysis> &sessions)
{
    core::AppFigureData result;
    result.name = std::move(name);
    result.cdfEpisodesAtPatternPercent.assign(101, 0.0);

    // The accumulation order and the per-session /n division are
    // the historical bench::analyzeStudy arithmetic, kept verbatim:
    // figure bytes must not move under this refactor.
    std::vector<core::OverviewRow> rows;
    const auto n = static_cast<double>(sessions.size());
    for (const SessionAnalysis &sa : sessions) {
        rows.push_back(sa.overview);
        const auto cdf = core::resampleCdf(sa.cdf);

        const auto add_shares = [&](core::TriggerShares &dst,
                                    const core::TriggerShares &src) {
            dst.input += src.input / n;
            dst.output += src.output / n;
            dst.async += src.async / n;
            dst.unspecified += src.unspecified / n;
            dst.episodeCount += src.episodeCount;
        };
        add_shares(result.triggers.all, sa.triggers.all);
        add_shares(result.triggers.perceptible,
                   sa.triggers.perceptible);

        const auto add_location = [&](core::LocationShares &dst,
                                      const core::LocationShares &src) {
            dst.appFraction += src.appFraction / n;
            dst.libraryFraction += src.libraryFraction / n;
            dst.gcFraction += src.gcFraction / n;
            dst.nativeFraction += src.nativeFraction / n;
            dst.sampleCount += src.sampleCount;
            dst.episodeCount += src.episodeCount;
        };
        add_location(result.location.all, sa.location.all);
        add_location(result.location.perceptible,
                     sa.location.perceptible);

        result.concurrency.meanRunnableAll +=
            sa.concurrency.meanRunnableAll / n;
        result.concurrency.meanRunnablePerceptible +=
            sa.concurrency.meanRunnablePerceptible / n;
        result.concurrency.samplesAll += sa.concurrency.samplesAll;
        result.concurrency.samplesPerceptible +=
            sa.concurrency.samplesPerceptible;

        const auto add_states = [&](core::GuiStateShares &dst,
                                    const core::GuiStateShares &src) {
            dst.blocked += src.blocked / n;
            dst.waiting += src.waiting / n;
            dst.sleeping += src.sleeping / n;
            dst.runnable += src.runnable / n;
            dst.sampleCount += src.sampleCount;
        };
        add_states(result.states.all, sa.states.all);
        add_states(result.states.perceptible,
                   sa.states.perceptible);

        result.occurrence.always += sa.occurrence.always / n;
        result.occurrence.sometimes += sa.occurrence.sometimes / n;
        result.occurrence.once += sa.occurrence.once / n;
        result.occurrence.never += sa.occurrence.never / n;
        result.occurrence.patternCount +=
            sa.occurrence.patternCount;

        for (int x = 0; x <= 100; ++x) {
            result.cdfEpisodesAtPatternPercent
                [static_cast<std::size_t>(x)] +=
                cdf[static_cast<std::size_t>(x)] / n;
        }
    }
    result.overview = core::meanOverview(rows);
    return result;
}

} // namespace lag::engine
