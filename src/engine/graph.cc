#include "graph.hh"

#include <utility>

#include "util/logging.hh"

namespace lag::engine
{

TaskId
TaskGraph::add(Task fn, std::vector<TaskId> deps, std::string label)
{
    lag_assert(!ran_, "cannot add tasks to a graph that ran");
    lag_assert(fn != nullptr, "null task added to graph");
    MutexLock lock(mutex_);
    const auto index = static_cast<std::uint32_t>(nodes_.size());
    TaskNode node;
    node.fn = std::move(fn);
    node.label = std::move(label);
    for (const TaskId dep : deps) {
        lag_assert(dep.valid() && dep.value < index,
                   "graph dependency must name an earlier task");
        nodes_[dep.value].dependents.push_back(index);
        ++node.remainingDeps;
    }
    nodes_.push_back(std::move(node));
    return TaskId{index};
}

std::size_t
TaskGraph::size() const
{
    MutexLock lock(mutex_);
    return nodes_.size();
}

TaskState
TaskGraph::state(TaskId id) const
{
    MutexLock lock(mutex_);
    lag_assert(id.valid() && id.value < nodes_.size(),
               "bad task id");
    return nodes_[id.value].state;
}

void
TaskGraph::run(ThreadPool &pool)
{
    lag_assert(!ran_, "TaskGraph::run is one-shot");
    ran_ = true;

    std::vector<std::uint32_t> ready;
    std::size_t node_count = 0;
    {
        MutexLock lock(mutex_);
        node_count = nodes_.size();
        for (std::uint32_t i = 0; i < node_count; ++i) {
            if (nodes_[i].remainingDeps == 0) {
                nodes_[i].state = TaskState::Ready;
                ready.push_back(i);
            }
        }
    }
    if (node_count == 0)
        return;
    lag_assert(!ready.empty(), "graph has no dependency-free task");
    for (const std::uint32_t index : ready)
        submitNode(pool, index);

    MutexLock lock(mutex_);
    while (settled_ != nodes_.size())
        doneCv_.wait(lock);
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
TaskGraph::submitNode(ThreadPool &pool, std::uint32_t index)
{
    pool.submit([this, &pool, index] {
        Task *fn = nullptr;
        {
            MutexLock lock(mutex_);
            TaskNode &node = nodes_[index];
            node.state = TaskState::Running;
            // The callable is stable once the node is Running:
            // nobody mutates node.fn until the graph is destroyed,
            // and nodes_ never reallocates after run() started.
            fn = &node.fn;
        }
        bool failed = false;
        try {
            (*fn)();
        } catch (...) {
            failed = true;
            MutexLock lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        onNodeDone(pool, index, failed);
    });
}

void
TaskGraph::onNodeDone(ThreadPool &pool, std::uint32_t index,
                      bool failed)
{
    std::vector<std::uint32_t> ready;
    {
        MutexLock lock(mutex_);
        TaskNode &node = nodes_[index];
        node.state = failed ? TaskState::Failed : TaskState::Done;
        ++settled_;
        if (failed) {
            // Skip every transitive dependent; each settles once.
            std::vector<std::uint32_t> stack(node.dependents);
            while (!stack.empty()) {
                const std::uint32_t d = stack.back();
                stack.pop_back();
                TaskNode &dep = nodes_[d];
                if (dep.state != TaskState::Pending)
                    continue;
                dep.state = TaskState::Skipped;
                ++settled_;
                stack.insert(stack.end(), dep.dependents.begin(),
                             dep.dependents.end());
            }
        } else {
            for (const std::uint32_t d : node.dependents) {
                TaskNode &dep = nodes_[d];
                if (dep.state != TaskState::Pending)
                    continue;
                lag_assert(dep.remainingDeps > 0,
                           "dependency countdown underflow");
                if (--dep.remainingDeps == 0) {
                    dep.state = TaskState::Ready;
                    ready.push_back(d);
                }
            }
        }
        if (settled_ == nodes_.size())
            doneCv_.notify_all();
    }
    for (const std::uint32_t d : ready)
        submitNode(pool, d);
}

} // namespace lag::engine
