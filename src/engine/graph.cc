#include "graph.hh"

#include <utility>

#include "util/logging.hh"

namespace lag::engine
{

TaskId
TaskGraph::add(Task fn, std::vector<TaskId> deps, std::string label)
{
    lag_assert(!ran_, "cannot add tasks to a graph that ran");
    lag_assert(fn != nullptr, "null task added to graph");
    const auto index = static_cast<std::uint32_t>(nodes_.size());
    TaskNode node;
    node.fn = std::move(fn);
    node.label = std::move(label);
    for (const TaskId dep : deps) {
        lag_assert(dep.valid() && dep.value < index,
                   "graph dependency must name an earlier task");
        nodes_[dep.value].dependents.push_back(index);
        ++node.remainingDeps;
    }
    nodes_.push_back(std::move(node));
    return TaskId{index};
}

TaskState
TaskGraph::state(TaskId id) const
{
    lag_assert(id.valid() && id.value < nodes_.size(),
               "bad task id");
    return nodes_[id.value].state;
}

void
TaskGraph::run(ThreadPool &pool)
{
    lag_assert(!ran_, "TaskGraph::run is one-shot");
    ran_ = true;
    if (nodes_.empty())
        return;

    std::vector<std::uint32_t> ready;
    {
        std::lock_guard lock(mutex_);
        for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
            if (nodes_[i].remainingDeps == 0) {
                nodes_[i].state = TaskState::Ready;
                ready.push_back(i);
            }
        }
    }
    lag_assert(!ready.empty(), "graph has no dependency-free task");
    for (const std::uint32_t index : ready)
        submitNode(pool, index);

    std::unique_lock lock(mutex_);
    doneCv_.wait(lock, [&] { return settled_ == nodes_.size(); });
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
TaskGraph::submitNode(ThreadPool &pool, std::uint32_t index)
{
    pool.submit([this, &pool, index] {
        TaskNode &node = nodes_[index];
        {
            std::lock_guard lock(mutex_);
            node.state = TaskState::Running;
        }
        bool failed = false;
        try {
            node.fn();
        } catch (...) {
            failed = true;
            std::lock_guard lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        onNodeDone(pool, index, failed);
    });
}

void
TaskGraph::onNodeDone(ThreadPool &pool, std::uint32_t index,
                      bool failed)
{
    std::vector<std::uint32_t> ready;
    {
        std::lock_guard lock(mutex_);
        TaskNode &node = nodes_[index];
        node.state = failed ? TaskState::Failed : TaskState::Done;
        ++settled_;
        if (failed) {
            // Skip every transitive dependent; each settles once.
            std::vector<std::uint32_t> stack(node.dependents);
            while (!stack.empty()) {
                const std::uint32_t d = stack.back();
                stack.pop_back();
                TaskNode &dep = nodes_[d];
                if (dep.state != TaskState::Pending)
                    continue;
                dep.state = TaskState::Skipped;
                ++settled_;
                stack.insert(stack.end(), dep.dependents.begin(),
                             dep.dependents.end());
            }
        } else {
            for (const std::uint32_t d : node.dependents) {
                TaskNode &dep = nodes_[d];
                if (dep.state != TaskState::Pending)
                    continue;
                lag_assert(dep.remainingDeps > 0,
                           "dependency countdown underflow");
                if (--dep.remainingDeps == 0) {
                    dep.state = TaskState::Ready;
                    ready.push_back(d);
                }
            }
        }
        if (settled_ == nodes_.size())
            doneCv_.notify_all();
    }
    for (const std::uint32_t d : ready)
        submitNode(pool, d);
}

} // namespace lag::engine
