/**
 * @file
 * Sharded multi-stage pipeline driver for study-shaped workloads.
 *
 * A study is a grid of independent items (sessions) grouped into
 * shards (applications), where every item flows through the same
 * ordered stages — simulate → encode → decode → analyze. The driver
 * expresses that as a TaskGraph: per-item stage chains are ordered,
 * different items pipeline freely across the pool, and nothing else
 * is synchronized.
 *
 * Determinism contract: stage functions must write only to
 * per-(shard, item) slots the caller pre-sized. With that
 * discipline the output is byte-identical to a serial loop at any
 * worker count — there is no iteration-order or wall-clock
 * dependence anywhere in the driver.
 */

#ifndef LAG_ENGINE_STUDY_DRIVER_HH
#define LAG_ENGINE_STUDY_DRIVER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "pool.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::engine
{

/** Runs a grid of items through ordered stages on a pool. */
class StudyDriver
{
  public:
    /** Stage callback: processes item @p item of shard @p shard. */
    using StageFn =
        std::function<void(std::size_t shard, std::size_t item)>;

    /** Uniform grid: @p shards shards of @p items_per_shard items. */
    StudyDriver(std::size_t shards, std::size_t items_per_shard);

    /** Ragged grid: per-shard item counts (shards may be empty). */
    explicit StudyDriver(std::vector<std::size_t> items_per_shard);

    /** Append a stage; stages run in addition order per item. */
    void addStage(std::string name, StageFn fn);

    std::size_t stageCount() const { return stages_.size(); }

    /** Total number of (shard, item) pairs. */
    std::size_t itemCount() const;

    /**
     * Execute every stage for every item on @p pool; blocks until
     * the whole grid settled. Rethrows the first stage exception.
     * One-shot, like the TaskGraph underneath.
     */
    void run(ThreadPool &pool);

    /**
     * Number of (stage, shard, item) units that have finished so
     * far; itemCount() * stageCount() when run() returns. Safe to
     * poll from another thread for progress reporting.
     */
    std::size_t completedUnits() const;

  private:
    struct Stage
    {
        std::string name;
        /** Interned copy of name for span recording (static
         * lifetime, survives stages_ reallocation). */
        const char *spanName = nullptr;
        StageFn fn;
    };

    std::vector<std::size_t> itemsPerShard_;
    std::vector<Stage> stages_;

    /** Progress accounting, bumped from pool workers. */
    mutable Mutex progressMutex_{LockRank::StudyProgress,
                                 "study-progress"};
    std::size_t completed_ LAG_GUARDED_BY(progressMutex_) = 0;
};

/**
 * Run @p fn for every index in [0, count) on @p pool; blocks until
 * done and rethrows the first exception. The caller keeps results
 * deterministic by writing to index-addressed slots only.
 */
void parallelFor(ThreadPool &pool, std::size_t count,
                 const std::function<void(std::size_t)> &fn);

} // namespace lag::engine

#endif // LAG_ENGINE_STUDY_DRIVER_HH
