/**
 * @file
 * Task primitives shared by the pool and the task graph.
 *
 * A Task is any callable unit of work. TaskId names a node inside a
 * TaskGraph; TaskNode is the graph's bookkeeping record for one
 * task: its callable, its dependents (edges out), and the countdown
 * of unmet dependencies that gates its submission to the pool.
 */

#ifndef LAG_ENGINE_TASK_HH
#define LAG_ENGINE_TASK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lag::engine
{

/** One unit of work. */
using Task = std::function<void()>;

/** Handle of a task inside a TaskGraph. */
struct TaskId
{
    static constexpr std::uint32_t kInvalid = 0xffffffffu;

    std::uint32_t value = kInvalid;

    bool valid() const { return value != kInvalid; }
};

/** Lifecycle of a graph node during one run. */
enum class TaskState : std::uint8_t
{
    Pending, ///< waiting on dependencies
    Ready,   ///< submitted to the pool
    Running, ///< executing on a worker
    Done,    ///< finished successfully
    Failed,  ///< threw; first exception is propagated
    Skipped, ///< not run because a dependency failed
};

/** Human-readable name of a task state. */
const char *taskStateName(TaskState state);

/** One node of a TaskGraph. */
struct TaskNode
{
    Task fn;
    std::string label;

    /** Nodes that depend on this one (indices into the graph). */
    std::vector<std::uint32_t> dependents;

    /** Unmet dependencies; the node is submitted at zero. */
    std::uint32_t remainingDeps = 0;

    TaskState state = TaskState::Pending;
};

} // namespace lag::engine

#endif // LAG_ENGINE_TASK_HH
