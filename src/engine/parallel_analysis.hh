/**
 * @file
 * Within-session parallel analysis with deterministic merge.
 *
 * The study pipeline already parallelizes ACROSS sessions; this
 * layer shards the episode axis of ONE session across the pool.
 * Each shard runs the range-based core analyses (pattern mining,
 * triggers, location, concurrency, GUI states) over a contiguous
 * episode range into an index-addressed partial; a serial merge in
 * shard order then reduces the partials.  Because every partial is
 * pure integer arithmetic (doubles only appear in the finish step)
 * and the merge order is fixed by the episode axis — never by
 * completion order — the output is byte-identical to the serial
 * analysis at any worker count and any shard count.
 *
 * Callers must invoke these from OUTSIDE the pool: they block on
 * ThreadPool::waitIdle, which must not run on a pool worker.  In
 * particular, do not call them from inside a parallelFor that
 * already fans out across sessions on the same pool.
 */

#ifndef LAG_ENGINE_PARALLEL_ANALYSIS_HH
#define LAG_ENGINE_PARALLEL_ANALYSIS_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "core/pattern.hh"
#include "core/session.hh"
#include "pool.hh"
#include "result_cache.hh"
#include "util/types.hh"

namespace lag::engine
{

/**
 * Cut [0, episodeCount) into @p shardCount contiguous ascending
 * ranges of near-equal size (the first remainder shards hold one
 * extra episode).  With zero episodes or a single shard the result
 * is one range covering everything.
 */
std::vector<std::pair<std::size_t, std::size_t>>
episodeShards(std::size_t episodeCount, std::size_t shardCount);

/**
 * Number of shards worth cutting for @p episodeCount episodes on
 * @p workerCount workers: enough to balance uneven shards, never so
 * many that per-shard work vanishes into scheduling overhead.
 */
std::size_t shardCountFor(std::size_t workerCount,
                          std::size_t episodeCount);

/**
 * Pattern mining sharded over @p pool.  Byte-identical to
 * PatternMiner(threshold).mine(session) at any worker count.
 */
core::PatternSet minePatternsParallel(const core::Session &session,
                                      DurationNs perceptible_threshold,
                                      ThreadPool &pool);

/**
 * The full per-session analysis suite sharded over @p pool.
 * Byte-identical (through serializeSessionAnalysis) to
 * analyzeSession(session, threshold) at any worker count.
 */
SessionAnalysis
analyzeSessionParallel(const core::Session &session,
                       DurationNs perceptible_threshold,
                       ThreadPool &pool);

} // namespace lag::engine

#endif // LAG_ENGINE_PARALLEL_ANALYSIS_HH
