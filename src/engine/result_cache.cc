#include "result_cache.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/pattern.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "trace/bytes.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace lag::engine
{

namespace fs = std::filesystem;

namespace
{

/** Cache instruments; looked up once, then pure atomics. */
struct CacheMetrics
{
    obs::Counter &hit = obs::metrics().counter("cache.hit");
    obs::Counter &missCount = obs::metrics().counter("cache.miss");
    obs::Counter &storeCount =
        obs::metrics().counter("cache.store");
    obs::Counter &evictFiles =
        obs::metrics().counter("cache.evict.files");
    obs::Counter &evictBytes =
        obs::metrics().counter("cache.evict.bytes");
    obs::Gauge &keptBytes =
        obs::metrics().gauge("cache.kept.bytes");
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics metrics;
    return metrics;
}

} // namespace

namespace
{

/** Everything downstream of the PatternSet is layout-agnostic. */
SessionAnalysis
finishAnalysis(const core::Session &session,
               const core::PatternSet &patterns,
               DurationNs perceptible_threshold,
               const core::TriggerAnalysisResult &triggers,
               const core::LocationAnalysisResult &location)
{
    SessionAnalysis out;
    out.overview = core::computeOverview(session, patterns,
                                         perceptible_threshold);
    out.triggers = triggers;
    out.location = location;
    out.concurrency =
        core::analyzeConcurrency(session, perceptible_threshold);
    out.states =
        core::analyzeGuiStates(session, perceptible_threshold);
    out.occurrence = core::occurrenceShares(patterns);
    out.cdf = core::patternCdf(patterns);
    out.patternKeys.reserve(patterns.patterns.size());
    for (const core::Pattern &pattern : patterns.patterns)
        out.patternKeys.push_back(pattern.key);
    out.episodeDurations.reserve(session.episodes().size());
    for (const core::Episode &episode : session.episodes())
        out.episodeDurations.push_back(episode.duration());
    out.patternSummary = core::summarizePatterns(patterns);
    return out;
}

} // namespace

SessionAnalysis
analyzeSession(const core::Session &session,
               DurationNs perceptible_threshold)
{
    const core::PatternMiner miner(perceptible_threshold);
    const core::FlatSession flat = core::flattenSession(session);
    const core::PatternSet patterns = miner.mine(session, flat);
    const std::size_t n = session.episodes().size();
    return finishAnalysis(
        session, patterns, perceptible_threshold,
        core::finishTriggers(core::countTriggers(
            session, flat, 0, n, perceptible_threshold)),
        core::finishLocation(core::countLocation(
            session, flat, 0, n, perceptible_threshold)));
}

SessionAnalysis
analyzeSessionNode(const core::Session &session,
                   DurationNs perceptible_threshold)
{
    const core::PatternMiner miner(perceptible_threshold);
    const core::PatternSet patterns = miner.mine(session);
    return finishAnalysis(
        session, patterns, perceptible_threshold,
        core::analyzeTriggers(session, perceptible_threshold),
        core::analyzeLocation(session, perceptible_threshold));
}

namespace
{

constexpr char kMagic[8] = {'L', 'A', 'G', 'A', 'R', 'E', 'S', '\0'};

void
putF64(trace::ByteWriter &w, double v)
{
    w.u64(std::bit_cast<std::uint64_t>(v));
}

double
getF64(trace::ByteReader &r)
{
    return std::bit_cast<double>(r.u64());
}

void
writeTriggerShares(trace::ByteWriter &w,
                   const core::TriggerShares &s)
{
    putF64(w, s.input);
    putF64(w, s.output);
    putF64(w, s.async);
    putF64(w, s.unspecified);
    w.u64(s.episodeCount);
}

core::TriggerShares
readTriggerShares(trace::ByteReader &r)
{
    core::TriggerShares s;
    s.input = getF64(r);
    s.output = getF64(r);
    s.async = getF64(r);
    s.unspecified = getF64(r);
    s.episodeCount = static_cast<std::size_t>(r.u64());
    return s;
}

void
writeLocationShares(trace::ByteWriter &w,
                    const core::LocationShares &s)
{
    putF64(w, s.appFraction);
    putF64(w, s.libraryFraction);
    w.u64(s.sampleCount);
    putF64(w, s.gcFraction);
    putF64(w, s.nativeFraction);
    w.u64(s.episodeCount);
}

core::LocationShares
readLocationShares(trace::ByteReader &r)
{
    core::LocationShares s;
    s.appFraction = getF64(r);
    s.libraryFraction = getF64(r);
    s.sampleCount = static_cast<std::size_t>(r.u64());
    s.gcFraction = getF64(r);
    s.nativeFraction = getF64(r);
    s.episodeCount = static_cast<std::size_t>(r.u64());
    return s;
}

void
writeGuiStateShares(trace::ByteWriter &w,
                    const core::GuiStateShares &s)
{
    putF64(w, s.blocked);
    putF64(w, s.waiting);
    putF64(w, s.sleeping);
    putF64(w, s.runnable);
    w.u64(s.sampleCount);
}

core::GuiStateShares
readGuiStateShares(trace::ByteReader &r)
{
    core::GuiStateShares s;
    s.blocked = getF64(r);
    s.waiting = getF64(r);
    s.sleeping = getF64(r);
    s.runnable = getF64(r);
    s.sampleCount = static_cast<std::size_t>(r.u64());
    return s;
}

std::string
serializePayload(const SessionAnalysis &a)
{
    trace::ByteWriter w;

    putF64(w, a.overview.e2eSeconds);
    putF64(w, a.overview.inEpsPercent);
    w.u64(a.overview.shortCount);
    w.u64(a.overview.tracedCount);
    w.u64(a.overview.perceptibleCount);
    putF64(w, a.overview.longPerMin);
    w.u64(a.overview.distinctPatterns);
    w.u64(a.overview.coveredEpisodes);
    putF64(w, a.overview.oneEpPercent);
    putF64(w, a.overview.meanDescs);
    putF64(w, a.overview.meanDepth);

    writeTriggerShares(w, a.triggers.all);
    writeTriggerShares(w, a.triggers.perceptible);
    writeLocationShares(w, a.location.all);
    writeLocationShares(w, a.location.perceptible);

    putF64(w, a.concurrency.meanRunnableAll);
    putF64(w, a.concurrency.meanRunnablePerceptible);
    w.u64(a.concurrency.samplesAll);
    w.u64(a.concurrency.samplesPerceptible);

    writeGuiStateShares(w, a.states.all);
    writeGuiStateShares(w, a.states.perceptible);

    putF64(w, a.occurrence.always);
    putF64(w, a.occurrence.sometimes);
    putF64(w, a.occurrence.once);
    putF64(w, a.occurrence.never);
    w.u64(a.occurrence.patternCount);

    w.u64(a.cdf.size());
    for (const auto &[x, y] : a.cdf) {
        putF64(w, x);
        putF64(w, y);
    }
    w.u64(a.patternKeys.size());
    for (const std::uint64_t key : a.patternKeys)
        w.u64(key);
    w.u64(a.episodeDurations.size());
    for (const DurationNs duration : a.episodeDurations)
        w.i64(duration);

    w.i64(a.patternSummary.perceptibleThreshold);
    w.u64(a.patternSummary.patterns.size());
    for (const core::PatternSummary &s : a.patternSummary.patterns) {
        w.str(s.signature);
        w.u64(s.key);
        w.u64(s.episodeCount);
        w.u64(s.perceptibleCount);
        w.i64(s.minLag);
        w.i64(s.maxLag);
        w.i64(s.totalLag);
        w.u64(s.descendants);
        w.u64(s.depth);
    }

    return w.take();
}

SessionAnalysis
deserializePayload(trace::ByteReader &r)
{
    SessionAnalysis a;

    a.overview.e2eSeconds = getF64(r);
    a.overview.inEpsPercent = getF64(r);
    a.overview.shortCount = r.u64();
    a.overview.tracedCount = static_cast<std::size_t>(r.u64());
    a.overview.perceptibleCount = static_cast<std::size_t>(r.u64());
    a.overview.longPerMin = getF64(r);
    a.overview.distinctPatterns = static_cast<std::size_t>(r.u64());
    a.overview.coveredEpisodes = static_cast<std::size_t>(r.u64());
    a.overview.oneEpPercent = getF64(r);
    a.overview.meanDescs = getF64(r);
    a.overview.meanDepth = getF64(r);

    a.triggers.all = readTriggerShares(r);
    a.triggers.perceptible = readTriggerShares(r);
    a.location.all = readLocationShares(r);
    a.location.perceptible = readLocationShares(r);

    a.concurrency.meanRunnableAll = getF64(r);
    a.concurrency.meanRunnablePerceptible = getF64(r);
    a.concurrency.samplesAll = static_cast<std::size_t>(r.u64());
    a.concurrency.samplesPerceptible =
        static_cast<std::size_t>(r.u64());

    a.states.all = readGuiStateShares(r);
    a.states.perceptible = readGuiStateShares(r);

    a.occurrence.always = getF64(r);
    a.occurrence.sometimes = getF64(r);
    a.occurrence.once = getF64(r);
    a.occurrence.never = getF64(r);
    a.occurrence.patternCount = static_cast<std::size_t>(r.u64());

    const std::uint64_t cdf_points = r.u64();
    a.cdf.reserve(cdf_points);
    for (std::uint64_t i = 0; i < cdf_points; ++i) {
        const double x = getF64(r);
        const double y = getF64(r);
        a.cdf.emplace_back(x, y);
    }
    const std::uint64_t keys = r.u64();
    a.patternKeys.reserve(keys);
    for (std::uint64_t i = 0; i < keys; ++i)
        a.patternKeys.push_back(r.u64());
    const std::uint64_t episodes = r.u64();
    a.episodeDurations.reserve(episodes);
    for (std::uint64_t i = 0; i < episodes; ++i)
        a.episodeDurations.push_back(r.i64());

    a.patternSummary.perceptibleThreshold = r.i64();
    const std::uint64_t summaries = r.u64();
    a.patternSummary.patterns.reserve(summaries);
    for (std::uint64_t i = 0; i < summaries; ++i) {
        core::PatternSummary s;
        s.signature = r.str();
        s.key = r.u64();
        s.episodeCount = static_cast<std::size_t>(r.u64());
        s.perceptibleCount = static_cast<std::size_t>(r.u64());
        s.minLag = r.i64();
        s.maxLag = r.i64();
        s.totalLag = r.i64();
        s.descendants = static_cast<std::size_t>(r.u64());
        s.depth = static_cast<std::size_t>(r.u64());
        a.patternSummary.patterns.push_back(std::move(s));
    }

    return a;
}

} // namespace

std::string
serializeSessionAnalysis(const SessionAnalysis &analysis)
{
    const std::string payload = serializePayload(analysis);
    trace::ByteWriter w;
    for (const char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kAnalysisVersion);
    Fnv1aHasher hasher;
    hasher.addBytes(payload.data(), payload.size());
    w.u64(hasher.digest());
    std::string out = w.take();
    out.append(payload);
    return out;
}

SessionAnalysis
deserializeSessionAnalysis(std::string_view data)
{
    trace::ByteReader r(data);
    char magic[sizeof(kMagic)];
    for (char &c : magic)
        c = static_cast<char>(r.u8());
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw trace::TraceError("bad analysis-cache magic");
    const std::uint32_t version = r.u32();
    if (version != kAnalysisVersion) {
        throw trace::TraceError(
            "analysis-cache version mismatch: file has " +
            std::to_string(version) + ", expected " +
            std::to_string(kAnalysisVersion));
    }
    const std::uint64_t checksum = r.u64();
    Fnv1aHasher hasher;
    hasher.addBytes(data.data() + r.position(), r.remaining());
    if (hasher.digest() != checksum)
        throw trace::TraceError("analysis-cache checksum mismatch");
    SessionAnalysis analysis = deserializePayload(r);
    if (r.remaining() != 0) {
        throw trace::TraceError(
            "trailing garbage after analysis-cache payload");
    }
    return analysis;
}

ResultCache::ResultCache(std::string cache_dir,
                         std::string study_fingerprint)
    : dir_(std::move(cache_dir)),
      fingerprint_(std::move(study_fingerprint))
{
    Fnv1aHasher hasher;
    hasher.addString(fingerprint_);
    hasher.addValue(kAnalysisVersion);
    std::ostringstream hex;
    hex << std::hex << hasher.digest();
    tag_ = hex.str();
}

namespace
{

/**
 * App names come from study configs and, via the examples, from
 * arbitrary file paths — a '/', '..' or other hostile character
 * must not escape the analysis/ directory or splice into the
 * generation mark. Uniqueness is the content hash's job, so the
 * readable prefix can be lossy: anything outside a conservative
 * charset becomes '_', and long names are clipped.
 */
std::string
sanitizeAppName(std::string_view app_name)
{
    constexpr std::size_t kMaxPrefix = 48;
    std::string safe;
    safe.reserve(std::min(app_name.size(), kMaxPrefix));
    for (const char c : app_name) {
        if (safe.size() == kMaxPrefix)
            break;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-';
        safe.push_back(ok ? c : '_');
    }
    if (safe.empty())
        safe = "app";
    return safe;
}

} // namespace

std::string
ResultCache::entryPath(std::string_view app_name,
                       std::uint32_t session_index) const
{
    Fnv1aHasher hasher;
    hasher.addString(fingerprint_);
    hasher.addValue(kAnalysisVersion);
    hasher.addString(app_name);
    hasher.addValue(session_index);
    std::ostringstream hex;
    hex << std::hex << hasher.digest();
    return dir_ + "/analysis/" + sanitizeAppName(app_name) + "_s" +
           std::to_string(session_index) + "_g" + tag_ + "-" +
           hex.str() + ".ares";
}

CacheEvictionResult
ResultCache::evict(const CacheEvictionPolicy &policy) const
{
    return evict(policy, [](const fs::path &path) {
        std::error_code remove_ec;
        return fs::remove(path, remove_ec);
    });
}

CacheEvictionResult
ResultCache::evict(const CacheEvictionPolicy &policy,
                   const RemoveFileFn &remove_file) const
{
    LAG_SPAN("cache.evict");
    CacheEvictionResult result;
    const fs::path root = fs::path(dir_) / "analysis";
    std::error_code ec;
    if (!fs::is_directory(root, ec))
        return result;

    struct Entry
    {
        fs::path path;
        std::uint64_t bytes = 0;
        fs::file_time_type mtime;
    };

    // Books an entry as removed or kept depending on what actually
    // happened on disk — a failed unlink leaves the bytes in the
    // directory, so they must stay in keptFiles/keptBytes and the
    // kept-bytes gauge, not vanish from the accounting.
    const auto remove = [&](const Entry &entry) {
        if (remove_file(entry.path)) {
            ++result.removedFiles;
            result.removedBytes += entry.bytes;
            return true;
        }
        warn("result cache: cannot evict '", entry.path.string(),
             "'; keeping it on the books");
        ++result.keptFiles;
        result.keptBytes += entry.bytes;
        return false;
    };

    const std::string liveMark = "_g" + tag_ + "-";
    const auto now = fs::file_time_type::clock::now();
    std::vector<Entry> live;
    for (const auto &dirent : fs::directory_iterator(root, ec)) {
        Entry entry;
        entry.path = dirent.path();
        if (entry.path.extension() != ".ares")
            continue;

        std::error_code type_ec;
        std::error_code size_ec;
        std::error_code time_ec;
        const bool regular = dirent.is_regular_file(type_ec);
        entry.bytes = dirent.file_size(size_ec);
        if (size_ec)
            entry.bytes = 0;
        entry.mtime = dirent.last_write_time(time_ec);

        // A name without the current generation mark was written
        // under another fingerprint or analysis version; its content
        // address can never be requested again. Name-only decision —
        // it must not depend on stat health.
        const std::string name = entry.path.filename().string();
        if (name.find(liveMark) == std::string::npos) {
            if (regular)
                remove(entry);
            continue;
        }

        // A live-named entry we cannot stat must be kept, not
        // treated as size 0 / epoch mtime — a default-initialized
        // mtime looks maximally old and would be evicted first
        // under any age or byte budget.
        if (type_ec || (regular && (size_ec || time_ec))) {
            warn("result cache: cannot stat '", entry.path.string(),
                 "'; keeping it");
            ++result.keptFiles;
            result.keptBytes += entry.bytes;
            continue;
        }
        if (!regular)
            continue;
        if (policy.maxAgeSeconds > 0 &&
            now - entry.mtime >
                std::chrono::seconds(policy.maxAgeSeconds)) {
            remove(entry);
            continue;
        }
        live.push_back(std::move(entry));
    }

    // Oldest first; names break mtime ties so the pass is
    // deterministic on coarse filesystem timestamps.
    std::sort(live.begin(), live.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path.filename().string() <
                         b.path.filename().string();
              });
    std::uint64_t total = 0;
    for (const Entry &entry : live)
        total += entry.bytes;
    std::size_t next = 0;
    if (policy.maxBytes > 0) {
        while (next < live.size() && total > policy.maxBytes) {
            // Only debit what really left the disk; a failed
            // removal was booked as kept above and its bytes still
            // count against the budget.
            if (remove(live[next]))
                total -= live[next].bytes;
            ++next;
        }
    }
    for (std::size_t i = next; i < live.size(); ++i) {
        ++result.keptFiles;
        result.keptBytes += live[i].bytes;
    }
    cacheMetrics().keptBytes.set(
        static_cast<std::int64_t>(result.keptBytes));
    if (result.removedFiles > 0) {
        // Eviction throws user state away; say so instead of
        // silently shrinking the directory.
        cacheMetrics().evictFiles.add(result.removedFiles);
        cacheMetrics().evictBytes.add(result.removedBytes);
        inform("result cache: evicted ", result.removedFiles,
               " entries (", result.removedBytes, " bytes), kept ",
               result.keptFiles, " (", result.keptBytes, " bytes)");
    }
    return result;
}

std::optional<SessionAnalysis>
ResultCache::load(std::string_view app_name,
                  std::uint32_t session_index) const
{
    LAG_SPAN("cache.load");
    const std::string path = entryPath(app_name, session_index);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return miss();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in && !in.eof())
        return miss();
    try {
        SessionAnalysis analysis =
            deserializeSessionAnalysis(buffer.str());
        cacheMetrics().hit.add();
        MutexLock lock(statsMutex_);
        ++stats_.hits;
        return analysis;
    } catch (const trace::TraceError &e) {
        warn("result cache: discarding invalid entry '", path, "': ",
             e.what());
        return miss();
    }
}

std::optional<SessionAnalysis>
ResultCache::miss() const
{
    cacheMetrics().missCount.add();
    MutexLock lock(statsMutex_);
    ++stats_.misses;
    return std::nullopt;
}

ResultCacheStats
ResultCache::stats() const
{
    MutexLock lock(statsMutex_);
    return stats_;
}

std::uint64_t
ResultCache::entryDigest(std::string_view app_name,
                         std::uint32_t session_index) const
{
    const std::string path = entryPath(app_name, session_index);
    Fnv1aHasher hasher;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        // Absent and unreadable fold the same marker: both mean
        // "this entry contributes nothing", and both must differ
        // from every present-content digest.
        hasher.addString("absent");
        return hasher.digest();
    }
    char buffer[1 << 16];
    while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
        hasher.addBytes(buffer,
                        static_cast<std::size_t>(in.gcount()));
    }
    return hasher.digest();
}

std::uint64_t
ResultCache::appDigest(std::string_view app_name,
                       std::uint32_t sessions_per_app) const
{
    LAG_SPAN("cache.app_digest");
    Fnv1aHasher hasher;
    hasher.addString(app_name);
    for (std::uint32_t s = 0; s < sessions_per_app; ++s) {
        hasher.addValue(s);
        hasher.addValue(entryDigest(app_name, s));
    }
    return hasher.digest();
}

void
ResultCache::store(std::string_view app_name,
                   std::uint32_t session_index,
                   const SessionAnalysis &analysis) const
{
    LAG_SPAN("cache.store");
    fs::create_directories(dir_ + "/analysis");
    const std::string path = entryPath(app_name, session_index);
    const std::string temp = path + ".tmp";
    const std::string data = serializeSessionAnalysis(analysis);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("result cache: cannot write '", temp, "'");
            return;
        }
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        if (!out) {
            warn("result cache: short write to '", temp, "'");
            return;
        }
    }
    fs::rename(temp, path);
    cacheMetrics().storeCount.add();
    MutexLock lock(statsMutex_);
    ++stats_.stores;
}

} // namespace lag::engine
