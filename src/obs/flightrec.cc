#include "flightrec.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/shutdown.hh"

namespace lag::obs
{

namespace
{

void
appendEscaped(std::string &out, std::string_view text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *digits = "0123456789abcdef";
                out += "\\u00";
                out += digits[(c >> 4) & 0xF];
                out += digits[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendRequestObject(std::string &out, const RequestSummary &req)
{
    out += "{\"method\": ";
    appendEscaped(out, req.method);
    out += ", \"target\": ";
    appendEscaped(out, req.target);
    out += ", \"status\": ";
    out += std::to_string(req.status);
    out += ", \"dur_us\": ";
    out += std::to_string(req.durUs);
    out += ", \"start_ns\": ";
    out += std::to_string(req.startNs);
    out += ", \"slow\": ";
    out += req.slow ? "true" : "false";
    out += ", \"trace\": \"";
    out += traceIdHex(req.trace);
    out += "\"}";
}

/** A span of one trace with its containment depth (see below). */
struct TreeSpan
{
    const char *name;
    std::uint32_t tid;
    std::int64_t startNs;
    std::int64_t durNs;
    int depth;
};

/**
 * Collect every span stamped with @p ctx and assign nesting depths:
 * spans are sorted (tid, start, -dur) and a span is a child of the
 * innermost same-thread span still open at its start. Cross-thread
 * causality (pool hops) shows as sibling depth-0 runs per thread.
 */
std::vector<TreeSpan>
collectTree(const TraceContext &ctx)
{
    std::vector<TreeSpan> spans;
    for (const auto &buffer : spanBuffers()) {
        const std::size_t n = buffer->published();
        for (std::size_t i = 0; i < n; ++i) {
            const SpanEvent &ev = buffer->at(i);
            if (ev.traceHi != ctx.hi || ev.traceLo != ctx.lo)
                continue;
            spans.push_back({ev.name, buffer->tid(), ev.startNs,
                             ev.durNs, 0});
        }
    }
    std::sort(spans.begin(), spans.end(),
              [](const TreeSpan &a, const TreeSpan &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.durNs > b.durNs;
              });
    std::vector<std::int64_t> open; // end times of enclosing spans
    std::uint32_t tid = 0;
    for (TreeSpan &span : spans) {
        if (span.tid != tid) {
            open.clear();
            tid = span.tid;
        }
        while (!open.empty() && open.back() <= span.startNs)
            open.pop_back();
        span.depth = static_cast<int>(open.size());
        open.push_back(span.startNs + span.durNs);
    }
    return spans;
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    static auto *recorder = new FlightRecorder();
    return *recorder;
}

void
FlightRecorder::configure(const FlightRecorderOptions &options)
{
    MutexLock lock(requestMutex_);
    if (armed_.load(std::memory_order_relaxed))
        return; // first call wins; rings must never reallocate
    spanRing_ = std::vector<SpanSlot>(
        std::max<std::size_t>(options.spanCapacity, 1));
    eventRing_ = std::vector<EventSlot>(
        std::max<std::size_t>(options.eventCapacity, 1));
    requestRing_ = std::vector<RequestSlot>(
        std::max<std::size_t>(options.requestCapacity, 1));
    const std::size_t n =
        std::min(options.dumpPath.size(), sizeof(path_) - 1);
    std::memcpy(path_, options.dumpPath.data(), n);
    path_[n] = '\0';
    armed_.store(true, std::memory_order_release);
    detail::g_armedFlightRecorder.store(this,
                                        std::memory_order_release);
}

void
FlightRecorder::recordSpan(const SpanEvent &event, std::uint32_t tid)
{
    const std::uint64_t i =
        spanHead_.fetch_add(1, std::memory_order_relaxed);
    SpanSlot &slot = spanRing_[i % spanRing_.size()];
    // Release: the name may be an internedName() string minted just
    // now on this thread; the store must publish its bytes to the
    // acquire-loading live readers, not only the pointer value.
    slot.name.store(event.name, std::memory_order_release);
    slot.traceHi.store(event.traceHi, std::memory_order_relaxed);
    slot.traceLo.store(event.traceLo, std::memory_order_relaxed);
    slot.startNs.store(event.startNs, std::memory_order_relaxed);
    slot.durNs.store(event.durNs, std::memory_order_relaxed);
    slot.tid.store(tid, std::memory_order_relaxed);
}

void
FlightRecorder::recordEvent(const char *what, const char *a,
                            const char *b)
{
    if (!armed())
        return;
    const std::uint64_t i =
        eventHead_.fetch_add(1, std::memory_order_relaxed);
    EventSlot &slot = eventRing_[i % eventRing_.size()];
    // Release (each pointer): detail strings may be internedName()
    // allocations made on this thread moments ago; publish their
    // bytes along with the pointer (readers load with acquire).
    slot.what.store(what, std::memory_order_release);
    slot.a.store(a, std::memory_order_release);
    slot.b.store(b, std::memory_order_release);
    slot.atNs.store(processElapsedNs(), std::memory_order_relaxed);
}

void
FlightRecorder::recordRequest(const RequestSummary &request)
{
    if (!armed())
        return;
    MutexLock lock(requestMutex_);
    RequestSlot &slot =
        requestRing_[requestHead_ % requestRing_.size()];
    ++requestHead_;
    const std::size_t mlen = std::min(request.method.size(),
                                      sizeof(slot.method) - 1);
    std::memcpy(slot.method, request.method.data(), mlen);
    slot.method[mlen] = '\0';
    slot.methodLen = static_cast<std::uint8_t>(mlen);
    const std::size_t tlen = std::min(request.target.size(),
                                      sizeof(slot.target) - 1);
    std::memcpy(slot.target, request.target.data(), tlen);
    slot.target[tlen] = '\0';
    slot.targetLen = static_cast<std::uint8_t>(tlen);
    slot.traceHi = request.trace.hi;
    slot.traceLo = request.trace.lo;
    slot.startNs = request.startNs;
    slot.durUs = request.durUs;
    slot.status = request.status;
    slot.slow = request.slow;
    slot.used = true;
}

std::vector<RequestSummary>
FlightRecorder::recentRequests() const
{
    std::vector<RequestSummary> out;
    if (!armed())
        return out;
    MutexLock lock(requestMutex_);
    const std::size_t cap = requestRing_.size();
    const std::uint64_t newest = requestHead_;
    const std::uint64_t oldest =
        newest > cap ? newest - cap : 0;
    out.reserve(static_cast<std::size_t>(newest - oldest));
    for (std::uint64_t i = newest; i-- > oldest;) {
        const RequestSlot &slot = requestRing_[i % cap];
        if (!slot.used)
            continue;
        RequestSummary req;
        req.method.assign(slot.method, slot.methodLen);
        req.target.assign(slot.target, slot.targetLen);
        req.trace = TraceContext{slot.traceHi, slot.traceLo};
        req.startNs = slot.startNs;
        req.durUs = slot.durUs;
        req.status = slot.status;
        req.slow = slot.slow;
        out.push_back(std::move(req));
    }
    return out;
}

std::string
FlightRecorder::liveJson() const
{
    std::string out = "{\"flightrec\": 1, \"signal\": 0, ";
    const FatalNote note = fatalNote();
    if (note.what == nullptr) {
        out += "\"fatal\": null";
    } else {
        out += "\"fatal\": {\"what\": ";
        appendEscaped(out, note.what);
        out += ", \"a\": ";
        appendEscaped(out, note.detailA ? note.detailA : "");
        out += ", \"b\": ";
        appendEscaped(out, note.detailB ? note.detailB : "");
        out += '}';
    }

    out += ", \"requests\": [";
    bool first = true;
    for (const RequestSummary &req : recentRequests()) {
        if (!first)
            out += ", ";
        first = false;
        appendRequestObject(out, req);
    }
    out += ']';

    out += ", \"events\": [";
    first = true;
    if (armed()) {
        const std::size_t cap = eventRing_.size();
        const std::uint64_t newest =
            eventHead_.load(std::memory_order_relaxed);
        const std::uint64_t oldest =
            newest > cap ? newest - cap : 0;
        for (std::uint64_t i = oldest; i < newest; ++i) {
            const EventSlot &slot = eventRing_[i % cap];
            // Acquire pairs with recordEvent's release stores: it
            // makes the pointed-to string bytes visible, not just
            // the pointers.
            const char *what =
                slot.what.load(std::memory_order_acquire);
            if (what == nullptr)
                continue; // claimed but not yet written
            const char *a = slot.a.load(std::memory_order_acquire);
            const char *b = slot.b.load(std::memory_order_acquire);
            if (!first)
                out += ", ";
            first = false;
            out += "{\"what\": ";
            appendEscaped(out, what);
            out += ", \"a\": ";
            appendEscaped(out, a ? a : "");
            out += ", \"b\": ";
            appendEscaped(out, b ? b : "");
            out += ", \"at_ns\": ";
            out += std::to_string(
                slot.atNs.load(std::memory_order_relaxed));
            out += '}';
        }
    }
    out += ']';

    out += ", \"spans\": [";
    first = true;
    if (armed()) {
        const std::size_t cap = spanRing_.size();
        const std::uint64_t newest =
            spanHead_.load(std::memory_order_relaxed);
        const std::uint64_t oldest =
            newest > cap ? newest - cap : 0;
        for (std::uint64_t i = oldest; i < newest; ++i) {
            const SpanSlot &slot = spanRing_[i % cap];
            const char *name =
                slot.name.load(std::memory_order_acquire);
            if (name == nullptr)
                continue;
            if (!first)
                out += ", ";
            first = false;
            out += "{\"name\": ";
            appendEscaped(out, name);
            out += ", \"trace\": \"";
            out += traceIdHex(TraceContext{
                slot.traceHi.load(std::memory_order_relaxed),
                slot.traceLo.load(std::memory_order_relaxed)});
            out += "\", \"tid\": ";
            out += std::to_string(
                slot.tid.load(std::memory_order_relaxed));
            out += ", \"start_ns\": ";
            out += std::to_string(
                slot.startNs.load(std::memory_order_relaxed));
            out += ", \"dur_ns\": ";
            out += std::to_string(
                slot.durNs.load(std::memory_order_relaxed));
            out += '}';
        }
    }
    out += "]}\n";
    return out;
}

std::string
FlightRecorder::requestsJson(const TraceContext *filter) const
{
    std::string out = "{\"requests\": [";
    bool first = true;
    for (const RequestSummary &req : recentRequests()) {
        if (filter != nullptr && req.trace != *filter)
            continue;
        if (!first)
            out += ", ";
        first = false;
        appendRequestObject(out, req);
    }
    out += ']';
    if (filter != nullptr) {
        out += ", \"spans\": ";
        out += spanTreeJson(*filter);
    }
    out += "}\n";
    return out;
}

std::string
spanTreeJson(const TraceContext &ctx)
{
    const std::vector<TreeSpan> spans = collectTree(ctx);
    std::string out = "{\"trace\": \"";
    out += traceIdHex(ctx);
    out += "\", \"spans\": [";
    bool first = true;
    for (const TreeSpan &span : spans) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": ";
        appendEscaped(out, span.name);
        out += ", \"tid\": ";
        out += std::to_string(span.tid);
        out += ", \"depth\": ";
        out += std::to_string(span.depth);
        out += ", \"start_ns\": ";
        out += std::to_string(span.startNs);
        out += ", \"dur_ns\": ";
        out += std::to_string(span.durNs);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
spanTreeText(const TraceContext &ctx)
{
    const std::vector<TreeSpan> spans = collectTree(ctx);
    std::ostringstream os;
    os << "trace " << traceIdHex(ctx) << " (" << spans.size()
       << " spans)\n";
    std::uint32_t tid = spans.empty() ? 0 : spans.front().tid + 1;
    for (const TreeSpan &span : spans) {
        if (span.tid != tid) {
            tid = span.tid;
            os << " thread " << tid << ":\n";
        }
        os << "  ";
        for (int i = 0; i < span.depth; ++i)
            os << "  ";
        os << span.name << ' ' << span.durNs / 1000 << "us\n";
    }
    return os.str();
}

namespace detail
{
std::atomic<FlightRecorder *> g_armedFlightRecorder{nullptr};
} // namespace detail

} // namespace lag::obs
