#include "prom_check.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

namespace lag::obs
{

namespace
{

bool
isNameStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           c == '_' || c == ':';
}

bool
isNameChar(char c)
{
    return isNameStart(c) || (c >= '0' && c <= '9');
}

bool
isLabelStart(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           c == '_';
}

bool
isLabelChar(char c)
{
    return isLabelStart(c) || (c >= '0' && c <= '9');
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

/** One `_bucket` sample in appearance order. */
struct BucketSample
{
    double le = 0;
    double count = 0;
};

struct BucketSeries
{
    std::vector<BucketSample> buckets;
    bool hasInf = false;
    double infCount = 0;
};

class PromChecker
{
  public:
    explicit PromChecker(std::string_view text) : text_(text) {}

    PromCheckResult
    run()
    {
        std::size_t pos = 0;
        while (pos < text_.size()) {
            std::size_t eol = text_.find('\n', pos);
            if (eol == std::string_view::npos)
                eol = text_.size();
            ++lineNo_;
            if (!checkLine(text_.substr(pos, eol - pos)))
                return fail();
            pos = eol + 1;
        }
        if (!checkHistograms())
            return fail();
        PromCheckResult result;
        result.ok = true;
        return result;
    }

  private:
    std::string_view text_;
    std::size_t lineNo_ = 0;
    std::string error_;
    std::size_t errorLine_ = 0;

    std::map<std::string, std::string> familyType_;
    std::set<std::string> sampledFamilies_;
    /** family → label-set-minus-le → cumulative series. */
    std::map<std::string, std::map<std::string, BucketSeries>>
        histBuckets_;
    std::map<std::string, std::map<std::string, double>>
        histCounts_;

    PromCheckResult
    fail() const
    {
        PromCheckResult result;
        result.ok = false;
        result.line = errorLine_;
        result.message = error_;
        return result;
    }

    bool
    setError(std::string message)
    {
        if (error_.empty()) {
            error_ = std::move(message);
            errorLine_ = lineNo_;
        }
        return false;
    }

    bool
    checkLine(std::string_view line)
    {
        if (line.empty())
            return true;
        if (line.front() == '#')
            return checkComment(line);
        return checkSample(line);
    }

    bool
    checkComment(std::string_view line)
    {
        // "# HELP name text" / "# TYPE name type"; any other
        // #-line is a free-form comment.
        if (line.rfind("# HELP ", 0) != 0 &&
            line.rfind("# TYPE ", 0) != 0)
            return true;
        const bool isType = line.rfind("# TYPE ", 0) == 0;
        std::size_t pos = 7;
        const std::size_t nameStart = pos;
        if (pos >= line.size() || !isNameStart(line[pos]))
            return setError("invalid metric name in comment");
        while (pos < line.size() && isNameChar(line[pos]))
            ++pos;
        const std::string name(
            line.substr(nameStart, pos - nameStart));
        if (!isType)
            return true; // HELP text is free-form
        if (pos >= line.size() || line[pos] != ' ')
            return setError("missing type after TYPE name");
        const std::string_view type = line.substr(pos + 1);
        if (type != "counter" && type != "gauge" &&
            type != "histogram" && type != "summary" &&
            type != "untyped")
            return setError("unknown metric type '" +
                            std::string(type) + "'");
        if (familyType_.count(name) != 0)
            return setError("duplicate TYPE for family '" + name +
                            "'");
        if (sampledFamilies_.count(name) != 0)
            return setError("TYPE for '" + name +
                            "' appears after its samples");
        familyType_[name] = std::string(type);
        return true;
    }

    bool
    checkSample(std::string_view line)
    {
        std::size_t pos = 0;
        if (!isNameStart(line[pos]))
            return setError("invalid sample name");
        const std::size_t nameStart = pos;
        while (pos < line.size() && isNameChar(line[pos]))
            ++pos;
        const std::string name(
            line.substr(nameStart, pos - nameStart));

        std::vector<std::pair<std::string, std::string>> labels;
        if (pos < line.size() && line[pos] == '{') {
            ++pos;
            while (true) {
                if (pos >= line.size())
                    return setError("unterminated label block");
                if (line[pos] == '}') {
                    ++pos;
                    break;
                }
                if (!isLabelStart(line[pos]))
                    return setError("invalid label name");
                const std::size_t labelStart = pos;
                while (pos < line.size() && isLabelChar(line[pos]))
                    ++pos;
                const std::string labelName(
                    line.substr(labelStart, pos - labelStart));
                if (pos >= line.size() || line[pos] != '=')
                    return setError(
                        "expected '=' after label name");
                ++pos;
                if (pos >= line.size() || line[pos] != '"')
                    return setError("label value must be quoted");
                ++pos;
                std::string value;
                while (true) {
                    if (pos >= line.size())
                        return setError(
                            "unterminated label value");
                    const char c = line[pos++];
                    if (c == '"')
                        break;
                    if (c == '\\') {
                        if (pos >= line.size())
                            return setError(
                                "unterminated escape");
                        const char esc = line[pos++];
                        if (esc == '\\')
                            value += '\\';
                        else if (esc == '"')
                            value += '"';
                        else if (esc == 'n')
                            value += '\n';
                        else
                            return setError(
                                "invalid label escape");
                    } else {
                        value += c;
                    }
                }
                labels.emplace_back(labelName, value);
                if (pos < line.size() && line[pos] == ',')
                    ++pos; // trailing comma before '}' is legal
            }
        }

        if (pos >= line.size() || line[pos] != ' ')
            return setError("expected ' ' before sample value");
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        const std::size_t valueStart = pos;
        while (pos < line.size() && line[pos] != ' ')
            ++pos;
        double value = 0;
        if (!parseValue(line.substr(valueStart, pos - valueStart),
                        value))
            return setError("invalid sample value");
        // Optional integer timestamp (milliseconds).
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        if (pos < line.size()) {
            std::size_t tsStart = pos;
            if (line[pos] == '-')
                ++pos;
            while (pos < line.size() &&
                   line[pos] >= '0' && line[pos] <= '9')
                ++pos;
            if (pos != line.size() || pos == tsStart)
                return setError("trailing garbage after value");
        }

        return recordSample(name, labels, value);
    }

    static bool
    parseValue(std::string_view token, double &out)
    {
        if (token.empty())
            return false;
        if (token == "+Inf" || token == "Inf") {
            out = HUGE_VAL;
            return true;
        }
        if (token == "-Inf") {
            out = -HUGE_VAL;
            return true;
        }
        if (token == "NaN") {
            out = NAN;
            return true;
        }
        const std::string copy(token);
        char *end = nullptr;
        out = std::strtod(copy.c_str(), &end);
        return end != nullptr && *end == '\0';
    }

    bool
    recordSample(
        const std::string &name,
        const std::vector<std::pair<std::string, std::string>>
            &labels,
        double value)
    {
        // Histogram series samples belong to the stripped family.
        std::string family = name;
        std::string_view suffix;
        for (const char *s : {"_bucket", "_sum", "_count"}) {
            if (endsWith(name, s)) {
                const std::string stripped = name.substr(
                    0, name.size() - std::string_view(s).size());
                auto it = familyType_.find(stripped);
                if (it != familyType_.end() &&
                    (it->second == "histogram" ||
                     it->second == "summary")) {
                    family = stripped;
                    suffix = s;
                }
                break;
            }
        }
        sampledFamilies_.insert(family);

        if (family == name)
            return true; // nothing more to check for scalars

        std::string le;
        std::vector<std::pair<std::string, std::string>> rest;
        for (const auto &[k, v] : labels) {
            if (k == "le")
                le = v;
            else
                rest.emplace_back(k, v);
        }
        std::sort(rest.begin(), rest.end());
        std::string key;
        for (const auto &[k, v] : rest) {
            key += k;
            key += '=';
            key += v;
            key += '\x1f';
        }

        if (suffix == "_bucket") {
            if (le.empty())
                return setError("_bucket sample lacks an le label");
            double leValue = 0;
            if (!parseValue(le, leValue))
                return setError("invalid le value '" + le + "'");
            BucketSeries &series = histBuckets_[family][key];
            if (std::isinf(leValue) && leValue > 0) {
                series.hasInf = true;
                series.infCount = value;
            }
            series.buckets.push_back({leValue, value});
        } else if (suffix == "_count") {
            histCounts_[family][key] = value;
        }
        return true;
    }

    /** Cumulative-series semantics, after all lines are read. */
    bool
    checkHistograms()
    {
        for (const auto &[family, byLabels] : histBuckets_) {
            for (const auto &[key, series] : byLabels) {
                double lastLe = -HUGE_VAL;
                double lastCount = -1;
                for (const BucketSample &b : series.buckets) {
                    if (b.le < lastLe)
                        return setError(
                            "histogram '" + family +
                            "' buckets not in ascending le order");
                    if (b.count < lastCount)
                        return setError(
                            "histogram '" + family +
                            "' bucket counts not cumulative");
                    lastLe = b.le;
                    lastCount = b.count;
                }
                if (!series.hasInf)
                    return setError("histogram '" + family +
                                    "' lacks an le=\"+Inf\" bucket");
                const auto countsIt = histCounts_.find(family);
                if (countsIt == histCounts_.end() ||
                    countsIt->second.count(key) == 0)
                    return setError("histogram '" + family +
                                    "' lacks a _count sample");
                if (countsIt->second.at(key) != series.infCount)
                    return setError(
                        "histogram '" + family +
                        "' +Inf bucket does not equal _count");
            }
        }
        return true;
    }
};

} // namespace

PromCheckResult
checkProm(std::string_view text)
{
    return PromChecker(text).run();
}

} // namespace lag::obs
