// lag-lint: signal-safe
//
// The flight recorder's crash-dump path. Everything in this file may
// run inside a fatal-signal handler, so it is restricted to the
// async-signal-safe world: write(2)/open(2)/close(2), stack buffers,
// atomic loads. No malloc, no stdio, no std::string — the lag_lint
// `signal-safe` rule enforces that mechanically for any file carrying
// the marker above.
//
// The rings are read UNSYNCHRONIZED, including the request ring whose
// live readers take a mutex: the crashing thread may hold that mutex,
// and a crash dump that deadlocks is worse than one with a torn row.
// All lengths are clamped at read time, so a torn row can garble text
// but never index out of bounds.

#include "flightrec.hh"

#include <fcntl.h>
#include <unistd.h>

#include "util/shutdown.hh"
#include "util/thread_annotations.hh"

namespace lag::obs
{

namespace
{

/** Buffered writer over write(2); everything on the stack. */
class SigSafeWriter
{
  public:
    explicit SigSafeWriter(int fd) : fd_(fd) {}
    ~SigSafeWriter() { flush(); }

    void ch(char c)
    {
        if (len_ == sizeof(buf_))
            flush();
        buf_[len_++] = c;
    }

    void str(const char *s)
    {
        while (*s != '\0')
            ch(*s++);
    }

    void u64(std::uint64_t v)
    {
        char tmp[20];
        int n = 0;
        do {
            tmp[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n > 0)
            ch(tmp[--n]);
    }

    void i64(std::int64_t v)
    {
        if (v < 0) {
            ch('-');
            // -(v + 1) avoids overflow on INT64_MIN.
            u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
        } else {
            u64(static_cast<std::uint64_t>(v));
        }
    }

    /** 32 lowercase hex chars: hi then lo, zero-padded. */
    void hex128(std::uint64_t hi, std::uint64_t lo)
    {
        for (int i = 15; i >= 0; --i)
            ch(kHexDigits[(hi >> (4 * i)) & 0xF]);
        for (int i = 15; i >= 0; --i)
            ch(kHexDigits[(lo >> (4 * i)) & 0xF]);
    }

    /** JSON string from at most @p maxLen bytes of @p s. */
    void quoted(const char *s, std::size_t maxLen)
    {
        ch('"');
        for (std::size_t i = 0; i < maxLen && s[i] != '\0'; ++i) {
            const char c = s[i];
            if (c == '"' || c == '\\') {
                ch('\\');
                ch(c);
            } else if (static_cast<unsigned char>(c) < 0x20) {
                str("\\u00");
                ch(kHexDigits[(c >> 4) & 0xF]);
                ch(kHexDigits[c & 0xF]);
            } else {
                ch(c);
            }
        }
        ch('"');
    }

    void flush()
    {
        std::size_t done = 0;
        while (done < len_) {
            const ssize_t n =
                ::write(fd_, buf_ + done, len_ - done);
            if (n <= 0)
                break; // nothing recoverable in a signal handler
            done += static_cast<std::size_t>(n);
        }
        len_ = 0;
    }

  private:
    static constexpr const char *kHexDigits = "0123456789abcdef";
    int fd_;
    char buf_[512];
    std::size_t len_ = 0;
};

} // namespace

void
flightrecDumpImpl(const FlightRecorder &rec, int fd, int sig)
    LAG_NO_THREAD_SAFETY_ANALYSIS
{
    SigSafeWriter w(fd);
    w.str("{\"flightrec\": 1, \"signal\": ");
    w.i64(sig);

    const FatalNote note = fatalNote();
    if (note.what == nullptr) {
        w.str(", \"fatal\": null");
    } else {
        w.str(", \"fatal\": {\"what\": ");
        w.quoted(note.what, 256);
        w.str(", \"a\": ");
        w.quoted(note.detailA != nullptr ? note.detailA : "", 256);
        w.str(", \"b\": ");
        w.quoted(note.detailB != nullptr ? note.detailB : "", 256);
        w.ch('}');
    }

    // Request ring, most recent first, mutex deliberately skipped
    // (see file comment). Lengths re-clamped against a torn row.
    w.str(", \"requests\": [");
    bool first = true;
    {
        const std::size_t cap = rec.requestRing_.size();
        const std::uint64_t newest = rec.requestHead_;
        const std::uint64_t oldest =
            newest > cap ? newest - cap : 0;
        for (std::uint64_t i = newest; i-- > oldest;) {
            const auto &slot = rec.requestRing_[i % cap];
            if (!slot.used)
                continue;
            if (!first)
                w.str(", ");
            first = false;
            w.str("{\"method\": ");
            w.quoted(slot.method, sizeof(slot.method) - 1);
            w.str(", \"target\": ");
            w.quoted(slot.target, sizeof(slot.target) - 1);
            w.str(", \"status\": ");
            w.i64(slot.status);
            w.str(", \"dur_us\": ");
            w.i64(slot.durUs);
            w.str(", \"start_ns\": ");
            w.i64(slot.startNs);
            w.str(", \"slow\": ");
            w.str(slot.slow ? "true" : "false");
            w.str(", \"trace\": \"");
            w.hex128(slot.traceHi, slot.traceLo);
            w.str("\"}");
        }
    }
    w.ch(']');

    w.str(", \"events\": [");
    first = true;
    {
        const std::size_t cap = rec.eventRing_.size();
        const std::uint64_t newest =
            rec.eventHead_.load(std::memory_order_relaxed);
        const std::uint64_t oldest =
            newest > cap ? newest - cap : 0;
        for (std::uint64_t i = oldest; i < newest; ++i) {
            const auto &slot = rec.eventRing_[i % cap];
            const char *what =
                slot.what.load(std::memory_order_relaxed);
            if (what == nullptr)
                continue;
            const char *a =
                slot.a.load(std::memory_order_relaxed);
            const char *b =
                slot.b.load(std::memory_order_relaxed);
            if (!first)
                w.str(", ");
            first = false;
            w.str("{\"what\": ");
            w.quoted(what, 256);
            w.str(", \"a\": ");
            w.quoted(a != nullptr ? a : "", 256);
            w.str(", \"b\": ");
            w.quoted(b != nullptr ? b : "", 256);
            w.str(", \"at_ns\": ");
            w.i64(slot.atNs.load(std::memory_order_relaxed));
            w.ch('}');
        }
    }
    w.ch(']');

    w.str(", \"spans\": [");
    first = true;
    {
        const std::size_t cap = rec.spanRing_.size();
        const std::uint64_t newest =
            rec.spanHead_.load(std::memory_order_relaxed);
        const std::uint64_t oldest =
            newest > cap ? newest - cap : 0;
        for (std::uint64_t i = oldest; i < newest; ++i) {
            const auto &slot = rec.spanRing_[i % cap];
            const char *name =
                slot.name.load(std::memory_order_relaxed);
            if (name == nullptr)
                continue;
            if (!first)
                w.str(", ");
            first = false;
            w.str("{\"name\": ");
            w.quoted(name, 256);
            w.str(", \"trace\": \"");
            w.hex128(slot.traceHi.load(std::memory_order_relaxed),
                     slot.traceLo.load(std::memory_order_relaxed));
            w.str("\", \"tid\": ");
            w.u64(slot.tid.load(std::memory_order_relaxed));
            w.str(", \"start_ns\": ");
            w.i64(slot.startNs.load(std::memory_order_relaxed));
            w.str(", \"dur_ns\": ");
            w.i64(slot.durNs.load(std::memory_order_relaxed));
            w.ch('}');
        }
    }
    w.str("]}\n");
}

void
FlightRecorder::dumpTo(int fd, int sig) const
{
    flightrecDumpImpl(*this, fd, sig);
}

bool
FlightRecorder::dumpToPath(int sig) const
{
    if (path_[0] == '\0')
        return false;
    const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    dumpTo(fd, sig);
    ::close(fd);
    return true;
}

void
flightrecFatalDump(int sig)
{
    FlightRecorder *rec = armedFlightRecorder();
    if (rec != nullptr)
        rec->dumpToPath(sig);
}

} // namespace lag::obs
