/**
 * @file
 * Black-box flight recorder: bounded rings of recent telemetry that
 * survive to a crash dump.
 *
 * Spans and metrics answer "what is the process doing over time";
 * the flight recorder answers "what was it doing *just now*" — the
 * question that matters when lagd aborts mid-request. It keeps three
 * fixed-size rings, sized once at configure() and never reallocated:
 *
 *  - **spans**: the most recent closed spans from every thread, fed
 *    by SpanBuffer::append before its own capacity check, so the
 *    ring keeps rolling even after a per-thread buffer saturates.
 *  - **events**: structured one-shot markers (`recordEvent`) — a
 *    lock-rank violation, a watchdog stall, a slow request — built
 *    from static-lifetime strings only.
 *  - **requests**: the last-N served request summaries (method,
 *    target, status, latency, trace id), recorded by the serve
 *    layer when a response goes out.
 *
 * Concurrency model, chosen for the two readers it has to serve:
 *
 *  - Span/event slots are *all-atomic*: writers claim a slot with a
 *    fetch_add on the head counter and store each field
 *    independently. A concurrent reader may see a torn slot — name
 *    from one span, duration from another — which is acceptable for
 *    a diagnostic ring and, crucially, is not a data race, so TSan
 *    builds stay clean. Numeric fields are relaxed; pointer fields
 *    are release/acquire, because an internedName() string may be
 *    minted on the recording thread an instant before the store and
 *    its *bytes* must be published along with the pointer. All
 *    pointer fields hold stable never-freed strings (literals or
 *    internedName()).
 *  - Request slots are plain structs under a LockRank::Obs mutex:
 *    they contain variable-length text, and the live /debugz reader
 *    wants coherent rows.
 *  - The **crash dump** path (flightrec_dump.cc, `// lag-lint:
 *    signal-safe`) reads everything unsynchronized — including the
 *    request slots, mutex deliberately skipped since the crashing
 *    thread may hold it. Lengths are clamped at read time so a torn
 *    row can garble text but never overflow, and the dump uses only
 *    write(2)/open(2) with a stack buffer: no malloc, no stdio.
 *
 * configure() takes effect on the FIRST call only: rings are sized
 * and the recorder armed exactly once, so recording threads never
 * race a reallocation. armedFlightRecorder() is the fast-path gate —
 * a single relaxed load returning nullptr until configured.
 */

#ifndef LAG_OBS_FLIGHTREC_HH
#define LAG_OBS_FLIGHTREC_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "span.hh"
#include "trace_context.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::obs
{

/** Ring sizes and the fatal-dump destination. */
struct FlightRecorderOptions
{
    std::size_t spanCapacity = 4096;
    std::size_t eventCapacity = 1024;
    std::size_t requestCapacity = 64;
    /** Where fatal-signal dumps go; empty disables the file (the
     * live /debugz endpoints still work). */
    std::string dumpPath;
};

/** One served request, as the serve layer saw it. */
struct RequestSummary
{
    std::string method;
    std::string target;
    TraceContext trace;
    std::int64_t startNs = 0; ///< processElapsedNs() at accept
    std::int64_t durUs = 0;
    int status = 0;
    bool slow = false; ///< exceeded --slow-request-ms
};

class FlightRecorder
{
  public:
    /** The process-wide recorder (leaked singleton, like the
     * metrics registry — atexit/signal paths must never race
     * static destruction). */
    static FlightRecorder &instance();

    /** Size the rings and arm recording. First call wins; later
     * calls are ignored (rings must never reallocate under
     * concurrent writers). */
    void configure(const FlightRecorderOptions &options);

    bool armed() const
    {
        return armed_.load(std::memory_order_acquire);
    }

    /** Fatal-dump path fixed at configure; "" when none. Returns a
     * pointer into fixed storage — safe to read from a signal
     * handler. */
    const char *dumpPath() const { return path_; }

    /** Called by SpanBuffer::append for every closed span. */
    void recordSpan(const SpanEvent &event, std::uint32_t tid);

    /** Record a structured marker. All three strings must have
     * static lifetime (literals or internedName()); a and b are
     * optional detail fields. */
    void recordEvent(const char *what, const char *a = nullptr,
                     const char *b = nullptr);

    /** Record a finished request (serve layer, response written). */
    void recordRequest(const RequestSummary &request);

    /** Most-recent-first copy of the request ring. */
    std::vector<RequestSummary> recentRequests() const;

    /**
     * The full recorder state as one JSON object — the same shape
     * the crash dump writes, so one validator (checkFlightrec)
     * covers both:
     *   {"flightrec":1, "signal":0, "fatal":null,
     *    "requests":[…], "events":[…], "spans":[…]}
     */
    std::string liveJson() const;

    /**
     * /debugz/requests payload: {"requests":[…]}. With @p filter,
     * only matching requests plus that request's span tree under
     * a "spans" key.
     */
    std::string requestsJson(const TraceContext *filter) const;

    /** Async-signal-safe dump of the rings to @p fd (see
     * flightrec_dump.cc). @p sig is recorded in the payload; pass 0
     * for non-signal dumps. */
    void dumpTo(int fd, int sig) const;

    /** dumpTo() into dumpPath(); false when no path configured or
     * open failed. Async-signal-safe. */
    bool dumpToPath(int sig) const;

  private:
    FlightRecorder() = default;

    /** One span ring slot; every field an independent atomic —
     * numeric fields relaxed, pointers release/acquire (see file
     * comment on torn reads). */
    struct SpanSlot
    {
        std::atomic<const char *> name{nullptr};
        std::atomic<std::uint64_t> traceHi{0};
        std::atomic<std::uint64_t> traceLo{0};
        std::atomic<std::int64_t> startNs{0};
        std::atomic<std::int64_t> durNs{0};
        std::atomic<std::uint32_t> tid{0};
    };

    struct EventSlot
    {
        std::atomic<const char *> what{nullptr};
        std::atomic<const char *> a{nullptr};
        std::atomic<const char *> b{nullptr};
        std::atomic<std::int64_t> atNs{0};
    };

    /** Fixed-capacity request row; text truncated to fit. The
     * crash-dump reader clamps the lengths again so a torn row
     * can never index out of bounds. */
    struct RequestSlot
    {
        char method[8] = {};
        char target[160] = {};
        std::uint8_t methodLen = 0;
        std::uint8_t targetLen = 0;
        std::uint64_t traceHi = 0;
        std::uint64_t traceLo = 0;
        std::int64_t startNs = 0;
        std::int64_t durUs = 0;
        int status = 0;
        bool slow = false;
        bool used = false;
    };

    friend void flightrecDumpImpl(const FlightRecorder &rec, int fd,
                                  int sig);

    std::atomic<bool> armed_{false};
    char path_[256] = {};

    std::vector<SpanSlot> spanRing_;
    std::atomic<std::uint64_t> spanHead_{0};

    std::vector<EventSlot> eventRing_;
    std::atomic<std::uint64_t> eventHead_{0};

    // The crash-dump reader (flightrecDumpImpl, opted out of the
    // analysis) deliberately skips this mutex — see file comment.
    mutable Mutex requestMutex_{LockRank::Obs,
                                "obs-flightrec-requests"};
    std::vector<RequestSlot> requestRing_
        LAG_GUARDED_BY(requestMutex_);
    std::uint64_t requestHead_ LAG_GUARDED_BY(requestMutex_) = 0;
};

namespace detail
{
/** Set (once) by configure; the recording fast path and the signal
 * handler both read it — no static-init guard, no flag + separate
 * instance lookup. */
extern std::atomic<FlightRecorder *> g_armedFlightRecorder;
} // namespace detail

/** The armed recorder, or nullptr before configure(). One relaxed
 * load — cheap enough for the span hot path. */
inline FlightRecorder *
armedFlightRecorder()
{
    return detail::g_armedFlightRecorder.load(
        std::memory_order_acquire);
}

/**
 * The span tree of one request: every recorded span stamped with
 * @p ctx, across all threads, nested by containment (a span is a
 * child of the innermost same-thread span enclosing it in time).
 */
std::string spanTreeJson(const TraceContext &ctx);

/** Human-readable indented rendering (slow-request log). */
std::string spanTreeText(const TraceContext &ctx);

/** Fatal-signal hook for util/shutdown's installFatalSignalDumper:
 * dumps the armed recorder (if any) to its configured path.
 * Async-signal-safe. */
void flightrecFatalDump(int sig);

} // namespace lag::obs

#endif // LAG_OBS_FLIGHTREC_HH
