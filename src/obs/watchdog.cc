#include "watchdog.hh"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "flightrec.hh"
#include "metrics.hh"
#include "util/logging.hh"
#include "util/thread_name.hh"

namespace lag::obs
{

namespace
{

/** Resident set in bytes from /proc/self/statm; 0 if unreadable
 * (non-Linux), which simply leaves the gauge at zero. */
std::int64_t
readRssBytes()
{
    std::FILE *file = std::fopen("/proc/self/statm", "re");
    if (file == nullptr)
        return 0;
    long long vmPages = 0;
    long long rssPages = 0;
    const int got =
        std::fscanf(file, "%lld %lld", &vmPages, &rssPages);
    std::fclose(file);
    if (got != 2)
        return 0;
    return static_cast<std::int64_t>(rssPages) *
           static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
}

std::int64_t
countOpenFds()
{
    DIR *dir = opendir("/proc/self/fd");
    if (dir == nullptr)
        return 0;
    std::int64_t count = 0;
    while (readdir(dir) != nullptr)
        ++count;
    closedir(dir);
    // ".", "..", and the directory's own fd don't count.
    return count > 3 ? count - 3 : 0;
}

} // namespace

Watchdog::Watchdog(WatchdogOptions options) : options_(options) {}

Watchdog::~Watchdog()
{
    stop();
}

void
Watchdog::start()
{
    if (running_)
        return;
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { threadMain(); });
    running_ = true;
}

void
Watchdog::stop()
{
    if (!running_)
        return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    running_ = false;
}

void
Watchdog::threadMain()
{
    setThreadName("lag-watchdog");
    // Sleep in short slices so stop() never waits a full period;
    // no mutex or condvar keeps the watchdog out of every lock
    // order (it must still sample when the rest of the process is
    // wedged on one).
    const auto slice = std::chrono::milliseconds(20);
    while (!stop_.load(std::memory_order_relaxed)) {
        sampleOnce();
        int sleptMs = 0;
        while (sleptMs < options_.periodMs &&
               !stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(slice);
            sleptMs += 20;
        }
    }
}

bool
Watchdog::sampleOnce()
{
    MetricsRegistry &reg = metrics();
    reg.gauge("process.rss_bytes").set(readRssBytes());
    reg.gauge("process.open_fds").set(countOpenFds());
    reg.gauge("process.uptime_ms")
        .set(processElapsedNs() / 1000000);

    // Stall rule: queued work with no task completion between two
    // samples means the workers are not draining. One quiet sample
    // can be a long-running task; stallSamples in a row is a wedge.
    const MetricsSnapshot snap = reg.snapshot();
    std::int64_t queueDepth = 0;
    for (const auto &g : snap.gauges) {
        if (g.name == "pool.queue.depth") {
            queueDepth = g.value;
            break;
        }
    }
    const std::uint64_t taskCount =
        snap.counterValue("pool.task.count");

    bool tripped = false;
    if (havePrevSample_ && queueDepth > 0 &&
        taskCount == lastTaskCount_) {
        ++stallStreak_;
        if (stallStreak_ == options_.stallSamples) {
            warn("watchdog: pool stalled — ", queueDepth,
                 " queued task(s), no completions for ",
                 stallStreak_, " samples");
            reg.counter("watchdog.pool.stalled").add();
            if (FlightRecorder *rec = armedFlightRecorder())
                rec->recordEvent("watchdog-pool-stalled");
            tripped = true;
        }
    } else {
        stallStreak_ = 0;
    }
    lastTaskCount_ = taskCount;
    havePrevSample_ = true;
    return tripped;
}

} // namespace lag::obs
