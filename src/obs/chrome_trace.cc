#include "chrome_trace.hh"

#include <cstdio>

#include "span.hh"
#include "trace_context.hh"
#include "util/logging.hh"

namespace lag::obs
{

namespace
{

/** Append @p text as a JSON string literal (quotes + escapes). */
void
appendJsonString(std::string &out, std::string_view text)
{
    out += '"';
    for (const char ch : text) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
            break;
        }
    }
    out += '"';
}

/** Append nanoseconds as a decimal microsecond value ("12.345"). */
void
appendMicros(std::string &out, std::int64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    out += buf;
}

} // namespace

std::string
chromeTraceJson()
{
    const auto buffers = spanBuffers();

    std::string out;
    out += "{\"traceEvents\":[";
    bool first = true;

    // Thread-name metadata first: one ph:"M" event per buffer makes
    // Perfetto label each track with the lag thread name.
    for (const auto &buffer : buffers) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":";
        out += std::to_string(buffer->tid());
        out += ",\"args\":{\"name\":";
        appendJsonString(out, buffer->threadName());
        out += "}}";
    }

    for (const auto &buffer : buffers) {
        const std::size_t n = buffer->published();
        for (std::size_t i = 0; i < n; ++i) {
            const SpanEvent &event = buffer->at(i);
            out += first ? "\n" : ",\n";
            first = false;
            out += "{\"name\":";
            appendJsonString(out, event.name);
            out += ",\"cat\":\"lag\",\"ph\":\"X\",\"ts\":";
            appendMicros(out, event.startNs);
            out += ",\"dur\":";
            appendMicros(out, event.durNs);
            out += ",\"pid\":1,\"tid\":";
            out += std::to_string(buffer->tid());
            const bool hasTrace =
                (event.traceHi | event.traceLo) != 0;
            if (event.argKey != nullptr || hasTrace) {
                out += ",\"args\":{";
                if (event.argKey != nullptr) {
                    appendJsonString(out, event.argKey);
                    out += ':';
                    out += std::to_string(event.argValue);
                }
                if (hasTrace) {
                    if (event.argKey != nullptr)
                        out += ',';
                    out += "\"trace\":\"";
                    out += traceIdHex(TraceContext{event.traceHi,
                                                   event.traceLo});
                    out += '"';
                }
                out += '}';
            }
            out += '}';
        }
    }

    out += "\n]}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    const std::string json = chromeTraceJson();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        warn("cannot write self-trace file '", path, "'");
        return false;
    }
    const std::size_t written =
        std::fwrite(json.data(), 1, json.size(), file);
    const bool closed = std::fclose(file) == 0;
    const bool ok = written == json.size() && closed;
    if (!ok)
        warn("short write to self-trace file '", path, "'");
    return ok;
}

} // namespace lag::obs
