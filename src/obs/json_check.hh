/**
 * @file
 * Minimal strict JSON validator for self-trace / metrics output.
 *
 * This is a checker, not a parser: it verifies that a byte string is
 * one syntactically well-formed JSON value (RFC 8259 grammar —
 * objects, arrays, strings with escapes, numbers, true/false/null,
 * no trailing garbage) without building a document tree. The golden
 * tests and the ci `trace_check` tool run it over the files
 * `--self-trace` and `--metrics-out` produce, so an exporter bug
 * that emits a bare comma or an unescaped quote fails fast instead
 * of surfacing as a Perfetto import error later.
 *
 * checkChromeTrace() adds the one structural requirement Perfetto
 * has: a top-level object containing a "traceEvents" key whose value
 * is an array.
 */

#ifndef LAG_OBS_JSON_CHECK_HH
#define LAG_OBS_JSON_CHECK_HH

#include <string>
#include <string_view>

namespace lag::obs
{

/** Outcome of a validation run. */
struct JsonCheckResult
{
    bool ok = false;
    std::size_t errorOffset = 0; ///< byte offset of first error
    std::string message;         ///< empty when ok
};

/** Validate that @p text is exactly one well-formed JSON value. */
JsonCheckResult checkJson(std::string_view text);

/**
 * checkJson() plus the Chrome-trace shape requirement: top-level
 * object with a "traceEvents" member holding an array.
 */
JsonCheckResult checkChromeTrace(std::string_view text);

/**
 * checkJson() plus the flight-recorder dump shape: a top-level
 * object with a "flightrec" member and "requests"/"events"/"spans"
 * array members (the shape FlightRecorder::liveJson and the crash
 * dump both emit).
 */
JsonCheckResult checkFlightrec(std::string_view text);

} // namespace lag::obs

#endif // LAG_OBS_JSON_CHECK_HH
