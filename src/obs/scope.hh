/**
 * @file
 * Process-level wiring of the observability layer.
 *
 * Binaries call obs::install() once, right after argument parsing,
 * with the paths the user gave (`--self-trace`, `--metrics-out`, or
 * their LAGALYZER_SELF_TRACE / LAGALYZER_METRICS_OUT env
 * equivalents — see app::parseObsOptions). install() turns span
 * recording on when a self-trace path is present and registers one
 * atexit flush that
 *
 *  - writes the Chrome trace-event JSON,
 *  - writes the metrics dump (JSON when the path ends in ".json",
 *    text otherwise), and
 *  - informs a one-line metrics summary so batch logs show the
 *    steal/cache/decode counters without opening any file.
 *
 * When neither path is set install() is a no-op: spans stay
 * disabled, nothing is registered, and output is byte-identical to
 * a build without the layer.
 */

#ifndef LAG_OBS_SCOPE_HH
#define LAG_OBS_SCOPE_HH

#include <string>

namespace lag::obs
{

/** Export destinations; empty path = that export is off. */
struct ObsOptions
{
    std::string selfTracePath; ///< Chrome trace-event JSON
    std::string metricsPath;   ///< metrics dump (json/text)
    std::string flightrecPath; ///< fatal-signal .flightrec dump

    bool
    any() const
    {
        return !selfTracePath.empty() || !metricsPath.empty() ||
               !flightrecPath.empty();
    }
};

/** Arm exports per @p options; see the file comment. Safe to call
 * once per process (later calls replace unflushed options). */
void install(const ObsOptions &options);

/** Run the installed exports now (idempotent; atexit calls this). */
void flush();

} // namespace lag::obs

#endif // LAG_OBS_SCOPE_HH
