#include "span.hh"

#include <deque>

#include "flightrec.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::obs
{

namespace
{

/** Spans one thread can hold before dropping (≈2.5 MB of slots).
 * Session-sized work records tens of spans per task; 64k covers
 * hours of study pipeline before a single drop. */
constexpr std::size_t kSpanCapacity = std::size_t{1} << 16;

Mutex &
registryMutex()
{
    static Mutex mutex{LockRank::Obs, "obs-span-registry"};
    return mutex;
}

/** Registered buffers; shared_ptrs keep them alive past thread
 * exit so an at-exit export still sees worker spans. Leaked on
 * purpose: atexit exporters must never race static destruction. */
std::vector<std::shared_ptr<SpanBuffer>> &
registry() LAG_REQUIRES(registryMutex())
{
    static auto *buffers =
        new std::vector<std::shared_ptr<SpanBuffer>>();
    return *buffers;
}

/** Interned dynamic names; deque keeps addresses stable. */
std::deque<std::string> &
internTable() LAG_REQUIRES(registryMutex())
{
    static auto *table = new std::deque<std::string>();
    return *table;
}

} // namespace

SpanBuffer::SpanBuffer(std::uint32_t tid, std::string threadName,
                       std::size_t capacity)
    : slots_(capacity), tid_(tid), threadName_(std::move(threadName))
{
}

void
SpanBuffer::append(const SpanEvent &event)
{
    // Feed the flight recorder before the capacity check: its ring
    // keeps rolling even after this thread's buffer saturates, so a
    // crash dump always shows the most recent work.
    if (FlightRecorder *rec = armedFlightRecorder())
        rec->recordSpan(event, tid_);
    const std::size_t i = size_.load(std::memory_order_relaxed);
    if (i >= slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    slots_[i] = event;
    // Release pairs with published()'s acquire: a drainer that
    // observes count i+1 also observes the slot write above.
    size_.store(i + 1, std::memory_order_release);
}

namespace detail
{

std::atomic<bool> g_spansEnabled{false};

SpanBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<SpanBuffer> t_buffer;
    if (!t_buffer) {
        t_buffer = std::make_shared<SpanBuffer>(
            currentThreadId(), currentThreadName(), kSpanCapacity);
        MutexLock lock(registryMutex());
        registry().push_back(t_buffer);
    }
    return *t_buffer;
}

} // namespace detail

void
setSpansEnabled(bool enabled)
{
    detail::g_spansEnabled.store(enabled,
                                 std::memory_order_relaxed);
}

const char *
internedName(std::string_view name)
{
    MutexLock lock(registryMutex());
    std::deque<std::string> &table = internTable();
    for (const std::string &entry : table) {
        if (entry == name)
            return entry.c_str();
    }
    table.emplace_back(name);
    return table.back().c_str();
}

std::vector<std::shared_ptr<SpanBuffer>>
spanBuffers()
{
    MutexLock lock(registryMutex());
    return registry();
}

std::size_t
publishedSpanCount()
{
    std::size_t total = 0;
    for (const auto &buffer : spanBuffers())
        total += buffer->published();
    return total;
}

std::uint64_t
droppedSpanCount()
{
    std::uint64_t total = 0;
    for (const auto &buffer : spanBuffers())
        total += buffer->dropped();
    return total;
}

} // namespace lag::obs
