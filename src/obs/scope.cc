#include "scope.hh"

#include <cstdio>
#include <cstdlib>

#include "chrome_trace.hh"
#include "flightrec.hh"
#include "metrics.hh"
#include "span.hh"
#include "util/logging.hh"
#include "util/shutdown.hh"

namespace lag::obs
{

namespace
{

/** Installed destinations; leaked so the atexit flush can read them
 * after main()'s locals are gone. */
ObsOptions *g_options = nullptr;
bool g_atexitRegistered = false;
bool g_flushed = false;

bool
endsWith(const std::string &text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
        warn("cannot write metrics file '", path, "'");
        return false;
    }
    const std::size_t written =
        std::fwrite(contents.data(), 1, contents.size(), file);
    const bool closed = std::fclose(file) == 0;
    if (written != contents.size() || !closed) {
        warn("short write to metrics file '", path, "'");
        return false;
    }
    return true;
}

} // namespace

void
install(const ObsOptions &options)
{
    if (!options.any())
        return;
    if (g_options == nullptr)
        g_options = new ObsOptions();
    *g_options = options;
    g_flushed = false;
    if (!options.selfTracePath.empty())
        setSpansEnabled(true);
    if (!options.flightrecPath.empty()) {
        // Arm the flight recorder (first configure wins) and route
        // fatal signals through its dump. The rings are fed from
        // span recording, so spans must be on for the black box to
        // contain anything.
        FlightRecorderOptions recorder_options;
        recorder_options.dumpPath = options.flightrecPath;
        FlightRecorder::instance().configure(recorder_options);
        setSpansEnabled(true);
        installFatalSignalDumper(flightrecFatalDump);
    }
    if (!g_atexitRegistered) {
        g_atexitRegistered = true;
        std::atexit(flush);
        // A ^C must not leave a half-written self-trace or metrics
        // file: arm the shared signal machinery (batch default:
        // flush, then exit 128+signo). Daemons that armed Graceful
        // mode first keep control — the first installer wins — and
        // run the same flush via runShutdownCallbacks().
        installShutdownHandler(ShutdownMode::FlushAndExit);
        onShutdown(flush);
    }
}

void
flush()
{
    if (g_options == nullptr || g_flushed)
        return;
    g_flushed = true;

    if (!g_options->selfTracePath.empty()) {
        // Stop recording first so the drain below sees a quiesced
        // count from this thread; workers may still append, and the
        // acquire walk only reads fully published entries anyway.
        setSpansEnabled(false);
        if (writeChromeTrace(g_options->selfTracePath)) {
            inform("self-trace: wrote ", publishedSpanCount(),
                   " spans to '", g_options->selfTracePath, "' (",
                   droppedSpanCount(), " dropped)");
        }
    }

    if (!g_options->metricsPath.empty()) {
        const std::string dump =
            endsWith(g_options->metricsPath, ".json")
                ? metrics().dumpJson()
                : metrics().dumpText();
        if (writeFile(g_options->metricsPath, dump)) {
            inform("metrics: wrote '", g_options->metricsPath,
                   "'");
        }
    }

    inform(metrics().summaryLine());
}

} // namespace lag::obs
