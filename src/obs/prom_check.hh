/**
 * @file
 * Strict validator for Prometheus text exposition (format 0.0.4).
 *
 * The counterpart of json_check for `/metricsz?format=prom`: a
 * checker, not a parser. It verifies line grammar — `# HELP` /
 * `# TYPE` comments, sample lines `name{labels} value [timestamp]`
 * with legal metric/label names, escaped label values and float
 * values (including +Inf/-Inf/NaN) — plus the semantic rules a
 * scraper actually enforces:
 *
 *  - TYPE appears at most once per family, and before any of that
 *    family's samples,
 *  - histogram `_bucket` series are cumulative: per label set, the
 *    counts are nondecreasing in ascending `le` order, an
 *    `le="+Inf"` bucket exists, and it equals the `_count` sample.
 *
 * trace_check --prom runs this over a live scrape in ci/check.sh,
 * and the property tests run it over dumpProm() round-trips.
 */

#ifndef LAG_OBS_PROM_CHECK_HH
#define LAG_OBS_PROM_CHECK_HH

#include <string>
#include <string_view>

namespace lag::obs
{

/** Outcome of a validation run. */
struct PromCheckResult
{
    bool ok = false;
    std::size_t line = 0; ///< 1-based line of first error
    std::string message;  ///< empty when ok
};

/** Validate @p text as one Prometheus text exposition payload. */
PromCheckResult checkProm(std::string_view text);

} // namespace lag::obs

#endif // LAG_OBS_PROM_CHECK_HH
