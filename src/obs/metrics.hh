/**
 * @file
 * Process-wide registry of named counters, gauges and fixed-bucket
 * histograms.
 *
 * Unlike spans, metrics are ALWAYS on: every instrument is a relaxed
 * atomic word (or a small array of them), so an increment costs one
 * uncontended atomic add — noise against the session-sized work the
 * engine schedules, and the reason no enable flag exists. The
 * registry itself (name → instrument) is locked under LockRank::Obs,
 * but instrumented code looks its instruments up once through
 * function-local statics and then touches only the atomics.
 *
 * Naming convention: dotted lowercase paths grouped by subsystem —
 * `pool.steal.success`, `cache.hit`, `trace.decode.bytes`. The text
 * and JSON dumps (`--metrics-out`) emit instruments sorted by name,
 * so diffs of two runs line up.
 *
 * Histograms have caller-fixed bucket upper bounds plus an implicit
 * overflow bucket, and track sum/count for mean rates: a value v
 * lands in the first bucket with v <= bound, or in the overflow
 * bucket when v exceeds every bound.
 */

#ifndef LAG_OBS_METRICS_HH
#define LAG_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lag::obs
{

/** Monotonic event count. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written level plus a high-water mark. */
class Gauge
{
  public:
    void set(std::int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
        updateMax(value);
    }

    /** Raise the high-water mark without touching the level. */
    void updateMax(std::int64_t value)
    {
        std::int64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(
                   seen, value, std::memory_order_relaxed)) {
        }
    }

    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    std::int64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> max_{0};
};

/** Fixed-bucket histogram; see the file comment for semantics. */
class Histogram
{
  public:
    /** @param bounds ascending bucket upper bounds (inclusive);
     * an overflow bucket past the last bound is implicit. */
    explicit Histogram(std::vector<std::int64_t> bounds);

    void record(std::int64_t value);

    const std::vector<std::int64_t> &bounds() const
    {
        return bounds_;
    }

    /** Count in bucket @p i; i == bounds().size() is overflow. */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::int64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<std::int64_t> bounds_;
    /** bounds_.size() + 1 slots; the last is the overflow bucket. */
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::int64_t> sum_{0};
};

/** Point-in-time copy of every instrument, sorted by name. */
struct MetricsSnapshot
{
    struct CounterValue
    {
        std::string name;
        std::uint64_t value = 0;
    };

    struct GaugeValue
    {
        std::string name;
        std::int64_t value = 0;
        std::int64_t max = 0;
    };

    struct HistogramValue
    {
        std::string name;
        std::vector<std::int64_t> bounds;
        std::vector<std::uint64_t> counts; ///< bounds + overflow
        std::uint64_t count = 0;
        std::int64_t sum = 0;
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;

    /** Counter value by name; 0 when absent (for harness JSON). */
    std::uint64_t counterValue(std::string_view name) const;

    /** Gauge high-water mark by name; 0 when absent. */
    std::int64_t gaugeMax(std::string_view name) const;
};

/** The name → instrument table. One per process; see metrics(). */
class MetricsRegistry
{
  public:
    /** Find-or-create. References stay valid for the process
     * lifetime; look up once, then hit only atomics. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);

    /** Find-or-create with @p bounds; a second caller gets the
     * existing histogram (bounds must then match — checked). */
    Histogram &histogram(std::string_view name,
                         std::vector<std::int64_t> bounds);

    /**
     * Labeled find-or-create: registered under the rendered name
     * `base{key="value"}` (value prom-escaped), which dumpProm()
     * parses back into a labeled sample. Keeping label cardinality
     * bounded (route names, not raw targets) is the caller's job.
     */
    Counter &counter(std::string_view base, std::string_view key,
                     std::string_view value);
    Gauge &gauge(std::string_view base, std::string_view key,
                 std::string_view value);
    Histogram &histogram(std::string_view base,
                         std::vector<std::int64_t> bounds,
                         std::string_view key,
                         std::string_view value);

    MetricsSnapshot snapshot() const;

    /** `name kind value` lines, sorted; for --metrics-out *.txt. */
    std::string dumpText() const;

    /** One JSON object {"counters":…,"gauges":…,"histograms":…}. */
    std::string dumpJson() const;

    /**
     * Prometheus text exposition (format 0.0.4): `# HELP`/`# TYPE`
     * per family, counters as `lag_<name>_total`, gauges as
     * `lag_<name>` plus `lag_<name>_max`, histograms as cumulative
     * `_bucket{le=…}`/`_sum`/`_count` series. Dotted names map to
     * underscores under a `lag_` prefix; label values escape
     * `\\`, `"` and newline per the spec.
     */
    std::string dumpProm() const;

    /** One log-friendly line of every nonzero counter/gauge-max,
     * emitted at exit by obs::flush(). */
    std::string summaryLine() const;
};

/** Escape a label value for the Prometheus text format
 * (`\\` → `\\\\`, `"` → `\"`, newline → `\n`). */
std::string promLabelEscape(std::string_view value);

/** The rendered registry key for a labeled instrument:
 * `base{key="escaped-value"}`. */
std::string labeledMetricName(std::string_view base,
                              std::string_view key,
                              std::string_view value);

/** The process-wide registry (intentionally leaked singleton). */
MetricsRegistry &metrics();

} // namespace lag::obs

#endif // LAG_OBS_METRICS_HH
