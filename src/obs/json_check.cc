#include "json_check.hh"

#include <cctype>

namespace lag::obs
{

namespace
{

/** Recursive-descent walker over one JSON value. */
class Checker
{
  public:
    explicit Checker(std::string_view text) : text_(text) {}

    JsonCheckResult
    run()
    {
        skipWs();
        if (!value())
            return fail();
        skipWs();
        if (pos_ != text_.size())
            return error("trailing characters after JSON value");
        JsonCheckResult result;
        result.ok = true;
        return result;
    }

    /** As run(), but also requires the Chrome-trace shape. */
    JsonCheckResult
    runChromeTrace()
    {
        JsonCheckResult result = run();
        if (!result.ok)
            return result;
        if (!topLevelObject_)
            return error("chrome trace must be a JSON object");
        if (!sawTraceEventsArray_)
            return error(
                "chrome trace lacks a \"traceEvents\" array");
        return result;
    }

    /** As run(), but also requires the flight-recorder shape. */
    JsonCheckResult
    runFlightrec()
    {
        JsonCheckResult result = run();
        if (!result.ok)
            return result;
        if (!topLevelObject_)
            return error(
                "flightrec dump must be a JSON object");
        if (!sawFlightrecKey_)
            return error(
                "flightrec dump lacks a \"flightrec\" member");
        if (!sawRequestsArray_)
            return error(
                "flightrec dump lacks a \"requests\" array");
        if (!sawEventsArray_)
            return error(
                "flightrec dump lacks an \"events\" array");
        if (!sawSpansArray_)
            return error(
                "flightrec dump lacks a \"spans\" array");
        return result;
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    bool topLevelObject_ = false;
    bool sawTraceEventsArray_ = false;
    bool sawFlightrecKey_ = false;
    bool sawRequestsArray_ = false;
    bool sawEventsArray_ = false;
    bool sawSpansArray_ = false;
    std::string error_;
    std::size_t errorPos_ = 0;

    JsonCheckResult
    fail()
    {
        JsonCheckResult result;
        result.ok = false;
        result.errorOffset = errorPos_;
        result.message =
            error_.empty() ? "malformed JSON" : error_;
        return result;
    }

    JsonCheckResult
    error(std::string msg)
    {
        error_ = std::move(msg);
        errorPos_ = pos_;
        return fail();
    }

    bool
    setError(const char *msg)
    {
        if (error_.empty()) {
            error_ = msg;
            errorPos_ = pos_;
        }
        return false;
    }

    bool
    eof() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return text_[pos_];
    }

    void
    skipWs()
    {
        while (!eof() && (peek() == ' ' || peek() == '\t' ||
                          peek() == '\n' || peek() == '\r'))
            ++pos_;
    }

    bool
    consume(char ch)
    {
        if (eof() || peek() != ch)
            return false;
        ++pos_;
        return true;
    }

    bool
    value()
    {
        if (eof())
            return setError("unexpected end of input");
        switch (peek()) {
        case '{':
            if (depth_ == 0)
                topLevelObject_ = true;
            return object();
        case '[':
            return array();
        case '"':
            return string(nullptr);
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return setError("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    object()
    {
        ++pos_; // '{'
        ++depth_;
        skipWs();
        if (consume('}')) {
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (eof() || peek() != '"')
                return setError("expected object key string");
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (!consume(':'))
                return setError("expected ':' after object key");
            skipWs();
            const bool topLevelKey = depth_ == 1;
            const std::size_t valueStart = pos_;
            if (!value())
                return false;
            if (topLevelKey) {
                const bool isArray = text_[valueStart] == '[';
                if (key == "traceEvents" && isArray)
                    sawTraceEventsArray_ = true;
                else if (key == "flightrec")
                    sawFlightrecKey_ = true;
                else if (key == "requests" && isArray)
                    sawRequestsArray_ = true;
                else if (key == "events" && isArray)
                    sawEventsArray_ = true;
                else if (key == "spans" && isArray)
                    sawSpansArray_ = true;
            }
            skipWs();
            if (consume('}'))
                break;
            if (!consume(','))
                return setError("expected ',' or '}' in object");
        }
        --depth_;
        return true;
    }

    bool
    array()
    {
        ++pos_; // '['
        ++depth_;
        skipWs();
        if (consume(']')) {
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                break;
            if (!consume(','))
                return setError("expected ',' or ']' in array");
        }
        --depth_;
        return true;
    }

    bool
    string(std::string *out)
    {
        ++pos_; // opening '"'
        while (true) {
            if (eof())
                return setError("unterminated string");
            const char ch = text_[pos_];
            if (static_cast<unsigned char>(ch) < 0x20)
                return setError(
                    "unescaped control character in string");
            ++pos_;
            if (ch == '"')
                return true;
            if (ch == '\\') {
                if (eof())
                    return setError("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                case '"':
                case '\\':
                case '/':
                case 'b':
                case 'f':
                case 'n':
                case 'r':
                case 't':
                    if (out != nullptr)
                        out->push_back(esc);
                    break;
                case 'u':
                    for (int i = 0; i < 4; ++i) {
                        if (eof() ||
                            std::isxdigit(static_cast<unsigned char>(
                                peek())) == 0)
                            return setError(
                                "invalid \\u escape");
                        ++pos_;
                    }
                    break;
                default:
                    return setError("invalid escape character");
                }
            } else if (out != nullptr) {
                out->push_back(ch);
            }
        }
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        consume('-');
        if (eof() ||
            std::isdigit(static_cast<unsigned char>(peek())) == 0)
            return setError("invalid number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (!eof() && std::isdigit(static_cast<unsigned char>(
                                 peek())) != 0)
                ++pos_;
        }
        if (consume('.')) {
            if (eof() ||
                std::isdigit(static_cast<unsigned char>(peek())) ==
                    0)
                return setError("digit required after '.'");
            while (!eof() && std::isdigit(static_cast<unsigned char>(
                                 peek())) != 0)
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!consume('+'))
                consume('-');
            if (eof() ||
                std::isdigit(static_cast<unsigned char>(peek())) ==
                    0)
                return setError("digit required in exponent");
            while (!eof() && std::isdigit(static_cast<unsigned char>(
                                 peek())) != 0)
                ++pos_;
        }
        return pos_ > start;
    }
};

} // namespace

JsonCheckResult
checkJson(std::string_view text)
{
    return Checker(text).run();
}

JsonCheckResult
checkChromeTrace(std::string_view text)
{
    return Checker(text).runChromeTrace();
}

JsonCheckResult
checkFlightrec(std::string_view text)
{
    return Checker(text).runFlightrec();
}

} // namespace lag::obs
