/**
 * @file
 * Lock-free per-thread span recorder — the engine observing itself.
 *
 * A span is one timed region of real (wall-clock) work: a task run,
 * a steal victim scan, a trace-decode section, an analysis shard.
 * The `LAG_SPAN("name")` RAII macro opens a span at construction and
 * records {name, thread, start, duration, optional numeric arg} at
 * destruction. Recording is designed to disappear when disabled and
 * to never contend when enabled:
 *
 *  - **Disabled** (the default): the constructor does one relaxed
 *    atomic load and a branch; nothing else happens. No allocation,
 *    no clock read, no store. This is the always-compiled,
 *    near-zero-cost mode every production run pays.
 *
 *  - **Enabled** (`--self-trace`, obs::setSpansEnabled): each thread
 *    appends to its own fixed-capacity buffer with a release store
 *    of the published count — no lock, no CAS, no sharing. Drainers
 *    (the Chrome-trace exporter, tests) read the count with acquire
 *    and the entries below it; the release/acquire pair makes the
 *    entries visible without ever pausing the recording thread.
 *    A full buffer drops further spans and counts the drops — the
 *    recorder never blocks and never reallocates.
 *
 * Buffers register themselves (under LockRank::Obs) on a thread's
 * first span and are kept alive by shared ownership past thread
 * exit, so an at-exit export still sees every worker's spans.
 *
 * Span names must be pointers of static lifetime: string literals,
 * or dynamic names pinned once via internedName(). Timestamps come
 * from lag::processElapsedNs(), the same epoch the log prefix uses.
 */

#ifndef LAG_OBS_SPAN_HH
#define LAG_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace_context.hh"
#include "util/thread_name.hh"

namespace lag::obs
{

/** One recorded span (or instant, when durNs == 0 is meaningful). */
struct SpanEvent
{
    const char *name = nullptr;   ///< static-lifetime span name
    const char *argKey = nullptr; ///< optional arg name (static)
    std::uint64_t argValue = 0;   ///< arg payload (bytes, index, …)
    std::int64_t startNs = 0;     ///< processElapsedNs() at open
    std::int64_t durNs = 0;       ///< close - open

    /** Originating request (currentTraceContext() at close); both
     * zero when the span ran outside any request context. */
    std::uint64_t traceHi = 0;
    std::uint64_t traceLo = 0;
};

/**
 * One thread's span storage: a fixed slot array written only by the
 * owning thread, published entry-by-entry through an atomic count.
 */
class SpanBuffer
{
  public:
    SpanBuffer(std::uint32_t tid, std::string threadName,
               std::size_t capacity);

    SpanBuffer(const SpanBuffer &) = delete;
    SpanBuffer &operator=(const SpanBuffer &) = delete;

    /** Owner thread only: publish @p event (or count a drop). */
    void append(const SpanEvent &event);

    /** Any thread: entries published so far (acquire). Entries with
     * index < published() are safe to read concurrently. */
    std::size_t published() const
    {
        return size_.load(std::memory_order_acquire);
    }

    const SpanEvent &at(std::size_t i) const { return slots_[i]; }

    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::uint32_t tid() const { return tid_; }
    const std::string &threadName() const { return threadName_; }

  private:
    std::vector<SpanEvent> slots_;
    std::atomic<std::size_t> size_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::uint32_t tid_;
    std::string threadName_;
};

namespace detail
{

extern std::atomic<bool> g_spansEnabled;

/** The calling thread's buffer, created and registered on first
 * use (name/tid snapshotted from util/thread_name). */
SpanBuffer &threadBuffer();

} // namespace detail

/** Flip span recording; metrics counters are unaffected (always
 * on). Enabled by obs::install when --self-trace was given. */
void setSpansEnabled(bool enabled);

/** True when LAG_SPAN currently records. */
inline bool
spansEnabled()
{
    return detail::g_spansEnabled.load(std::memory_order_relaxed);
}

/**
 * Pin a dynamic span name (a study stage name, say) to a
 * static-lifetime C string. Interning takes the obs lock — do it at
 * setup time, not per span.
 */
const char *internedName(std::string_view name);

/**
 * Stable snapshot handles of every registered buffer. Buffers are
 * append-only; a drainer walks [0, published()) of each.
 */
std::vector<std::shared_ptr<SpanBuffer>> spanBuffers();

/** Total spans published across all buffers (tests, export log). */
std::size_t publishedSpanCount();

/** Total spans dropped to full buffers across all threads. */
std::uint64_t droppedSpanCount();

/** RAII region timer behind LAG_SPAN; see the file comment. */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (spansEnabled()) {
            name_ = name;
            startNs_ = processElapsedNs();
        }
    }

    /** Span with one numeric argument shown in the trace viewer. */
    Span(const char *name, const char *arg_key,
         std::uint64_t arg_value)
        : Span(name)
    {
        argKey_ = arg_key;
        argValue_ = arg_value;
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Update the argument while the span is open (e.g. a byte
     * count known only at the end of the region). */
    void setArg(const char *arg_key, std::uint64_t arg_value)
    {
        argKey_ = arg_key;
        argValue_ = arg_value;
    }

    ~Span()
    {
        if (name_ == nullptr)
            return;
        SpanEvent event;
        event.name = name_;
        event.argKey = argKey_;
        event.argValue = argValue_;
        event.startNs = startNs_;
        event.durNs = processElapsedNs() - startNs_;
        const TraceContext ctx = currentTraceContext();
        event.traceHi = ctx.hi;
        event.traceLo = ctx.lo;
        detail::threadBuffer().append(event);
    }

  private:
    const char *name_ = nullptr;
    const char *argKey_ = nullptr;
    std::uint64_t argValue_ = 0;
    std::int64_t startNs_ = 0;
};

#define LAG_OBS_CONCAT2(a, b) a##b
#define LAG_OBS_CONCAT(a, b) LAG_OBS_CONCAT2(a, b)

/** Time the enclosing scope as span @p name (string literal). */
#define LAG_SPAN(name)                                                    \
    ::lag::obs::Span LAG_OBS_CONCAT(lag_span_, __LINE__)(name)

/** LAG_SPAN plus one numeric argument (key must be a literal). */
#define LAG_SPAN_ARG(name, key, value)                                    \
    ::lag::obs::Span LAG_OBS_CONCAT(lag_span_, __LINE__)(                 \
        name, key, static_cast<std::uint64_t>(value))

} // namespace lag::obs

#endif // LAG_OBS_SPAN_HH
