/**
 * @file
 * Chrome trace-event export of recorded spans.
 *
 * Serializes every published SpanEvent into the trace-event JSON
 * format understood by Perfetto (ui.perfetto.dev) and legacy
 * chrome://tracing: an object with a "traceEvents" array of complete
 * events (ph "X", microsecond ts/dur) plus thread-name metadata
 * events (ph "M") so the timeline shows "main", "pool-worker-0", …
 * instead of bare tids.
 *
 * Export is a drain, not a stop: it walks [0, published()) of each
 * buffer with acquire loads and can run while threads still record.
 * The at-exit flush in obs/scope.cc is the normal call site.
 */

#ifndef LAG_OBS_CHROME_TRACE_HH
#define LAG_OBS_CHROME_TRACE_HH

#include <string>

namespace lag::obs
{

/** Render all published spans as a Chrome trace-event JSON string. */
std::string chromeTraceJson();

/**
 * Write chromeTraceJson() to @p path. Returns false (after a warn)
 * when the file cannot be written; never throws.
 */
bool writeChromeTrace(const std::string &path);

} // namespace lag::obs

#endif // LAG_OBS_CHROME_TRACE_HH
