#include "trace_context.hh"

#include <atomic>

#include "util/thread_name.hh"

namespace lag::obs
{

namespace
{

thread_local TraceContext t_current;

/** splitmix64: cheap, well-mixed, no OS entropy on the mint path. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

TraceContext
currentTraceContext()
{
    return t_current;
}

TraceContext
mintTraceContext()
{
    static std::atomic<std::uint64_t> counter{1};
    const std::uint64_t n =
        counter.fetch_add(1, std::memory_order_relaxed);
    TraceContext ctx;
    ctx.hi = mix64(n);
    ctx.lo = mix64(n ^ static_cast<std::uint64_t>(
                           processElapsedNs()));
    // {0,0} is reserved for "no context"; a zero draw is
    // astronomically unlikely but costs one branch to exclude.
    if (!ctx.active())
        ctx.lo = 1;
    return ctx;
}

std::string
traceIdHex(const TraceContext &ctx)
{
    static const char *digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
        out[15 - i] =
            digits[(ctx.hi >> (4 * i)) & 0xF];
        out[31 - i] =
            digits[(ctx.lo >> (4 * i)) & 0xF];
    }
    return out;
}

bool
parseTraceIdHex(std::string_view hex, TraceContext &out)
{
    if (hex.size() != 32)
        return false;
    TraceContext parsed;
    for (int i = 0; i < 16; ++i) {
        const int hi = hexValue(hex[i]);
        const int lo = hexValue(hex[16 + i]);
        if (hi < 0 || lo < 0)
            return false;
        parsed.hi = (parsed.hi << 4) |
                    static_cast<std::uint64_t>(hi);
        parsed.lo = (parsed.lo << 4) |
                    static_cast<std::uint64_t>(lo);
    }
    out = parsed;
    return true;
}

TraceContextScope::TraceContextScope(const TraceContext &ctx)
    : previous_(t_current)
{
    t_current = ctx;
}

TraceContextScope::~TraceContextScope()
{
    t_current = previous_;
}

} // namespace lag::obs
